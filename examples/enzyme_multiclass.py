"""Multi-class explanation views (paper Fig. 13): ENZYMES analogue.

Builds one explanation view per enzyme class and shows that the views
separate the classes structurally — different planted motifs surface
as different patterns. Also demonstrates persisting views to JSON and
loading them back (views are *queryable artifacts*, not transient
objects).

    python examples/enzyme_multiclass.py
"""

import tempfile
from pathlib import Path

from repro.api import ExplanationService
from repro.config import GvexConfig
from repro.datasets import enzymes
from repro.graphs.io import load_views

ELEMENT = {0: "helix", 1: "sheet", 2: "turn"}


def main() -> None:
    svc = ExplanationService(
        db=enzymes(n_graphs=60, seed=4),
        config=GvexConfig(theta=0.08, radius=0.3).with_bounds(0, 7),
    )
    svc.fit_or_load()
    print(f"classifier: {svc.train_metrics}")

    views = svc.explain("gvex-approx")

    print(f"\ngenerated {len(views)} views (one per predicted class)")
    for view in views:
        compositions = []
        for p in view.patterns[:3]:
            counts = {}
            for v in p.graph.nodes():
                name = ELEMENT.get(p.node_type(v), "?")
                counts[name] = counts.get(name, 0) + 1
            compositions.append(
                "+".join(f"{n}x{name}" for name, n in sorted(counts.items()))
            )
        print(
            f"  class {view.label}: {len(view.subgraphs)} subgraphs, "
            f"patterns: {compositions}"
        )

    # persist and reload: views are plain versioned JSON, queryable
    with tempfile.TemporaryDirectory() as tmp:
        path = svc.persist(Path(tmp) / "enzyme_views.json")
        print(f"\nsaved views to {path} ({path.stat().st_size} bytes)")
        loaded = load_views(path)
        assert loaded.labels == views.labels
        total = sum(len(v.subgraphs) for v in loaded)
        print(f"reloaded {len(loaded)} views with {total} subgraphs intact")


if __name__ == "__main__":
    main()
