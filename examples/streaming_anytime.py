"""Anytime streaming explanation (paper §5 and Fig. 9f).

StreamGVEX processes each graph as a stream of nodes, maintaining an
explanation view a user can interrupt and inspect at any point. This
example streams one molecule and prints the view state at every batch,
then compares the final result with the batch algorithm's.

    python examples/streaming_anytime.py
"""

from dataclasses import replace

from repro.config import GvexConfig
from repro.core.approx import explain_graph
from repro.core.streaming import StreamGvex
from repro.datasets import pcqm4m
from repro.gnn.model import GnnClassifier
from repro.gnn.training import train_classifier


def main() -> None:
    db = pcqm4m(n_graphs=45, seed=2)
    model = GnnClassifier(9, 3, hidden_dims=(32, 32, 32), seed=0)
    model, encoder, metrics = train_classifier(db, model, seed=0)
    print(f"classifier: {metrics}")

    config = replace(
        GvexConfig(theta=0.08, radius=0.3).with_bounds(0, 6),
        stream_batch_size=3,
    )

    # pick the largest correctly-classified molecule and stream it
    target = max(
        (i for i in range(len(db)) if model.predict(db[i]) is not None),
        key=lambda i: db[i].n_nodes,
    )
    graph = db[target]
    label = model.predict(graph)
    print(f"\nstreaming graph {target} ({graph.n_nodes} nodes, label {label})")

    algo = StreamGvex(model, config)
    result = algo.explain_graph_stream(graph, label, graph_index=target)

    print("\nanytime snapshots (one per batch):")
    print("  seen%   |V_S|  patterns  objective   elapsed")
    for s in result.snapshots:
        print(
            f"  {s.fraction_seen:5.0%}   {s.selected_nodes:5d}  "
            f"{s.patterns:8d}  {s.objective:9.3f}   {s.elapsed_seconds:.3f}s"
        )

    assert result.subgraph is not None
    print(f"\nfinal streaming explanation: {result.subgraph}")

    batch = explain_graph(model, graph, label, config, graph_index=target)
    print(f"batch (ApproxGVEX) explanation: {batch.subgraph}")
    if batch.subgraph is not None and batch.subgraph.score > 0:
        ratio = result.subgraph.score / batch.subgraph.score
        print(f"stream/batch objective ratio: {ratio:.2f} "
              f"(Theorem 5.1 guarantees >= 0.25 in the worst case)")


if __name__ == "__main__":
    main()
