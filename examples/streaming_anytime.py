"""Anytime streaming explanation (paper §5 and Fig. 9f).

StreamGVEX processes each graph as a stream of nodes, maintaining an
explanation view a user can interrupt and inspect at any point. This
example streams one molecule under both ``IncEVerify`` schedules —
``stream_inc="incremental"`` (persistent influence/diversity
accumulators, the default) and ``stream_inc="rebuild"`` (per-chunk
oracle re-derivation, the parity reference) — printing the view state
and per-chunk latency at every batch, then compares the final result
with the batch algorithm's.

    python examples/streaming_anytime.py
"""

from dataclasses import replace

from repro.config import STREAM_INCREMENTAL, STREAM_REBUILD, GvexConfig
from repro.core.approx import explain_graph
from repro.core.streaming import StreamGvex
from repro.datasets import pcqm4m
from repro.gnn.model import GnnClassifier
from repro.gnn.training import train_classifier


def main() -> None:
    db = pcqm4m(n_graphs=45, seed=2)
    model = GnnClassifier(9, 3, hidden_dims=(32, 32, 32), seed=0)
    model, encoder, metrics = train_classifier(db, model, seed=0)
    print(f"classifier: {metrics}")

    config = replace(
        GvexConfig(theta=0.08, radius=0.3).with_bounds(0, 6),
        stream_batch_size=3,
    )

    # pick the largest correctly-classified molecule and stream it
    target = max(
        (i for i in range(len(db)) if model.predict(db[i]) is not None),
        key=lambda i: db[i].n_nodes,
    )
    graph = db[target]
    label = model.predict(graph)
    print(f"\nstreaming graph {target} ({graph.n_nodes} nodes, label {label})")

    results = {}
    for inc in (STREAM_INCREMENTAL, STREAM_REBUILD):
        algo = StreamGvex(model, replace(config, stream_inc=inc))
        results[inc] = algo.explain_graph_stream(graph, label, graph_index=target)

    result = results[STREAM_INCREMENTAL]
    print("\nanytime snapshots (stream_inc=incremental, one per batch):")
    print("  seen%   |V_S|  patterns  objective   chunk_ms   elapsed")
    prev_elapsed = 0.0
    for s in result.snapshots:
        chunk_ms = (s.elapsed_seconds - prev_elapsed) * 1e3
        prev_elapsed = s.elapsed_seconds
        print(
            f"  {s.fraction_seen:5.0%}   {s.selected_nodes:5d}  "
            f"{s.patterns:8d}  {s.objective:9.3f}   {chunk_ms:8.2f}   "
            f"{s.elapsed_seconds:.3f}s"
        )

    # both IncEVerify schedules select the same view; the incremental
    # engine pays one full oracle build per stream instead of per chunk
    rebuild = results[STREAM_REBUILD]
    assert result.subgraph is not None and rebuild.subgraph is not None
    assert result.subgraph.nodes == rebuild.subgraph.nodes
    print("\nIncEVerify accounting (full oracle builds per stream):")
    for inc, res in results.items():
        st = res.oracle_stats
        print(
            f"  {inc:11s}: {st.oracle_forwards} full refresh(es), "
            f"{st.incremental_updates} incremental update(s), "
            f"{res.snapshots[-1].elapsed_seconds * 1e3:.1f} ms total"
        )

    print(f"\nfinal streaming explanation: {result.subgraph}")

    batch = explain_graph(model, graph, label, config, graph_index=target)
    print(f"batch (ApproxGVEX) explanation: {batch.subgraph}")
    if batch.subgraph is not None and batch.subgraph.score > 0:
        ratio = result.subgraph.score / batch.subgraph.score
        print(f"stream/batch objective ratio: {ratio:.2f} "
              f"(Theorem 5.1 guarantees >= 0.25 in the worst case)")


if __name__ == "__main__":
    main()
