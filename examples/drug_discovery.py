"""Drug discovery case study (paper §1 and Fig. 10).

Trains a mutagenicity classifier, asks GVEX *why* compounds are
classified as mutagens, and answers the paper's motivating queries:

  * "what are the critical substructures behind the mutagen label?"
  * "which toxicophores occur in mutagens?"
  * "does removing the explanation really flip the prediction?"

    python examples/drug_discovery.py
"""

from repro.api import ExplanationService, Q
from repro.config import GvexConfig
from repro.datasets import mutagenicity
from repro.datasets.molecules import C, N, O, nitro_group, amine_group
from repro.graphs.pattern import Pattern
from repro.metrics.fidelity import fidelity_plus_single

ATOM = {0: "C", 1: "N", 2: "O", 3: "H"}


def atoms_of(graph, nodes):
    return "-".join(ATOM.get(graph.node_type(v), "?") for v in sorted(nodes))


def main() -> None:
    db = mutagenicity(n_graphs=40, seed=3)
    svc = ExplanationService(
        db=db,
        # explain only the mutagen class, small tight explanations
        config=GvexConfig(theta=0.08, radius=0.3).with_bounds(0, 5),
    )
    svc.fit_or_load()
    model = svc.model
    print(f"classifier: {svc.train_metrics}")

    views = svc.explain("gvex-approx", labels=[1])
    view = views[1]

    print(f"\nmutagen view: {len(view.subgraphs)} subgraphs, "
          f"{len(view.patterns)} patterns")

    # Q1: which atoms explain each mutagen?
    print("\nper-compound explanations (and their counterfactual effect):")
    for sub in view.subgraphs[:6]:
        g = db[sub.graph_index]
        effect = fidelity_plus_single(model, g, sub.nodes, 1)
        print(
            f"  compound {sub.graph_index:>2}: atoms {atoms_of(g, sub.nodes):<12}"
            f" removal drops P(mutagen) by {effect:+.2f}"
        )

    # Q2 (queryable views): which known toxicophores occur in the view?
    known_toxicophores = {
        "NO2 (nitro)": Pattern(nitro_group()),
        "NH2 (amine)": Pattern(amine_group()),
    }
    print("\ntoxicophore query over explanation subgraphs:")
    for name, toxicophore in known_toxicophores.items():
        hits = [h.graph_index for h in svc.query(Q.pattern(toxicophore) & Q.label(1))]
        print(f"  {name}: found in {len(hits)} explanation(s) -> {hits[:8]}")

    # Q3: are the discovered patterns themselves toxicophore-like?
    print("\nhigher-tier patterns (the queryable summary):")
    for i, p in enumerate(view.patterns):
        types = "".join(sorted(ATOM.get(p.node_type(v), "?") for v in p.graph.nodes()))
        print(f"  P{i}: atoms={types} ({p.n_nodes} nodes, {p.n_edges} edges)")


if __name__ == "__main__":
    main()
