"""Social-network case study (paper Fig. 11): REDDIT-BINARY analogue.

Shows the *configurable* side of GVEX: the analyst explains only the
class they care about (discussion vs Q&A threads), with per-label
coverage bounds, and inspects the structural patterns that emerge
(star-like for discussions, biclique-like for Q&A).

    python examples/social_analysis.py
"""

from repro.config import GvexConfig
from repro.core.approx import ApproxGvex
from repro.datasets import reddit_binary
from repro.datasets.social import DISCUSSION, QA
from repro.gnn.model import GnnClassifier
from repro.gnn.training import train_classifier
from repro.mining.pgen import mine_patterns

LABEL_NAMES = {DISCUSSION: "online-discussion", QA: "question-answer"}


def describe_pattern(p) -> str:
    fanout = max((p.graph.degree(v) for v in p.graph.nodes()), default=0)
    shape = "star-like" if fanout >= 3 and p.n_edges == p.n_nodes - 1 else (
        "biclique/cycle-like" if p.n_edges >= p.n_nodes else "path-like"
    )
    return f"{p.n_nodes} users / {p.n_edges} replies, max fanout {fanout} ({shape})"


def main() -> None:
    db = reddit_binary(n_graphs=24, seed=1)
    model = GnnClassifier(1, 2, hidden_dims=(32, 32, 32), seed=0)
    model, encoder, metrics = train_classifier(db, model, seed=0)
    print(f"classifier: {metrics}")

    # three analyst scenarios, as in Fig. 11: one class, the other, both
    scenarios = [
        ("only discussions", [DISCUSSION]),
        ("only Q&A", [QA]),
        ("both classes", [DISCUSSION, QA]),
    ]
    config = GvexConfig(theta=0.05, radius=0.3).with_bounds(0, 9)

    for title, labels in scenarios:
        print(f"\n=== scenario: {title} ===")
        algo = ApproxGvex(model, config, labels=labels)
        views = algo.explain(db)
        for view in views:
            print(f"label {view.label} ({LABEL_NAMES[view.label]}): "
                  f"{len(view.subgraphs)} thread explanations")
            salient = mine_patterns(
                [s.subgraph for s in view.subgraphs], max_size=5
            )[:3]
            for m in salient:
                print(
                    f"  salient pattern: {describe_pattern(m.pattern)} "
                    f"[support {m.support}, {m.embeddings} occurrences]"
                )


if __name__ == "__main__":
    main()
