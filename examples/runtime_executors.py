"""The `repro.runtime` execution engine: one scheduler, three policies.

Builds an explain plan over the mutagenicity workload, runs it with
the serial, fork-pool, and sharded executors, and shows that all three
produce identical views — only the scheduling differs:

    python examples/runtime_executors.py

The same plan/executor path is what `ExplanationService.explain`,
`python -m repro.cli explain --processes/--shards`, the bench harness,
and the HTTP `/explain` route all use (see docs/runtime.md).
"""

import time

from repro.api import ExplanationService
from repro.config import GvexConfig
from repro.runtime import (
    ForkPoolExecutor,
    SerialExecutor,
    ShardedExecutor,
    build_plan,
)


def fingerprint(views):
    return {
        view.label: [s.nodes for s in view.subgraphs] for view in views
    }


def main() -> None:
    svc = ExplanationService(
        "mutagenicity",
        scale="test",
        config=GvexConfig(theta=0.08, radius=0.3).with_bounds(0, 6),
    )
    svc.fit_or_load()

    plan = build_plan(svc.db, svc.model, svc.config, processes=2)
    print(f"plan: {plan.n_tasks} tasks in {len(plan.shards)} shard(s) "
          f"over labels {list(plan.labels)}")
    for shard in plan.shards:
        print(f"  label {shard.label}: graphs {list(shard.indices)}")

    results = {}
    for executor in (
        SerialExecutor(),
        ForkPoolExecutor(processes=2),
        ShardedExecutor(n_shards=2),
    ):
        start = time.perf_counter()
        views, stats = executor.run(plan)
        seconds = time.perf_counter() - start
        results[executor.name] = views
        print(f"{executor.name:>10}: {seconds:.2f}s, "
              f"{stats['inference_calls']} inference calls, "
              f"score {views.total_score():.3f}")

    serial = fingerprint(results["serial"])
    for name, views in results.items():
        assert fingerprint(views) == serial, name
    print("all executors selected identical views")


if __name__ == "__main__":
    main()
