"""Quickstart: train a GCN, explain it with GVEX, inspect the views.

Runs in a few seconds on a laptop:

    python examples/quickstart.py
"""

from repro.config import GvexConfig
from repro.core.approx import explain_database
from repro.datasets import mutagenicity
from repro.gnn.model import GnnClassifier
from repro.gnn.training import train_classifier
from repro.metrics.conciseness import mean_compression
from repro.viz import view_report


def main() -> None:
    # 1. a graph database: molecules labelled mutagen / non-mutagen
    db = mutagenicity(n_graphs=32, seed=0)
    print(f"database: {db}")

    # 2. a GNN classifier M (3-layer GCN + max-pool, as in the paper)
    model = GnnClassifier(in_dim=14, n_classes=2, hidden_dims=(32, 32, 32), seed=0)
    model, encoder, metrics = train_classifier(db, model, seed=0)
    print(f"classifier accuracy: {metrics}")

    # 3. a GVEX configuration C = (theta, r, {[b_l, u_l]}) + gamma
    config = GvexConfig(theta=0.08, radius=0.3, gamma=0.5).with_bounds(0, 6)

    # 4. explanation views, one per class label
    views = explain_database(db, model, config)
    for view in views:
        label_name = "mutagen" if view.label == 1 else "non-mutagen"
        print(f"\nview for label {view.label} ({label_name}):")
        print(f"  explainability score f = {view.score:.3f}")
        print(f"  {len(view.subgraphs)} explanation subgraphs, e.g.:")
        for sub in view.subgraphs[:3]:
            print(f"    {sub}")
        print(f"  {len(view.patterns)} higher-tier patterns:")
        for pattern in view.patterns:
            print(f"    {pattern}")
        print(f"  compression vs subgraphs: {view.compression():.1%}")
        print(f"  edge loss: {view.edge_loss:.1%}")

    print(f"\nmean compression across views: {mean_compression(views):.1%}")

    # 5. a human-readable report of one view (the inspection artifact)
    atom_names = {0: "C", 1: "N", 2: "O", 3: "H"}
    print("\n" + view_report(views[1], type_names=atom_names, max_subgraphs=2))


if __name__ == "__main__":
    main()
