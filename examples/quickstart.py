"""Quickstart: the `repro.api` front door in five lines.

Train a GCN, explain it with GVEX, inspect and query the views — all
through the :class:`ExplanationService` facade (see docs/api.md). Runs
in a few seconds on a laptop:

    python examples/quickstart.py
"""

from repro.api import ExplanationService, Q
from repro.config import GvexConfig
from repro.datasets import mutagenicity
from repro.graphs.pattern import Pattern
from repro.metrics.conciseness import mean_compression
from repro.viz import view_report


def main() -> None:
    # 1. a service bundling database + model + configuration lifecycle
    db = mutagenicity(n_graphs=32, seed=0)
    svc = ExplanationService(
        db=db,
        config=GvexConfig(theta=0.08, radius=0.3, gamma=0.5).with_bounds(0, 6),
    )
    print(f"database: {db}")

    # 2. fit_or_load: trains a 3-layer GCN (or loads a cached .npz)
    svc.fit_or_load()
    print(f"classifier accuracy: {svc.train_metrics}")

    # 3. explain: any registered method; GVEX's ApproxGVEX is default
    views = svc.explain("gvex-approx")
    for view in views:
        label_name = "mutagen" if view.label == 1 else "non-mutagen"
        print(f"\nview for label {view.label} ({label_name}):")
        print(f"  explainability score f = {view.score:.3f}")
        print(f"  {len(view.subgraphs)} explanation subgraphs, e.g.:")
        for sub in view.subgraphs[:3]:
            print(f"    {sub}")
        print(f"  {len(view.patterns)} higher-tier patterns:")
        for pattern in view.patterns:
            print(f"    {pattern}")
        print(f"  compression vs subgraphs: {view.compression():.1%}")
        print(f"  edge loss: {view.edge_loss:.1%}")

    print(f"\nmean compression across views: {mean_compression(views):.1%}")

    # 4. query: the composable DSL over the inverted pattern index
    n_o_bond = Pattern.from_parts([1, 2], [(0, 1)])  # N-O bond
    hits = svc.query(Q.pattern(n_o_bond) & Q.label(1))
    print(f"N-O bond occurs in {len(hits)} mutagen explanation(s)")

    # 5. a human-readable report of one view (the inspection artifact)
    atom_names = {0: "C", 1: "N", 2: "O", 3: "H"}
    print("\n" + view_report(views[1], type_names=atom_names, max_subgraphs=2))


if __name__ == "__main__":
    main()
