"""Serving explanations over HTTP (the `repro.cli serve` endpoint).

Starts the stdlib JSON/HTTP server on a background thread, then drives
an explain + query round trip with plain ``urllib`` — exactly what an
external client (dashboard, notebook, curl) would do:

    python examples/serving_http.py

Equivalent from the shell:

    python -m repro.cli serve --dataset mutagenicity --port 8080 &
    curl -s localhost:8080/health
    curl -s -X POST localhost:8080/explain -d '{"method": "gvex-approx"}'
    curl -s -X POST localhost:8080/query \\
        -d '{"pattern": {"node_types": [1, 2], "edges": [[0, 1, 0]]}, "label": 1}'
"""

import json
import threading
import urllib.request

from repro.api import ExplanationService, create_server
from repro.config import GvexConfig


def call(base: str, path: str, body=None):
    if body is None:
        req = urllib.request.Request(base + path)
    else:
        req = urllib.request.Request(
            base + path,
            data=json.dumps(body).encode(),
            headers={"Content-Type": "application/json"},
        )
    with urllib.request.urlopen(req) as response:
        return json.loads(response.read())


def main() -> None:
    svc = ExplanationService(
        "mutagenicity",
        scale="test",
        config=GvexConfig(theta=0.08, radius=0.3).with_bounds(0, 6),
    )
    # port 0 picks a free port; explains are admitted through a bounded
    # work queue (queue_capacity) — submissions past it get 503
    # backpressure; pass auth_token="..." to require a bearer token on
    # POST routes (see docs/runtime.md)
    server = create_server(svc, port=0, queue_capacity=4)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    base = server.url
    print(f"serving on {base}")

    health = call(base, "/health")
    print("\nGET /health ->", health)
    print("explain queue:", health["queue"])
    print("\nGET /explainers ->",
          [e["name"] for e in call(base, "/explainers")["explainers"]])

    # first /explain trains the model in-service, then generates views
    summary = call(base, "/explain", {"method": "gvex-approx"})
    print("\nPOST /explain ->")
    for view in summary["views"]:
        print(f"  label {view['label']}: {view['n_subgraphs']} subgraphs, "
              f"{view['n_patterns']} patterns, "
              f"compression {view['compression']:.1%}")

    # the paper's "which toxicophores occur in mutagens?" over the wire
    result = call(base, "/query", {
        "pattern": {"node_types": [1, 2], "edges": [[0, 1, 0]]},
        "label": 1,
    })
    print(f"\nPOST /query (N-O bond in mutagens) -> "
          f"{len(result['matches'])} matches, "
          f"per-label stats {result['statistics']}")

    server.shutdown()
    server.server_close()


if __name__ == "__main__":
    main()
