"""Node-classification explanation (Table 1's NC column).

Trains a node-level GCN on a two-community graph (an SBM, like a tiny
citation network) and asks GVEX to explain individual node predictions:
which neighborhood nodes give node v its community label?

    python examples/node_classification.py
"""

import numpy as np

from repro.config import GvexConfig
from repro.core.node_explain import explain_node
from repro.gnn.node_model import NodeGnnClassifier
from repro.graphs.generators import stochastic_block_model
from repro.graphs.graph import Graph


def main() -> None:
    # a two-community graph with noisy community-indicating features
    rng = np.random.default_rng(7)
    base, blocks = stochastic_block_model([15, 15], 0.4, 0.04, seed=7)
    X = rng.normal(0, 0.5, size=(base.n_nodes, 4))
    X[np.arange(base.n_nodes), blocks] += 1.5
    graph = Graph(base.node_types, features=X)
    for u, v, t in base.edges():
        graph.add_edge(u, v, t)

    model = NodeGnnClassifier(4, 2, hidden_dims=(16, 16), seed=0)
    model.fit(graph, blocks, epochs=200)
    acc = model.accuracy(graph, blocks)
    print(f"node classifier accuracy: {acc:.2f} on {graph.n_nodes} nodes")

    config = GvexConfig(theta=0.05, radius=0.4).with_bounds(0, 6)
    print("\nexplaining one node per community:")
    for node in (2, 20):
        expl = explain_node(model, graph, node, config=config)
        same = sum(1 for v in expl.context_nodes if blocks[v] == blocks[node])
        print(
            f"  node {node} (community {blocks[node]}): label={expl.label}, "
            f"context={sorted(expl.context_nodes)}"
        )
        print(
            f"    {same}/{len(expl.context_nodes)} context nodes share its "
            f"community; consistent={expl.consistent}, "
            f"counterfactual={expl.counterfactual}"
        )

    # aggregate: context nodes should be overwhelmingly same-community
    total, same_total = 0, 0
    for node in range(graph.n_nodes):
        expl = explain_node(model, graph, node, config=config)
        total += len(expl.context_nodes)
        same_total += sum(1 for v in expl.context_nodes if blocks[v] == blocks[node])
    print(
        f"\nacross all {graph.n_nodes} nodes: "
        f"{same_total}/{total} ({same_total/total:.0%}) of explanation "
        f"context comes from the node's own community"
    )


if __name__ == "__main__":
    main()
