"""Querying explanation views (the paper's headline "queryable" property).

Generates views for the mutagenicity task, then answers the paper's §1
analyst queries through the ViewIndex query engine:

  * "which toxicophores occur in mutagens?"
  * "which non-mutagens contain pattern P?"
  * "which patterns distinguish mutagens from non-mutagens?"

    python examples/view_queries.py
"""

from repro.config import GvexConfig
from repro.core.approx import explain_database
from repro.datasets import mutagenicity
from repro.datasets.molecules import N, O, nitro_group
from repro.gnn.model import GnnClassifier
from repro.gnn.training import train_classifier
from repro.graphs.pattern import Pattern
from repro.query import ViewIndex

ATOM = {0: "C", 1: "N", 2: "O", 3: "H"}


def pattern_formula(p: Pattern) -> str:
    return "".join(sorted(ATOM.get(p.node_type(v), "?") for v in p.graph.nodes()))


def main() -> None:
    db = mutagenicity(n_graphs=36, seed=5)
    model = GnnClassifier(14, 2, hidden_dims=(32, 32, 32), seed=0)
    model, encoder, metrics = train_classifier(db, model, seed=0)
    print(f"classifier: {metrics}")

    config = GvexConfig(theta=0.08, radius=0.3).with_bounds(0, 6)
    views = explain_database(db, model, config)
    index = ViewIndex(views, db=db)

    # Q1: which toxicophores occur in mutagen explanations?
    toxicophores = {
        "N-O bond": Pattern.from_parts([N, O], [(0, 1)]),
        "NO2 group": Pattern(nitro_group()),
    }
    print("\nQ1: which toxicophores occur in mutagens?")
    for name, p in toxicophores.items():
        hits = index.explanations_containing(p, label=1)
        print(f"  {name}: {len(hits)} mutagen explanation(s) "
              f"-> graphs {[h.graph_index for h in hits][:6]}")

    # Q2: which NON-mutagens contain a given pattern? (full-graph scope)
    print("\nQ2: which non-mutagen graphs contain an N-O bond?")
    occurrences = index.graphs_containing(toxicophores["N-O bond"], label=0)
    print(f"  {len(occurrences)} non-mutagen(s) "
          f"(expected 0: the toxicophore is only planted in mutagens)")

    # Q3: discriminative patterns (Example 1.1's P12)
    print("\nQ3: patterns that distinguish mutagens from non-mutagens:")
    for p in index.discriminative_patterns(1, 0):
        stats = index.pattern_statistics(p)
        print(f"  {pattern_formula(p)} ({p.n_nodes} nodes): "
              f"in {stats[1]} mutagen vs {stats[0]} non-mutagen explanations")


if __name__ == "__main__":
    main()
