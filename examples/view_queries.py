"""Querying explanation views (the paper's headline "queryable" property).

Generates views for the mutagenicity task through the service facade,
then answers the paper's §1 analyst queries with the composable query
DSL (``Q``), executed against the inverted pattern index:

  * "which toxicophores occur in mutagens?"
  * "which non-mutagens contain pattern P?"
  * "which patterns distinguish mutagens from non-mutagens?"

    python examples/view_queries.py
"""

from repro.api import ExplanationService, Q
from repro.config import GvexConfig
from repro.datasets import mutagenicity
from repro.datasets.molecules import N, O, nitro_group
from repro.graphs.pattern import Pattern

ATOM = {0: "C", 1: "N", 2: "O", 3: "H"}


def pattern_formula(p: Pattern) -> str:
    return "".join(sorted(ATOM.get(p.node_type(v), "?") for v in p.graph.nodes()))


def main() -> None:
    svc = ExplanationService(
        db=mutagenicity(n_graphs=36, seed=5),
        config=GvexConfig(theta=0.08, radius=0.3).with_bounds(0, 6),
    )
    svc.fit_or_load()
    print(f"classifier: {svc.train_metrics}")
    svc.explain("gvex-approx")
    index = svc.index

    # Q1: which toxicophores occur in mutagen explanations?
    toxicophores = {
        "N-O bond": Pattern.from_parts([N, O], [(0, 1)]),
        "NO2 group": Pattern(nitro_group()),
    }
    print("\nQ1: which toxicophores occur in mutagens?")
    for name, p in toxicophores.items():
        hits = svc.query(Q.pattern(p) & Q.label(1))
        print(f"  {name}: {len(hits)} mutagen explanation(s) "
              f"-> graphs {[h.graph_index for h in hits][:6]}")

    # Q2: which NON-mutagens contain a given pattern? (full-graph scope)
    print("\nQ2: which non-mutagen graphs contain an N-O bond?")
    occurrences = svc.query(
        Q.pattern(toxicophores["N-O bond"]) & Q.label(0) & Q.in_scope("graphs")
    )
    print(f"  {len(occurrences)} non-mutagen(s) "
          f"(expected 0: the toxicophore is only planted in mutagens)")

    # Q3: discriminative patterns (Example 1.1's P12) — the legacy
    # method and its DSL equivalent run on the same posting lists
    print("\nQ3: patterns that distinguish mutagens from non-mutagens:")
    for p in index.discriminative_patterns(1, 0):
        stats = index.pattern_statistics(p)
        assert not svc.query(Q.pattern(p) & Q.label(0))  # DSL equivalent
        print(f"  {pattern_formula(p)} ({p.n_nodes} nodes): "
              f"in {stats[1]} mutagen vs {stats[0]} non-mutagen explanations")


if __name__ == "__main__":
    main()
