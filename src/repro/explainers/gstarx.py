"""GStarX baseline (Zhang et al., NeurIPS 2022).

Scores nodes with a structure-aware cooperative-game value: instead of
all coalitions (classic Shapley), only *connected* coalitions are
considered, reflecting that message passing only propagates along
edges. We estimate each node's value by sampling random connected
coalitions (random BFS prefixes) and averaging its marginal
contribution to the predicted class probability, then return the
induced subgraph on the top-k nodes.
"""

from __future__ import annotations

from typing import List, Optional, Set

import numpy as np

from repro.explainers.base import Explainer, ExplainerCapabilities
from repro.gnn.model import GnnClassifier
from repro.graphs.graph import Graph
from repro.graphs.view import ExplanationSubgraph
from repro.utils.rng import RngLike, ensure_rng


class GStarX(Explainer):
    """Structure-aware game-value explainer ("GX" in the figures)."""

    capabilities = ExplainerCapabilities(
        name="GStarX",
        short_name="GX",
        requires_learning=False,
        tasks="GC",
        target="Subgraph",
        model_agnostic=True,
        label_specific=False,
        size_bound=False,
        coverage=False,
        configurable=False,
        queryable=False,
    )

    def __init__(
        self,
        model: GnnClassifier,
        coalition_samples: int = 24,
        max_coalition_size: Optional[int] = None,
        seed: RngLike = 0,
    ) -> None:
        super().__init__(model)
        self.coalition_samples = coalition_samples
        self.max_coalition_size = max_coalition_size
        self._rng = ensure_rng(seed)

    # ------------------------------------------------------------------
    def explain_graph(
        self,
        graph: Graph,
        label: Optional[int] = None,
        max_nodes: Optional[int] = None,
        graph_index: int = 0,
    ) -> Optional[ExplanationSubgraph]:
        if graph.n_nodes == 0:
            return None
        label = self._resolve_label(graph, label)
        budget = max_nodes if max_nodes is not None else max(graph.n_nodes // 2, 1)
        scores = self.node_scores(graph, label)
        order = np.argsort(-scores)
        nodes = [int(v) for v in order[:budget]]
        if not nodes:
            return None
        return self._finalize(
            graph, nodes, label, graph_index, score=float(scores[order[0]])
        )

    # ------------------------------------------------------------------
    def node_scores(self, graph: Graph, label: int) -> np.ndarray:
        """Monte-Carlo structure-aware values per node."""
        n = graph.n_nodes
        totals = np.zeros(n)
        counts = np.zeros(n)
        cap = self.max_coalition_size or max(n // 2, 2)
        for _ in range(self.coalition_samples):
            coalition = self._random_connected_coalition(graph, cap)
            base = self._subset_probability(graph, coalition, label)
            # marginal contribution of each member: v(S) - v(S \ {i})
            for v in coalition:
                rest = coalition - {v}
                if rest:
                    without = self._subset_probability(graph, rest, label)
                else:
                    without = 1.0 / self.model.n_classes
                totals[v] += base - without
                counts[v] += 1
        counts = np.where(counts == 0, 1.0, counts)
        return totals / counts

    def _random_connected_coalition(self, graph: Graph, cap: int) -> Set[int]:
        start = int(self._rng.integers(0, graph.n_nodes))
        size = int(self._rng.integers(1, cap + 1))
        coalition = {start}
        frontier = list(graph.all_neighbors(start))
        while frontier and len(coalition) < size:
            idx = int(self._rng.integers(0, len(frontier)))
            v = frontier.pop(idx)
            if v in coalition:
                continue
            coalition.add(v)
            frontier.extend(w for w in graph.all_neighbors(v) if w not in coalition)
        return coalition


__all__ = ["GStarX"]
