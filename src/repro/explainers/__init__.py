"""Explainers: GVEX (AG/SG) and the four baselines behind one interface."""

from repro.explainers.base import Explainer, ExplainerCapabilities
from repro.explainers.gcfexplainer import GcfExplainer
from repro.explainers.gnnexplainer import GnnExplainer
from repro.explainers.gstarx import GStarX
from repro.explainers.gvex import ApproxGvexExplainer, StreamGvexExplainer
from repro.explainers.random_baseline import RandomExplainer
from repro.explainers.subgraphx import SubgraphX

#: Table 1 row order
ALL_EXPLAINER_CLASSES = (
    SubgraphX,
    GnnExplainer,
    GStarX,
    GcfExplainer,
    ApproxGvexExplainer,
    StreamGvexExplainer,
)

__all__ = [
    "Explainer",
    "ExplainerCapabilities",
    "ApproxGvexExplainer",
    "StreamGvexExplainer",
    "GnnExplainer",
    "SubgraphX",
    "GStarX",
    "GcfExplainer",
    "RandomExplainer",
    "ALL_EXPLAINER_CLASSES",
]
