"""GVEX algorithms behind the common :class:`Explainer` interface.

The benches sweep all methods through ``explain_graph``; these wrappers
adapt ApproxGVEX ("AG") and StreamGVEX ("SG") to that interface while
still exposing full view generation (patterns included) through
``explain_views``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.config import GvexConfig
from repro.core.approx import ApproxGvex, explain_graph as _approx_explain_graph
from repro.core.streaming import StreamGvex
from repro.explainers.base import Explainer, ExplainerCapabilities
from repro.gnn.model import GnnClassifier
from repro.graphs.database import GraphDatabase
from repro.graphs.graph import Graph
from repro.graphs.view import ExplanationSubgraph, ViewSet
from repro.utils.rng import RngLike

_GVEX_CAPABILITIES = dict(
    requires_learning=False,
    tasks="GC/NC",
    target="Graph Views (Pattern+Subgraph)",
    model_agnostic=True,
    label_specific=True,
    size_bound=True,
    coverage=True,
    configurable=True,
    queryable=True,
)


class ApproxGvexExplainer(Explainer):
    """Explain-and-summarize GVEX ("AG")."""

    capabilities = ExplainerCapabilities(
        name="GVEX (ApproxGVEX)", short_name="AG", **_GVEX_CAPABILITIES
    )

    def __init__(self, model: GnnClassifier, config: Optional[GvexConfig] = None):
        super().__init__(model)
        self.config = config if config is not None else GvexConfig()

    def explain_graph(
        self,
        graph: Graph,
        label: Optional[int] = None,
        max_nodes: Optional[int] = None,
        graph_index: int = 0,
    ) -> Optional[ExplanationSubgraph]:
        if graph.n_nodes == 0:
            return None
        label = self._resolve_label(graph, label)
        config = self.config
        if max_nodes is not None:
            config = config.with_coverage(
                label, min(config.coverage_for(label).lower, max_nodes), max_nodes
            )
        result = _approx_explain_graph(
            self.model, graph, label, config, graph_index=graph_index
        )
        return result.subgraph

    def explain_views(self, db: GraphDatabase, labels=None, config=None) -> ViewSet:
        """Full two-tier view generation (Algorithm 1/2)."""
        config = config if config is not None else self.config
        return ApproxGvex(self.model, config, labels=labels).explain(db)


class StreamGvexExplainer(Explainer):
    """Streaming GVEX ("SG")."""

    capabilities = ExplainerCapabilities(
        name="GVEX (StreamGVEX)", short_name="SG", **_GVEX_CAPABILITIES
    )

    def __init__(
        self,
        model: GnnClassifier,
        config: Optional[GvexConfig] = None,
        seed: RngLike = None,
    ):
        super().__init__(model)
        self.config = config if config is not None else GvexConfig()
        self.seed = seed

    def explain_graph(
        self,
        graph: Graph,
        label: Optional[int] = None,
        max_nodes: Optional[int] = None,
        graph_index: int = 0,
    ) -> Optional[ExplanationSubgraph]:
        if graph.n_nodes == 0:
            return None
        label = self._resolve_label(graph, label)
        config = self.config
        if max_nodes is not None:
            config = config.with_coverage(
                label, min(config.coverage_for(label).lower, max_nodes), max_nodes
            )
        algo = StreamGvex(self.model, config, seed=self.seed)
        result = algo.explain_graph_stream(graph, label, graph_index=graph_index)
        return result.subgraph

    def explain_views(self, db: GraphDatabase, labels=None, config=None) -> ViewSet:
        """Full two-tier view generation (Algorithm 3)."""
        config = config if config is not None else self.config
        return StreamGvex(
            self.model, config, labels=labels, seed=self.seed
        ).explain(db)


__all__ = ["ApproxGvexExplainer", "StreamGvexExplainer"]
