"""Common explainer interface and capability metadata (Table 1).

Every explainer — GVEX's two algorithms and the four baselines —
produces per-graph node subsets behind one API so the evaluation
harness (Figures 5-9) can sweep them uniformly. The capability matrix
the paper prints as Table 1 is generated from each class's
:class:`ExplainerCapabilities` (see
:func:`repro.metrics.capability.capability_table`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.exceptions import ExplanationError
from repro.gnn.model import GnnClassifier
from repro.graphs.database import GraphDatabase
from repro.graphs.graph import Graph
from repro.graphs.view import ExplanationSubgraph, ExplanationView, ViewSet


@dataclass(frozen=True)
class ExplainerCapabilities:
    """One row of Table 1."""

    name: str
    short_name: str
    requires_learning: bool
    tasks: str  # "GC", "NC", or "GC/NC"
    target: str  # explanation output format
    model_agnostic: bool
    label_specific: bool
    size_bound: bool
    coverage: bool
    configurable: bool
    queryable: bool


class Explainer(ABC):
    """Produces an explanation node set for each classified graph."""

    capabilities: ExplainerCapabilities

    def __init__(self, model: GnnClassifier) -> None:
        self.model = model

    # ------------------------------------------------------------------
    @abstractmethod
    def explain_graph(
        self,
        graph: Graph,
        label: Optional[int] = None,
        max_nodes: Optional[int] = None,
        graph_index: int = 0,
    ) -> Optional[ExplanationSubgraph]:
        """Explain one graph's prediction; ``None`` when impossible.

        ``label`` defaults to the model's prediction; ``max_nodes``
        bounds the explanation size (the ``u_l`` knob in Figures 5-6).
        """

    # ------------------------------------------------------------------
    def explain_database(
        self,
        db: GraphDatabase,
        label: Optional[int] = None,
        max_nodes: Optional[int] = None,
        indices: Optional[Sequence[int]] = None,
    ) -> Dict[int, ExplanationSubgraph]:
        """Explain every graph (optionally restricted to one label group)."""
        from repro.core.approx import database_predictions

        out: Dict[int, ExplanationSubgraph] = {}
        pool = list(range(len(db)) if indices is None else indices)
        predictions = database_predictions(self.model, db, indices=pool)
        for idx, predicted in zip(pool, predictions):
            graph = db[idx]
            if predicted is None:
                continue
            if label is not None and predicted != label:
                continue
            explanation = self.explain_graph(
                graph, label=predicted, max_nodes=max_nodes, graph_index=idx
            )
            if explanation is not None:
                out[idx] = explanation
        return out

    # ------------------------------------------------------------------
    def explain_views(
        self,
        db: GraphDatabase,
        labels: Optional[Iterable[int]] = None,
        config=None,
    ) -> ViewSet:
        """Two-tier explanation views from any explainer.

        The generic recipe mirrors GVEX's output contract so every
        registered method is servable and queryable identically: group
        the database by predicted label, explain each graph with
        ``explain_graph`` (bounded by the config's coverage upper
        bound), then summarize each group's subgraphs into patterns
        with ``Psum``. GVEX's own wrappers override this with the full
        Algorithm 1/3 pipelines.
        """
        from repro.config import GvexConfig
        from repro.core.approx import database_predictions
        from repro.core.psum import summarize

        config = config if config is not None else GvexConfig()
        predicted = database_predictions(self.model, db)
        groups: Dict[int, List[int]] = {}
        for idx, label in enumerate(predicted):
            if label is None:
                continue
            groups.setdefault(int(label), []).append(idx)
        wanted = sorted(groups) if labels is None else sorted(set(labels))

        views = ViewSet()
        for label in wanted:
            upper = config.coverage_for(label).upper
            subs = []
            for idx in groups.get(label, []):
                expl = self.explain_graph(
                    db[idx], label=label, max_nodes=upper or None, graph_index=idx
                )
                if expl is not None:
                    subs.append(expl)
            view = ExplanationView(label=label, subgraphs=subs)
            psum = summarize([s.subgraph for s in subs], config)
            view.patterns = psum.patterns
            view.edge_loss = psum.edge_loss
            view.score = sum(s.score for s in subs)
            views.add(view)
        return views

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _resolve_label(self, graph: Graph, label: Optional[int]) -> int:
        if label is not None:
            return label
        predicted = self.model.predict(graph)
        if predicted is None:
            raise ExplanationError("cannot explain an empty graph")
        return predicted

    def _probability(self, graph: Graph, label: int) -> float:
        """P(M(graph) = label), uniform for the empty graph."""
        return float(self.model.predict_proba(graph)[label])

    def _subset_probability(self, graph: Graph, nodes, label: int) -> float:
        sub, _ = graph.induced_subgraph(nodes)
        return self._probability(sub, label)

    def _finalize(
        self, graph: Graph, nodes, label: int, graph_index: int, score: float = 0.0
    ) -> ExplanationSubgraph:
        """Package a node set into an :class:`ExplanationSubgraph`."""
        nodes = tuple(sorted(int(v) for v in nodes))
        sub, _ = graph.induced_subgraph(nodes)
        rest, _ = graph.remove_nodes(nodes)
        consistent = self.model.predict(sub) == label
        counterfactual = self.model.predict(rest) != label
        return ExplanationSubgraph(
            graph_index=graph_index,
            nodes=nodes,
            subgraph=sub,
            consistent=consistent,
            counterfactual=counterfactual,
            score=score,
        )


__all__ = ["Explainer", "ExplainerCapabilities"]
