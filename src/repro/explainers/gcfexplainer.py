"""GCFExplainer baseline (Huang et al., WSDM 2023).

Global counterfactual reasoning: for each input graph of a label
group, greedily delete the node whose removal most reduces the
predicted probability of the assigned label until the label flips —
the deleted set is the graph's counterfactual explanation and the
remainder its counterfactual graph. A greedy cover step then selects a
small set of *representative* counterfactual graphs whose embeddings
cover the whole group within a distance threshold (the paper's global
summary); per-graph explanations reuse the deleted node sets so the
fidelity harness can sweep this method alongside instance-level ones.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.diversity import embedding_distances
from repro.explainers.base import Explainer, ExplainerCapabilities
from repro.gnn.model import GnnClassifier
from repro.graphs.database import GraphDatabase
from repro.graphs.graph import Graph
from repro.graphs.view import ExplanationSubgraph
from repro.utils.rng import RngLike, ensure_rng


class GcfExplainer(Explainer):
    """Global counterfactual explainer ("GCF" in the figures)."""

    capabilities = ExplainerCapabilities(
        name="GCFExplainer",
        short_name="GCF",
        requires_learning=False,
        tasks="GC",
        target="Subgraph",
        model_agnostic=True,
        label_specific=True,
        size_bound=False,
        coverage=True,
        configurable=False,
        queryable=False,
    )

    def __init__(
        self,
        model: GnnClassifier,
        coverage_distance: float = 0.5,
        seed: RngLike = 0,
    ) -> None:
        super().__init__(model)
        self.coverage_distance = coverage_distance
        self._rng = ensure_rng(seed)

    # ------------------------------------------------------------------
    def explain_graph(
        self,
        graph: Graph,
        label: Optional[int] = None,
        max_nodes: Optional[int] = None,
        graph_index: int = 0,
    ) -> Optional[ExplanationSubgraph]:
        if graph.n_nodes == 0:
            return None
        label = self._resolve_label(graph, label)
        deleted = self._counterfactual_deletions(graph, label, max_nodes)
        if not deleted:
            return None
        return self._finalize(graph, deleted, label, graph_index)

    # ------------------------------------------------------------------
    def _counterfactual_deletions(
        self, graph: Graph, label: int, max_nodes: Optional[int]
    ) -> List[int]:
        """Greedy node deletions until the label flips (or budget ends)."""
        budget = max_nodes if max_nodes is not None else graph.n_nodes - 1
        remaining: Set[int] = set(graph.nodes())
        deleted: List[int] = []
        while len(deleted) < budget and len(remaining) > 1:
            rest, _ = graph.induced_subgraph(remaining)
            if self.model.predict(rest) != label and deleted:
                break
            best_v: Optional[int] = None
            best_prob = np.inf
            for v in sorted(remaining):
                trial = remaining - {v}
                prob = self._subset_probability(graph, trial, label)
                if prob < best_prob:
                    best_prob = prob
                    best_v = v
            if best_v is None:
                break
            remaining.discard(best_v)
            deleted.append(best_v)
            if self._subset_probability(graph, remaining, label) < 0.5:
                break
        return deleted

    # ------------------------------------------------------------------
    def representative_counterfactuals(
        self,
        db: GraphDatabase,
        label: int,
        indices: Sequence[int],
        max_representatives: int = 5,
    ) -> List[Tuple[int, Graph]]:
        """Global step: a few counterfactual graphs covering the group.

        A counterfactual (built from graph ``i``) covers graph ``j``
        when their pooled GNN embeddings are within
        ``coverage_distance``. Returns ``(source index, counterfactual
        graph)`` pairs chosen greedily by marginal coverage.
        """
        candidates: List[Tuple[int, Graph]] = []
        for idx in indices:
            graph = db[idx]
            deleted = self._counterfactual_deletions(graph, label, None)
            if not deleted:
                continue
            rest, _ = graph.remove_nodes(deleted)
            if rest.n_nodes and self.model.predict(rest) != label:
                candidates.append((idx, rest))
        if not candidates:
            return []

        group_emb = np.vstack(
            [self._pooled_embedding(db[i]) for i in indices]
        )
        cand_emb = np.vstack(
            [self._pooled_embedding(g) for _, g in candidates]
        )
        both = np.vstack([cand_emb, group_emb])
        dist = embedding_distances(both)[: len(candidates), len(candidates):]
        covers = dist <= self.coverage_distance

        chosen: List[Tuple[int, Graph]] = []
        covered = np.zeros(len(indices), dtype=bool)
        while len(chosen) < max_representatives and not covered.all():
            gains = (covers & ~covered[None, :]).sum(axis=1)
            best = int(np.argmax(gains))
            if gains[best] == 0:
                break
            chosen.append(candidates[best])
            covered |= covers[best]
        return chosen

    def _pooled_embedding(self, graph: Graph) -> np.ndarray:
        if graph.n_nodes == 0:
            return np.zeros(self.model.hidden_dims[-1])
        return self.model.node_embeddings(graph).max(axis=0)


__all__ = ["GcfExplainer"]
