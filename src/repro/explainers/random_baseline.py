"""Random baseline: a random connected subgraph of the requested size.

Not in the paper's competitor list, but a standard sanity floor — any
real explainer must beat it on fidelity (a cheap ablation check for
the harness and tests).
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.explainers.base import Explainer, ExplainerCapabilities
from repro.gnn.model import GnnClassifier
from repro.graphs.graph import Graph
from repro.graphs.view import ExplanationSubgraph
from repro.utils.rng import RngLike, ensure_rng


class RandomExplainer(Explainer):
    """Uniformly random connected node subset ("RND")."""

    capabilities = ExplainerCapabilities(
        name="Random",
        short_name="RND",
        requires_learning=False,
        tasks="GC/NC",
        target="Subgraph",
        model_agnostic=True,
        label_specific=False,
        size_bound=True,
        coverage=False,
        configurable=False,
        queryable=False,
    )

    def __init__(self, model: GnnClassifier, seed: RngLike = 0) -> None:
        super().__init__(model)
        self._rng = ensure_rng(seed)

    def explain_graph(
        self,
        graph: Graph,
        label: Optional[int] = None,
        max_nodes: Optional[int] = None,
        graph_index: int = 0,
    ) -> Optional[ExplanationSubgraph]:
        if graph.n_nodes == 0:
            return None
        label = self._resolve_label(graph, label)
        budget = max_nodes if max_nodes is not None else max(graph.n_nodes // 2, 1)
        budget = min(budget, graph.n_nodes)
        start = int(self._rng.integers(0, graph.n_nodes))
        chosen: Set[int] = {start}
        frontier: List[int] = sorted(graph.all_neighbors(start))
        while frontier and len(chosen) < budget:
            idx = int(self._rng.integers(0, len(frontier)))
            v = frontier.pop(idx)
            if v in chosen:
                continue
            chosen.add(v)
            frontier.extend(w for w in graph.all_neighbors(v) if w not in chosen)
        return self._finalize(graph, chosen, label, graph_index)


__all__ = ["RandomExplainer"]
