"""GNNExplainer baseline (Ying et al., NeurIPS 2019).

Learns a soft mask over edges (and a global mask over input feature
dimensions) that maximizes the mutual information between the masked
prediction and the original one — in practice, minimizing the
cross-entropy of the masked graph's prediction plus size and entropy
regularizers on the masks.

Implemented against our numpy GNN: the model's backward pass exposes
gradients w.r.t. the aggregation matrix ``Q`` and input features ``X``,
which chain into the mask logits through the sigmoid. Edge masks are
applied multiplicatively to the *pre-normalized* propagation weights
(self-loops stay unmasked), matching the common PyG implementation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.explainers.base import Explainer, ExplainerCapabilities
from repro.gnn.loss import softmax_cross_entropy
from repro.gnn.model import GnnClassifier
from repro.gnn.optim import Adam
from repro.graphs.graph import Graph
from repro.graphs.view import ExplanationSubgraph
from repro.utils.rng import RngLike, ensure_rng


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30, 30)))


class GnnExplainer(Explainer):
    """Soft-mask learning explainer ("GE" in the figures)."""

    capabilities = ExplainerCapabilities(
        name="GNNExplainer",
        short_name="GE",
        requires_learning=True,
        tasks="GC/NC",
        target="E/NF",
        model_agnostic=True,
        label_specific=False,
        size_bound=False,
        coverage=False,
        configurable=False,
        queryable=False,
    )

    def __init__(
        self,
        model: GnnClassifier,
        epochs: int = 80,
        lr: float = 0.05,
        size_weight: float = 0.05,
        entropy_weight: float = 0.1,
        feature_size_weight: float = 0.02,
        seed: RngLike = 0,
    ) -> None:
        super().__init__(model)
        self.epochs = epochs
        self.lr = lr
        self.size_weight = size_weight
        self.entropy_weight = entropy_weight
        self.feature_size_weight = feature_size_weight
        self._rng = ensure_rng(seed)

    # ------------------------------------------------------------------
    def explain_graph(
        self,
        graph: Graph,
        label: Optional[int] = None,
        max_nodes: Optional[int] = None,
        graph_index: int = 0,
    ) -> Optional[ExplanationSubgraph]:
        if graph.n_nodes == 0:
            return None
        label = self._resolve_label(graph, label)
        edge_weights, _ = self.learn_masks(graph, label)
        nodes = self._select_nodes(graph, edge_weights, max_nodes)
        if not nodes:
            return None
        return self._finalize(graph, nodes, label, graph_index)

    # ------------------------------------------------------------------
    def learn_masks(
        self, graph: Graph, label: int
    ) -> Tuple[Dict[Tuple[int, int], float], np.ndarray]:
        """Optimize the masks; returns (edge weights, feature weights)."""
        model = self.model
        X = model.features_for(graph)
        Q = model.aggregation_matrix(graph)
        edges = list(graph.edge_types.keys())
        if not edges:
            # no edges to mask: every node is its own explanation unit
            return {}, np.ones(X.shape[1])

        edge_logits = self._rng.normal(0.0, 0.1, size=len(edges))
        feat_logits = self._rng.normal(2.0, 0.1, size=X.shape[1])
        optimizer = Adam(lr=self.lr)

        for _ in range(self.epochs):
            m = _sigmoid(edge_logits)
            f = _sigmoid(feat_logits)
            Qm = self._masked_q(Q, edges, m, graph)
            Xm = X * f[None, :]
            cache = model.forward(Xm, Qm)
            loss, dlogits = softmax_cross_entropy(cache.logits, label)
            back = model.backward(cache, dlogits, need_input_grads=True)
            d_edge, d_feat = self._mask_gradients(
                graph, Q, X, edges, m, f, back.dQ, back.dX
            )
            # size + entropy regularizers
            d_edge += self.size_weight * m * (1 - m)
            ent_grad = np.log((m + 1e-9) / (1 - m + 1e-9)) * m * (1 - m)
            d_edge -= self.entropy_weight * ent_grad  # minimize entropy
            d_feat += self.feature_size_weight * f * (1 - f)
            optimizer.step([edge_logits, feat_logits], [d_edge, d_feat])

        weights = {e: float(w) for e, w in zip(edges, _sigmoid(edge_logits))}
        return weights, _sigmoid(feat_logits)

    def _masked_q(
        self,
        Q: np.ndarray,
        edges: List[Tuple[int, int]],
        mask: np.ndarray,
        graph: Graph,
    ) -> np.ndarray:
        Qm = Q.copy()
        for (u, v), w in zip(edges, mask):
            Qm[u, v] = Q[u, v] * w
            if not graph.directed:
                Qm[v, u] = Q[v, u] * w
        return Qm

    def _mask_gradients(
        self,
        graph: Graph,
        Q: np.ndarray,
        X: np.ndarray,
        edges: List[Tuple[int, int]],
        m: np.ndarray,
        f: np.ndarray,
        dQ: np.ndarray,
        dX: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        d_edge = np.empty_like(m)
        for i, (u, v) in enumerate(edges):
            g = dQ[u, v] * Q[u, v]
            if not graph.directed:
                g += dQ[v, u] * Q[v, u]
            d_edge[i] = g * m[i] * (1 - m[i])
        d_feat = (dX * X).sum(axis=0) * f * (1 - f)
        return d_edge, d_feat

    def _select_nodes(
        self,
        graph: Graph,
        edge_weights: Dict[Tuple[int, int], float],
        max_nodes: Optional[int],
    ) -> List[int]:
        """Take highest-weight edges until the node budget fills."""
        budget = max_nodes if max_nodes is not None else graph.n_nodes
        if not edge_weights:
            return list(graph.nodes())[:budget]
        chosen: List[int] = []
        seen = set()
        for (u, v), _ in sorted(
            edge_weights.items(), key=lambda kv: -kv[1]
        ):
            for node in (u, v):
                if node not in seen:
                    if len(chosen) >= budget:
                        return chosen
                    seen.add(node)
                    chosen.append(node)
        return chosen


__all__ = ["GnnExplainer"]
