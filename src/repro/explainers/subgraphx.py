"""SubgraphX baseline (Yuan et al., ICML 2021).

Explores connected subgraphs with Monte-Carlo tree search, scoring
candidates by a Monte-Carlo Shapley estimate: the marginal effect of a
subgraph on the predicted class probability, averaged over random
coalitions of the remaining nodes. The search starts from the input
graph and prunes one node per tree edge; the best small subgraph found
within the rollout budget becomes the explanation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.explainers.base import Explainer, ExplainerCapabilities
from repro.gnn.model import GnnClassifier
from repro.graphs.graph import Graph
from repro.graphs.view import ExplanationSubgraph
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class _TreeNode:
    nodes: Tuple[int, ...]
    children: List["_TreeNode"] = field(default_factory=list)
    expanded: bool = False
    visits: int = 0
    total_reward: float = 0.0

    @property
    def mean_reward(self) -> float:
        return self.total_reward / self.visits if self.visits else 0.0


class SubgraphX(Explainer):
    """MCTS + Shapley subgraph explainer ("SX" in the figures)."""

    capabilities = ExplainerCapabilities(
        name="SubgraphX",
        short_name="SX",
        requires_learning=False,
        tasks="GC/NC",
        target="Subgraph",
        model_agnostic=True,
        label_specific=False,
        size_bound=False,
        coverage=False,
        configurable=False,
        queryable=False,
    )

    def __init__(
        self,
        model: GnnClassifier,
        rollouts: int = 30,
        shapley_samples: int = 8,
        exploration: float = 1.0,
        prune_candidates: int = 4,
        seed: RngLike = 0,
    ) -> None:
        super().__init__(model)
        self.rollouts = rollouts
        self.shapley_samples = shapley_samples
        self.exploration = exploration
        self.prune_candidates = prune_candidates
        self._rng = ensure_rng(seed)

    # ------------------------------------------------------------------
    def explain_graph(
        self,
        graph: Graph,
        label: Optional[int] = None,
        max_nodes: Optional[int] = None,
        graph_index: int = 0,
    ) -> Optional[ExplanationSubgraph]:
        if graph.n_nodes == 0:
            return None
        label = self._resolve_label(graph, label)
        budget = max_nodes if max_nodes is not None else max(graph.n_nodes // 2, 1)

        root_nodes = tuple(sorted(max(graph.connected_components(), key=len)))
        root = _TreeNode(nodes=root_nodes)
        best: Optional[Tuple[float, Tuple[int, ...]]] = None
        reward_cache: Dict[Tuple[int, ...], float] = {}

        for _ in range(self.rollouts):
            path = self._select_path(root, graph)
            leaf = path[-1]
            reward = self._shapley(graph, leaf.nodes, label, reward_cache)
            for node in path:
                node.visits += 1
                node.total_reward += reward
            if len(leaf.nodes) <= budget:
                candidate = (reward, leaf.nodes)
                if best is None or candidate[0] > best[0]:
                    best = candidate

        if best is None:
            # no leaf within budget: take the highest-reward node set and
            # truncate by dropping lowest-degree nodes while connected
            best_nodes = self._truncate(graph, root_nodes, budget)
        else:
            best_nodes = best[1]
        if not best_nodes:
            return None
        return self._finalize(graph, best_nodes, label, graph_index, score=0.0)

    # ------------------------------------------------------------------
    def _select_path(self, root: _TreeNode, graph: Graph) -> List[_TreeNode]:
        path = [root]
        node = root
        while len(node.nodes) > 2:
            if not node.expanded:
                node.children = self._expand(node, graph)
                node.expanded = True
            if not node.children:
                break
            node = self._ucb_child(node)
            path.append(node)
            if node.visits == 0:
                break  # simulate from the first unvisited child
        return path

    def _expand(self, node: _TreeNode, graph: Graph) -> List["_TreeNode"]:
        """Children = prune one low-degree node, keeping connectivity."""
        subset = set(node.nodes)
        removable: List[Tuple[int, int]] = []
        for v in node.nodes:
            rest = subset - {v}
            if rest and graph.is_connected_subset(rest):
                degree = sum(1 for w in graph.all_neighbors(v) if w in subset)
                removable.append((degree, v))
        removable.sort()
        children = []
        for _, v in removable[: self.prune_candidates]:
            children.append(_TreeNode(nodes=tuple(sorted(subset - {v}))))
        return children

    def _ucb_child(self, node: _TreeNode) -> _TreeNode:
        total = max(node.visits, 1)
        best_child = node.children[0]
        best_score = -math.inf
        for child in node.children:
            if child.visits == 0:
                return child
            score = child.mean_reward + self.exploration * math.sqrt(
                math.log(total) / child.visits
            )
            if score > best_score:
                best_score = score
                best_child = child
        return best_child

    def _shapley(
        self,
        graph: Graph,
        nodes: Tuple[int, ...],
        label: int,
        cache: Dict[Tuple[int, ...], float],
    ) -> float:
        """MC Shapley: E_T[ P(S ∪ T) - P(T) ] over random outside coalitions."""
        if nodes in cache:
            return cache[nodes]
        subset = set(nodes)
        outside = [v for v in graph.nodes() if v not in subset]
        total = 0.0
        for _ in range(self.shapley_samples):
            if outside:
                k = int(self._rng.integers(0, len(outside) + 1))
                coalition = set(
                    self._rng.choice(outside, size=k, replace=False).tolist()
                ) if k else set()
            else:
                coalition = set()
            with_s = self._subset_probability(graph, subset | coalition, label)
            without_s = (
                self._subset_probability(graph, coalition, label)
                if coalition
                else 1.0 / self.model.n_classes
            )
            total += with_s - without_s
        reward = total / self.shapley_samples
        cache[nodes] = reward
        return reward

    def _truncate(
        self, graph: Graph, nodes: Tuple[int, ...], budget: int
    ) -> Tuple[int, ...]:
        subset = set(nodes)
        while len(subset) > budget:
            removable = [
                v
                for v in subset
                if len(subset) == 1 or graph.is_connected_subset(subset - {v})
            ]
            if not removable:
                break
            v = min(
                removable,
                key=lambda u: sum(1 for w in graph.all_neighbors(u) if w in subset),
            )
            subset.discard(v)
        return tuple(sorted(subset))


__all__ = ["SubgraphX"]
