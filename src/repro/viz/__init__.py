"""Visualization: ASCII / DOT / report rendering of explanation structures."""

from repro.viz.render import (
    ascii_graph,
    ascii_pattern,
    subgraph_report,
    to_dot,
    view_report,
    view_to_dot,
    viewset_report,
)

__all__ = [
    "ascii_graph",
    "ascii_pattern",
    "to_dot",
    "view_to_dot",
    "subgraph_report",
    "view_report",
    "viewset_report",
]
