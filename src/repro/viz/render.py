"""Human-readable rendering of graphs, patterns, and explanation views.

GVEX's pitch is *human inspection*: analysts read patterns, compare
subgraphs, and issue queries. This module renders the structures in
three formats:

* **ASCII summaries** — terminal-friendly adjacency sketches;
* **DOT** — Graphviz source for figures (no graphviz dependency; the
  output is plain text a user can pipe to ``dot -Tpng``);
* **view reports** — a full explanation view as a readable document,
  the textual equivalent of the paper's Figures 1/2/10/11.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence

from repro.graphs.graph import Graph
from repro.graphs.pattern import Pattern
from repro.graphs.view import ExplanationSubgraph, ExplanationView, ViewSet

#: default node-type names when the caller supplies none
_FALLBACK = "abcdefghijklmnopqrstuvwxyz"


def _type_name(t: int, names: Optional[Mapping[int, str]]) -> str:
    if names is not None and t in names:
        return names[t]
    if 0 <= t < len(_FALLBACK):
        return _FALLBACK[t]
    return f"t{t}"


# ----------------------------------------------------------------------
# ASCII
# ----------------------------------------------------------------------
def ascii_graph(
    graph: Graph,
    type_names: Optional[Mapping[int, str]] = None,
    indent: str = "",
) -> str:
    """Adjacency-list sketch, one node per line.

    >>> from repro.graphs.graph import graph_from_edges
    >>> print(ascii_graph(graph_from_edges([0, 1], [(0, 1)])))
    0[a] -- 1
    1[b] -- 0
    """
    lines = []
    arrow = "->" if graph.directed else "--"
    for v in graph.nodes():
        label = f"{v}[{_type_name(graph.node_type(v), type_names)}]"
        neigh = sorted(graph.neighbors(v))
        right = ", ".join(str(w) for w in neigh) if neigh else "(isolated)"
        lines.append(f"{indent}{label} {arrow} {right}")
    return "\n".join(lines)


def ascii_pattern(
    pattern: Pattern, type_names: Optional[Mapping[int, str]] = None
) -> str:
    """One-line pattern signature: types plus edge list."""
    g = pattern.graph
    types = ",".join(
        _type_name(g.node_type(v), type_names) for v in g.nodes()
    )
    arrow = "->" if g.directed else "-"
    edges = " ".join(f"{u}{arrow}{v}" for u, v, _ in g.edges())
    return f"({types})" + (f" [{edges}]" if edges else "")


# ----------------------------------------------------------------------
# DOT (Graphviz)
# ----------------------------------------------------------------------
def to_dot(
    graph: Graph,
    name: str = "G",
    type_names: Optional[Mapping[int, str]] = None,
    highlight: Iterable[int] = (),
) -> str:
    """Graphviz source; ``highlight`` nodes are filled (explanations)."""
    marked = set(highlight)
    kind = "digraph" if graph.directed else "graph"
    connector = "->" if graph.directed else "--"
    lines = [f"{kind} {name} {{"]
    for v in graph.nodes():
        label = _type_name(graph.node_type(v), type_names)
        style = ' style=filled fillcolor="gold"' if v in marked else ""
        lines.append(f'  n{v} [label="{label}"{style}];')
    for u, v, t in graph.edges():
        attr = f' [label="{t}"]' if t != 0 else ""
        lines.append(f"  n{u} {connector} n{v}{attr};")
    lines.append("}")
    return "\n".join(lines)


def view_to_dot(
    view: ExplanationView,
    type_names: Optional[Mapping[int, str]] = None,
) -> str:
    """All of a view's patterns as one DOT document with clusters."""
    lines = [f"graph view_{view.label} {{"]
    for i, pattern in enumerate(view.patterns):
        g = pattern.graph
        lines.append(f"  subgraph cluster_p{i} {{")
        lines.append(f'    label="P{i}";')
        for v in g.nodes():
            label = _type_name(g.node_type(v), type_names)
            lines.append(f'    p{i}_{v} [label="{label}"];')
        connector = "->" if g.directed else "--"
        for u, v, t in g.edges():
            lines.append(f"    p{i}_{u} {connector} p{i}_{v};")
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# reports
# ----------------------------------------------------------------------
def subgraph_report(
    sub: ExplanationSubgraph,
    type_names: Optional[Mapping[int, str]] = None,
) -> str:
    flags = []
    flags.append("consistent" if sub.consistent else "NOT consistent")
    flags.append("counterfactual" if sub.counterfactual else "NOT counterfactual")
    header = (
        f"graph #{sub.graph_index}: nodes {list(sub.nodes)} "
        f"({', '.join(flags)}; score {sub.score:.3f})"
    )
    body = ascii_graph(sub.subgraph, type_names, indent="    ")
    return header + "\n" + body


def view_report(
    view: ExplanationView,
    type_names: Optional[Mapping[int, str]] = None,
    max_subgraphs: int = 5,
) -> str:
    """A full explanation view as a readable document."""
    lines = [
        f"Explanation view for label {view.label!r}",
        f"  explainability f = {view.score:.3f}",
        f"  compression = {view.compression():.1%}, edge loss = {view.edge_loss:.1%}",
        "",
        f"  Higher tier — {len(view.patterns)} pattern(s):",
    ]
    for i, pattern in enumerate(view.patterns):
        lines.append(f"    P{i}: {ascii_pattern(pattern, type_names)}")
    lines.append("")
    shown = view.subgraphs[:max_subgraphs]
    lines.append(
        f"  Lower tier — {len(view.subgraphs)} explanation subgraph(s)"
        + (f", first {len(shown)}:" if len(view.subgraphs) > len(shown) else ":")
    )
    for sub in shown:
        for row in subgraph_report(sub, type_names).splitlines():
            lines.append("    " + row)
    return "\n".join(lines)


def viewset_report(
    views: ViewSet,
    type_names: Optional[Mapping[int, str]] = None,
    max_subgraphs: int = 3,
) -> str:
    parts = [
        view_report(view, type_names, max_subgraphs=max_subgraphs)
        for view in views
    ]
    return ("\n" + "=" * 60 + "\n").join(parts)


__all__ = [
    "ascii_graph",
    "ascii_pattern",
    "to_dot",
    "view_to_dot",
    "subgraph_report",
    "view_report",
    "viewset_report",
]
