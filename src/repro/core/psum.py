"""Procedure ``Psum`` — summarize explanation subgraphs into patterns (§4).

Given the explanation subgraphs ``G_s^l`` of one label group, find a
pattern set ``P^l`` that (1) covers every subgraph node and (2)
minimizes the total edge-miss penalty ``w(P) = 1 - |P_ES| / |E_S|``.
This is minimum-weight set cover; the greedy rule "maximize newly
covered nodes per unit weight" gives the H_{u_l}-approximation of
Lemma 4.3.

Candidates come from :func:`repro.mining.mine_patterns` (``PGen``),
which always includes singleton patterns, so full node coverage is
always reachable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from repro.config import GvexConfig
from repro.graphs.graph import Graph
from repro.graphs.pattern import Pattern
from repro.matching.coverage import CoverageIndex, NodeRef
from repro.mining.mdl import MinedPattern
from repro.mining.pgen import mine_patterns

#: tie-break epsilon so zero-weight patterns stay strictly preferable
_EPS = 1e-9


@dataclass
class PsumResult:
    """Outcome of the summarize phase."""

    patterns: List[Pattern] = field(default_factory=list)
    covered_nodes: int = 0
    total_nodes: int = 0
    covered_edges: int = 0
    total_edges: int = 0

    @property
    def node_coverage_complete(self) -> bool:
        return self.covered_nodes == self.total_nodes

    @property
    def edge_loss(self) -> float:
        """Fraction of subgraph edges the pattern set fails to cover
        (Fig. 8c-d's metric)."""
        if self.total_edges == 0:
            return 0.0
        return 1.0 - self.covered_edges / self.total_edges


def summarize(
    subgraphs: Sequence[Graph],
    config: GvexConfig,
    candidates: Optional[Sequence[MinedPattern]] = None,
) -> PsumResult:
    """Run Psum over explanation subgraphs; returns the selected patterns.

    ``candidates`` can inject a pre-mined pool (StreamGVEX's ΔP); by
    default ``PGen`` mines fresh ones.
    """
    hosts = [g for g in subgraphs if g.n_nodes > 0]
    if not hosts:
        return PsumResult()
    if candidates is None:
        candidates = mine_patterns(
            hosts,
            max_size=config.max_pattern_size,
            min_support=config.min_pattern_support,
            backend=config.matching_backend,
        )

    index = CoverageIndex(hosts, backend=config.matching_backend)
    total_edges = index.n_edges
    universe = set(index.all_nodes)
    total_nodes = len(universe)

    # precompute coverage and weights per candidate
    pool: List[Tuple[Pattern, Set[NodeRef], Set]] = []
    for mined in candidates:
        cov = index.coverage(mined.pattern)
        if cov.n_nodes == 0:
            continue
        pool.append((mined.pattern, set(cov.nodes), set(cov.edges)))

    selected: List[Pattern] = []
    covered: Set[NodeRef] = set()
    covered_edges: Set = set()
    while covered != universe and pool:
        best_i = -1
        best_ratio = -1.0
        for i, (pattern, nodes, edges) in enumerate(pool):
            new_nodes = len(nodes - covered)
            if new_nodes == 0:
                continue
            weight = _edge_miss_weight(edges, total_edges)
            ratio = new_nodes / (weight + _EPS)
            if ratio > best_ratio:
                best_ratio = ratio
                best_i = i
        if best_i < 0:
            break  # no candidate adds coverage
        pattern, nodes, edges = pool.pop(best_i)
        selected.append(pattern)
        covered |= nodes
        covered_edges |= edges

    return PsumResult(
        patterns=selected,
        covered_nodes=len(covered),
        total_nodes=total_nodes,
        covered_edges=len(covered_edges),
        total_edges=total_edges,
    )


def _edge_miss_weight(pattern_edges: Set, total_edges: int) -> float:
    """``w(P) = 1 - |P_ES| / |E_S|`` (Jaccard-style edge penalty)."""
    if total_edges == 0:
        return 0.0
    return 1.0 - len(pattern_edges) / total_edges


__all__ = ["summarize", "PsumResult"]
