"""``StreamGVEX`` — single-pass streaming view maintenance (Algorithm 3, §5).

Processes each graph's nodes as a stream in batches. The selected set
``V_S`` acts as a size-``u_l`` cache maintained by ``IncUpdateVS``
(Procedure 4): once full, an arriving node ``v`` replaces the
cheapest-to-lose incumbent ``v⁻`` only when ``gain(v) >= 2 · loss(v⁻)``
— the swap rule that preserves the streaming 1/4-approximation
(Theorem 5.1). ``IncUpdateP`` (Procedure 5) keeps the higher-tier
pattern set covering ``V_S``, mining new candidates only from the
arriving node's ``r``-hop neighborhood (``IncPGen``).

``IncEVerify`` — the per-chunk refresh of the influence/diversity
oracle on the seen prefix — has two schedules, selected by
``GvexConfig.stream_inc``:

* ``"incremental"`` (default): :class:`~repro.core.inc_everify.
  IncrementalEVerify` carries the propagation-power sequence, the
  per-layer hidden states, and the embedding-distance matrix across
  chunks as persistent accumulators, extending them with rank-bounded
  updates when nodes arrive — the paper's genuinely incremental
  reading of §5 (see docs/streaming.md).
* ``"rebuild"``: re-derive the oracle on the seen induced subgraph
  once per chunk. Semantically identical, pays a full forward pass
  and power build per chunk; kept as the parity reference.

Every batch boundary records an :class:`AnytimeSnapshot`, giving the
"anytime" view quality/runtime curves of Figures 9(f) and 12;
:class:`StreamResult.oracle_stats` accounts the maintenance work so
the schedules can be compared (``bench_fig12_node_order.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.config import GvexConfig, STREAM_INCREMENTAL, VERIFY_PAPER
from repro.core.explainability import ExplainabilityOracle, SelectionState
from repro.core.inc_everify import IncrementalEVerify, OracleStats
from repro.core.psum import summarize
from repro.core.verifiers import GnnVerifier, make_verifier, vp_extend
from repro.gnn.model import GnnClassifier
from repro.graphs.database import GraphDatabase
from repro.graphs.graph import Graph
from repro.graphs.pattern import Pattern
from repro.graphs.view import ExplanationSubgraph, ExplanationView, ViewSet
from repro.mining.mdl import MinedPattern
from repro.mining.pgen import mine_incremental, mine_patterns
from repro.utils.rng import RngLike, ensure_rng
from repro.exceptions import MissingKeyError, ValidationError


@dataclass(frozen=True)
class AnytimeSnapshot:
    """State of the stream after one batch (for anytime curves)."""

    fraction_seen: float
    selected_nodes: int
    objective: float
    patterns: int
    elapsed_seconds: float


@dataclass
class StreamResult:
    """Per-graph streaming outcome.

    ``oracle_stats`` accounts the ``IncEVerify`` maintenance work: the
    rebuild schedule pays one full refresh per chunk, the incremental
    engine one per stream plus cheap extensions — the per-chunk launch
    contrast the parity suite and ``bench_fig12_node_order.py`` assert.
    """

    subgraph: Optional[ExplanationSubgraph]
    patterns: List[Pattern] = field(default_factory=list)
    snapshots: List[AnytimeSnapshot] = field(default_factory=list)
    oracle_stats: OracleStats = field(default_factory=OracleStats)


class StreamGvex:
    """Streaming view generation with anytime guarantees (Algorithm 3).

    Maintains an explanation view over a single pass of each graph's
    node stream; any prefix of the stream yields a valid (1/4-
    approximate, Theorem 5.1) view, which is what makes the algorithm
    "anytime". ``GvexConfig.stream_inc`` selects the ``IncEVerify``
    schedule (incremental accumulators vs. per-chunk rebuild) and
    ``GvexConfig.verifier_backend`` the ``EVerify`` scheduling — all
    four combinations select identical views.
    """

    def __init__(
        self,
        model: GnnClassifier,
        config: Optional[GvexConfig] = None,
        labels: Optional[Iterable[int]] = None,
        seed: RngLike = None,
    ) -> None:
        self.model = model
        self.config = config if config is not None else GvexConfig()
        self.labels = None if labels is None else sorted(set(labels))
        self._rng = ensure_rng(seed)

    # ------------------------------------------------------------------
    # per-graph stream (Algorithm 3)
    # ------------------------------------------------------------------
    def explain_graph_stream(
        self,
        graph: Graph,
        label: int,
        graph_index: int = 0,
        order: Optional[Sequence[int]] = None,
        lower: Optional[int] = None,
        upper: Optional[int] = None,
    ) -> StreamResult:
        """Run the node stream for one graph.

        ``order`` fixes the arrival order (default: natural node order);
        StreamGVEX's guarantees are order-independent (§A.8), which
        Figure 12's bench verifies empirically.
        """
        bounds = self.config.coverage_for(label)
        lower = bounds.lower if lower is None else lower
        upper = bounds.upper if upper is None else upper
        upper = min(upper, graph.n_nodes)
        if graph.n_nodes == 0 or upper == 0:
            return StreamResult(subgraph=None)
        stream = list(order) if order is not None else list(graph.nodes())
        if sorted(stream) != list(graph.nodes()):
            raise ValidationError("order must be a permutation of the graph's nodes")

        start = time.perf_counter()
        config = self.config
        batch = config.stream_batch_size
        verifier = make_verifier(self.model, graph, config)
        mode = config.verification
        engine: Optional[IncrementalEVerify] = None
        stats = OracleStats()
        if config.stream_inc == STREAM_INCREMENTAL:
            engine = IncrementalEVerify(self.model, config)
            stats = engine.stats

        seen: List[int] = []
        selected: Set[int] = set()  # global node ids
        backup: Set[int] = set()
        patterns: List[Pattern] = []
        # canonization memo for IncUpdateP: maps source-graph node
        # subsets of admitted V_S subgraphs to their induced Pattern
        # (with its cached WL key), so chunk-over-chunk re-mining stops
        # re-canonizing subsets it already saw (ROADMAP open item);
        # evicted when the repair scan mutates the selection
        psum_memo: Dict[Tuple[int, ...], Pattern] = {}
        snapshots: List[AnytimeSnapshot] = []
        oracle: Optional[ExplainabilityOracle] = None
        state: Optional[SelectionState] = None
        to_local: Dict[int, int] = {}

        for batch_start in range(0, len(stream), batch):
            chunk = stream[batch_start : batch_start + batch]
            seen.extend(chunk)
            # IncEVerify: refresh influence/diversity on the seen prefix
            # — extending persistent accumulators (incremental) or
            # re-deriving the oracle (rebuild), per config.stream_inc
            seen_sub, seen_ids = graph.induced_subgraph(seen)
            to_local = {g: l for l, g in enumerate(seen_ids)}
            if engine is not None:
                oracle = engine.refresh(seen_sub, seen_ids)
            else:
                oracle = ExplainabilityOracle(self.model, seen_sub, config)
                stats.full_refreshes += 1
            state = oracle.state_for([to_local[v] for v in selected])

            if mode == VERIFY_PAPER and verifier.is_batched:
                # speculative frontier fill for the arriving chunk: the
                # selected set rarely changes mid-chunk once the cache
                # is warm, so most per-node vp_extend probes hit. Only
                # the batched backend prefetches — the serial reference
                # must keep its lazy one-forward-per-probe schedule.
                fresh = [v for v in chunk if v not in selected]
                verifier.prefetch_extensions(selected, fresh)
                verifier.prefetch_remainders(
                    [frozenset(selected | {v}) for v in fresh]
                )
            for v in chunk:
                backup.add(v)
                if mode == VERIFY_PAPER and not vp_extend(
                    v,
                    frozenset(selected),
                    verifier,
                    label,
                    graph.n_nodes + 1,  # size handled by IncUpdateVS
                    mode,
                ):
                    continue
                took = self._inc_update_vs(
                    v, selected, backup, oracle, state, to_local, upper,
                    seen_sub, seen_ids, patterns,
                )
                if took:
                    self._inc_update_p(
                        graph, selected, patterns, config, memo=psum_memo
                    )
            assert oracle is not None and state is not None
            snapshots.append(
                AnytimeSnapshot(
                    fraction_seen=len(seen) / graph.n_nodes,
                    selected_nodes=len(selected),
                    objective=oracle.value_of_state(state),
                    patterns=len(patterns),
                    elapsed_seconds=time.perf_counter() - start,
                )
            )

        # post-processing: meet the lower bound from the backup pool
        assert oracle is not None and state is not None
        while len(selected) < lower:
            candidates = [
                to_local[v] for v in backup - selected if v in to_local
            ]
            v_local = oracle.best_candidate(state, candidates)
            if v_local is None:
                break
            oracle.add(state, v_local)
            selected.add(_global_of(to_local, v_local))
        if len(selected) < lower or not selected:
            return StreamResult(
                subgraph=None,
                patterns=patterns,
                snapshots=snapshots,
                oracle_stats=stats,
            )

        # consistency repair: the stream admits nodes in arrival order, so
        # the cache may lack the class-evidencing region; extend toward it
        # (hill-climb on the subgraph's class probability) within u_l
        while (
            len(selected) < upper
            and verifier.label_of_nodes(selected) != label
        ):
            pool = sorted(set(graph.nodes()) - selected)
            if not pool:
                break
            # every pool extension is probed by the argmax below — fill
            # the cache with one stacked pass per repair round; the
            # frontier's index rows are one vectorized splice into the
            # sorted selection, not per-subset sorting
            verifier.prefetch_extensions(selected, pool)
            best = max(
                pool,
                key=lambda v: (
                    verifier.subset_probability(selected | {v}, label),
                    -v,
                ),
            )
            if (
                verifier.subset_probability(selected | {best}, label)
                <= verifier.subset_probability(selected, label) + 1e-12
            ):
                break
            selected.add(best)
            psum_memo.clear()  # repair-scan mutation: evict stale memo
            if best in to_local:
                oracle.add(state, to_local[best])

        nodes = tuple(sorted(selected))
        sub, _ = graph.induced_subgraph(nodes)
        consistent, counterfactual = verifier.check(nodes, label)
        self._inc_update_p(graph, selected, patterns, config, memo=psum_memo)
        score = oracle.value_of_state(state)
        return StreamResult(
            subgraph=ExplanationSubgraph(
                graph_index=graph_index,
                nodes=nodes,
                subgraph=sub,
                consistent=consistent,
                counterfactual=counterfactual,
                score=score,
            ),
            patterns=patterns,
            snapshots=snapshots,
            oracle_stats=stats,
        )

    # ------------------------------------------------------------------
    def _inc_update_vs(
        self,
        v: int,
        selected: Set[int],
        backup: Set[int],
        oracle: ExplainabilityOracle,
        state: SelectionState,
        to_local: Dict[int, int],
        upper: int,
        seen_sub: Graph,
        seen_ids: List[int],
        patterns: Sequence[Pattern],
    ) -> bool:
        """``IncUpdateVS`` (Procedure 4): maintain the size-``u_l`` cache.

        An arriving node with fresh pattern structure replaces the
        cheapest-to-lose incumbent ``v⁻`` only when ``gain(v) >=
        2·loss(v⁻)`` — the Theorem 5.1 swap rule, whose doubled-loss
        margin is what bounds the value surrendered over the stream
        and preserves the 1/4-approximation. Gains and losses are the
        submodular marginals of Eq. 2 (Lemma 3.3), served by the
        chunk's ``IncEVerify`` oracle. Returns True when ``v`` entered
        ``V_S``.
        """
        v_local = to_local[v]
        # (a) cache not full: just add
        if len(selected) < upper:
            oracle.add(state, v_local)
            selected.add(v)
            return True
        # (b) v contributes no new pattern structure: skip
        delta = mine_incremental(
            seen_sub,
            new_node=v_local,
            radius=self.config.stream_radius,
            known=patterns,
            max_size=self.config.max_pattern_size,
            backend=self.config.matching_backend,
        )
        if not delta:
            return False
        # (c) swap against the cheapest incumbent when gain >= 2 * loss
        local_selected = [to_local[u] for u in selected]
        v_minus_local = min(
            local_selected, key=lambda u: (oracle.loss(state, u), u)
        )
        reduced = oracle.remove(state, v_minus_local)
        gain_v = oracle.gain(reduced, v_local)
        gain_v_minus = oracle.gain(reduced, v_minus_local)
        if gain_v >= 2.0 * gain_v_minus:
            v_minus_global = seen_ids[v_minus_local]
            selected.discard(v_minus_global)
            backup.add(v_minus_global)
            oracle.add(reduced, v_local)
            selected.add(v)
            state.selected = reduced.selected
            state.influenced = reduced.influenced
            state.diversity = reduced.diversity
            return True
        return False

    def _inc_update_p(
        self,
        graph: Graph,
        selected: Set[int],
        patterns: List[Pattern],
        config: GvexConfig,
        memo: Optional[Dict[Tuple[int, ...], Pattern]] = None,
    ) -> None:
        """Procedure 5: keep patterns covering ``V_S`` with small edge loss.

        Re-runs the weighted-cover greedy on the (≤ u_l node) induced
        subgraph of ``V_S``, with the incumbent patterns plus freshly
        mined candidates as the pool; incumbents that no longer
        contribute coverage are swapped out exactly as the paper's
        case analysis prescribes. ``memo`` caches the induced Pattern
        (hence its canonical WL key) per source-node subset across the
        stream's repeated calls — each admitted node re-mines a ``V_S``
        that overlaps the previous one almost entirely, and memoized
        subsets skip Pattern construction and re-canonization while
        producing byte-identical candidates.
        """
        if not selected:
            return
        vs_sub, vs_ids = graph.induced_subgraph(selected)
        pool: List[MinedPattern] = [
            MinedPattern(p, support=1, embeddings=1) for p in patterns
        ]
        pool.extend(
            mine_patterns(
                [vs_sub],
                max_size=config.max_pattern_size,
                min_support=1,
                max_candidates=50,
                backend=config.matching_backend,
                subset_keys=[vs_ids] if memo is not None else None,
                pattern_memo=memo,
            )
        )
        result = summarize([vs_sub], config, candidates=pool)
        patterns[:] = result.patterns

    # ------------------------------------------------------------------
    # database-level driver
    # ------------------------------------------------------------------
    def explain(
        self,
        db: GraphDatabase,
        predicted: Optional[Sequence[Optional[int]]] = None,
        shuffle_streams: bool = False,
    ) -> ViewSet:
        """Generate explanation views for every label of interest.

        Groups the database by (given or predicted) label and streams
        each graph through :meth:`explain_graph_stream`, then
        summarizes the higher-tier patterns per label group (``Psum``)
        — the streaming counterpart of Problem 1's view generation.
        """
        if predicted is None:
            from repro.core.approx import database_predictions

            predicted = database_predictions(self.model, db)
        groups: Dict[int, List[int]] = {}
        for i, l in enumerate(predicted):
            if l is None:
                continue
            groups.setdefault(int(l), []).append(i)

        labels = self.labels if self.labels is not None else sorted(groups)
        views = ViewSet()
        for label in labels:
            view = ExplanationView(label=label)
            for idx in groups.get(label, []):
                graph = db[idx]
                order = None
                if shuffle_streams:
                    order = list(self._rng.permutation(graph.n_nodes))
                result = self.explain_graph_stream(
                    graph, label, graph_index=idx, order=order
                )
                if result.subgraph is not None:
                    view.subgraphs.append(result.subgraph)
            psum = summarize([s.subgraph for s in view.subgraphs], self.config)
            view.patterns = psum.patterns
            view.edge_loss = psum.edge_loss
            view.score = sum(s.score for s in view.subgraphs)
            views.add(view)
        return views


def _global_of(to_local: Dict[int, int], local: int) -> int:
    for g, l in to_local.items():
        if l == local:
            return g
    raise MissingKeyError(local)


__all__ = ["StreamGvex", "StreamResult", "AnytimeSnapshot"]
