"""GVEX for node classification (the paper's NC column in Table 1).

A node prediction depends only on the node's k-hop ego network (k =
GNN depth), so node explanation reduces to graph explanation: extract
the ego graph, mark the *center* node with an extra feature flag, and
wrap the node classifier as a graph classifier whose output is the
center's prediction. The marker travels through induced subgraphs and
remainders, so GVEX's consistency / counterfactual checks read:

* ``M(G_s) = l`` — the center, given only the explanation's context,
  still gets its label;
* ``M(G \\ G_s) ≠ l`` — removing the explanation's context nodes flips
  (or erases) the center's prediction.

The selection is seeded with the center so the explanation always
contains it (its prediction is what is being explained).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.config import GvexConfig, JACOBIAN_EXPECTED
from repro.core.approx import explain_graph
from repro.exceptions import ExplanationError, ModelError
from repro.gnn.loss import softmax
from repro.gnn.node_model import NodeGnnClassifier
from repro.graphs.graph import Graph
from repro.graphs.view import ExplanationSubgraph


class CenterGraphClassifier:
    """Adapter: a node classifier viewed as a graph classifier.

    Expects graphs whose last feature column is a 0/1 center marker;
    classification returns the marked node's prediction (uniform/None
    when the marker is absent — e.g. after the center was removed).
    Exposes the surface GVEX's oracle and verifiers need
    (``predict``, ``predict_proba``, ``node_embeddings``,
    ``aggregation_matrix``, ``n_layers``).
    """

    def __init__(self, node_model: NodeGnnClassifier) -> None:
        self.node_model = node_model
        self.in_dim = node_model.in_dim + 1
        self.n_classes = node_model.n_classes
        self.hidden_dims = node_model.hidden_dims

    @property
    def n_layers(self) -> int:
        return self.node_model.n_layers

    # ------------------------------------------------------------------
    def _split(self, graph: Graph) -> Tuple[np.ndarray, Optional[int]]:
        X = graph.feature_matrix(n_types=self.in_dim)
        if X.shape[1] != self.in_dim:
            raise ModelError(
                f"expected {self.in_dim} feature columns (incl. center marker), "
                f"got {X.shape[1]}"
            )
        centers = np.flatnonzero(X[:, -1] > 0.5)
        center = int(centers[0]) if len(centers) else None
        return X[:, :-1], center

    def aggregation_matrix(self, graph: Graph) -> np.ndarray:
        return self.node_model.aggregation_matrix(graph)

    def features_for(self, graph: Graph) -> np.ndarray:
        return graph.feature_matrix(n_types=self.in_dim)

    def predict_proba(self, graph: Graph) -> np.ndarray:
        if graph.n_nodes == 0:
            return np.full(self.n_classes, 1.0 / self.n_classes)
        X, center = self._split(graph)
        if center is None:
            return np.full(self.n_classes, 1.0 / self.n_classes)
        Q = self.aggregation_matrix(graph)
        logits, _, _ = self.node_model.forward(X, Q)
        return softmax(logits[center])

    def predict(self, graph: Graph) -> Optional[int]:
        if graph.n_nodes == 0:
            return None
        X, center = self._split(graph)
        if center is None:
            return None
        Q = self.aggregation_matrix(graph)
        logits, _, _ = self.node_model.forward(X, Q)
        return int(np.argmax(logits[center]))

    def node_embeddings(self, graph: Graph) -> np.ndarray:
        X, _ = self._split(graph)
        Q = self.aggregation_matrix(graph)
        return self.node_model.forward(X, Q)[1][-1]

    def predict_proba_batch(
        self,
        graph: Graph,
        node_subsets: List[List[int]],
        cache: Optional[dict] = None,
        presorted: bool = False,
    ) -> np.ndarray:
        """Batched ``predict_proba`` over node-induced subgraphs.

        Lets ``BatchedGnnVerifier`` serve node-explanation frontiers
        with stacked passes. Rows match the serial path bit-for-bit:
        subsets lacking the center marker (or empty) get the uniform
        prior, others the center row of the stacked node-model forward.
        ``presorted=True`` takes a ``(B, k)`` index matrix of strictly
        increasing rows and skips per-subset normalization (the
        frontier-reuse fast path).
        """
        from repro.gnn.batch import (
            batched_aggregation,
            batched_subset_probas,
            presorted_rows_probas,
            stacked_layers,
        )

        def features() -> np.ndarray:
            X_full = graph.feature_matrix(n_types=self.in_dim)
            if X_full.shape[1] != self.in_dim:
                raise ModelError(
                    f"expected {self.in_dim} feature columns "
                    f"(incl. center marker), got {X_full.shape[1]}"
                )
            return X_full

        def forward_group(X_b: np.ndarray, A_b: np.ndarray) -> np.ndarray:
            markers = X_b[:, :, -1] > 0.5
            has_center = markers.any(axis=1)
            centers = markers.argmax(axis=1)  # first marked node per row
            # NodeGnnClassifier is GCN-only (its aggregation_matrix is
            # normalized_adjacency unconditionally); revisit if it ever
            # grows the conv options of its graph-level sibling
            Q_b = batched_aggregation("gcn", 0.0, A_b)
            H = stacked_layers(
                X_b[:, :, :-1],
                Q_b,
                self.node_model.weights,
                self.node_model.biases,
                self.node_model._act,
            )
            logits = H @ self.node_model.head_weight + self.node_model.head_bias
            out = np.empty((X_b.shape[0], self.n_classes), dtype=np.float64)
            for j in range(X_b.shape[0]):
                out[j] = (
                    softmax(logits[j, centers[j]])
                    if has_center[j]
                    else 1.0 / self.n_classes
                )
            return out

        if presorted:
            return presorted_rows_probas(
                graph,
                np.asarray(node_subsets, dtype=np.intp),
                self.n_classes,
                features,
                forward_group,
                cache,
            )
        return batched_subset_probas(
            graph, node_subsets, self.n_classes, features, forward_group, cache
        )


@dataclass
class NodeExplanation:
    """Explanation of one node's predicted label."""

    node: int
    label: int
    context_nodes: Tuple[int, ...]  # global ids, includes the node itself
    subgraph: Graph
    consistent: bool
    counterfactual: bool
    score: float


def explain_node(
    node_model: NodeGnnClassifier,
    graph: Graph,
    node: int,
    config: Optional[GvexConfig] = None,
    radius: Optional[int] = None,
) -> NodeExplanation:
    """Explain why ``node_model`` assigns ``node`` its label in ``graph``."""
    if not 0 <= node < graph.n_nodes:
        raise ExplanationError(f"node {node} not in graph (n={graph.n_nodes})")
    config = config if config is not None else GvexConfig()
    if config.jacobian != JACOBIAN_EXPECTED:
        # the adapter's marker column is not part of the trained network,
        # so the exact Jacobian through it is undefined
        from dataclasses import replace

        config = replace(config, jacobian=JACOBIAN_EXPECTED)
    radius = radius if radius is not None else node_model.n_layers

    ego_nodes = sorted(graph.k_hop_nodes(node, radius))
    ego, ids = graph.induced_subgraph(ego_nodes)
    center_local = ids.index(node)

    X = node_model.features_for(graph)[ids]
    marker = np.zeros((len(ids), 1))
    marker[center_local, 0] = 1.0
    marked = Graph(
        ego.node_types, features=np.hstack([X, marker]), directed=ego.directed
    )
    for u, v, t in ego.edges():
        marked.add_edge(u, v, t)

    adapter = CenterGraphClassifier(node_model)
    label = adapter.predict(marked)
    assert label is not None

    result = explain_graph(adapter, marked, label, config, seed_nodes=(center_local,))
    if result.subgraph is None:
        # degenerate ego (e.g. isolated node): the center is its own context
        nodes_local: Tuple[int, ...] = (center_local,)
        sub, _ = marked.induced_subgraph(nodes_local)
        consistent = adapter.predict(sub) == label
        counterfactual = True  # removing the center erases the prediction
        score = 0.0
    else:
        nodes_local = result.subgraph.nodes
        sub = result.subgraph.subgraph
        consistent = result.subgraph.consistent
        counterfactual = result.subgraph.counterfactual
        score = result.subgraph.score

    return NodeExplanation(
        node=node,
        label=label,
        context_nodes=tuple(ids[v] for v in nodes_local),
        subgraph=sub,
        consistent=consistent,
        counterfactual=counterfactual,
        score=score,
    )


__all__ = ["explain_node", "NodeExplanation", "CenterGraphClassifier"]
