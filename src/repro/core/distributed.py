"""Sharded view generation and view merging (paper's future work).

The conclusion names "distributed view-based GNN explanation" as future
work. The enabler is a *merge* operation on explanation views: each
worker explains a shard of the label group independently (the per-graph
explanation phases don't interact), and partial views merge by taking
the union of their subgraphs and re-running the Psum summarize step on
the union — node coverage is preserved, and the pattern tier stays
near-optimal because Psum's weighted-set-cover greedy sees the merged
subgraph set.

``explain_database_sharded`` demonstrates the scheme on one machine; a
real deployment would run each shard on a different worker and ship the
(JSON-serializable) partial views to a coordinator.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence

from repro.config import GvexConfig
from repro.core.approx import ApproxGvex
from repro.core.parallel import explain_database_parallel
from repro.core.psum import summarize
from repro.gnn.model import GnnClassifier
from repro.graphs.database import GraphDatabase
from repro.graphs.view import ExplanationView, ViewSet


def merge_views(
    views: Sequence[ExplanationView], config: GvexConfig
) -> ExplanationView:
    """Merge partial views of the *same* label into one.

    Subgraphs are unioned (later shards win on duplicate graph
    indices, which cannot happen under disjoint sharding); patterns are
    re-summarized over the union so coverage and edge loss stay valid.
    """
    if not views:
        raise ValueError("merge_views needs at least one view")
    label = views[0].label
    if any(v.label != label for v in views):
        raise ValueError("cannot merge views of different labels")

    by_graph: Dict[int, object] = {}
    for view in views:
        for sub in view.subgraphs:
            by_graph[sub.graph_index] = sub
    merged = ExplanationView(label=label)
    merged.subgraphs = [by_graph[i] for i in sorted(by_graph)]
    psum = summarize([s.subgraph for s in merged.subgraphs], config)
    merged.patterns = psum.patterns
    merged.edge_loss = psum.edge_loss
    merged.score = sum(s.score for s in merged.subgraphs)
    return merged


def merge_view_sets(
    parts: Sequence[ViewSet], config: GvexConfig
) -> ViewSet:
    """Merge shard-level view sets label by label."""
    labels = sorted({l for part in parts for l in part.labels}, key=repr)
    out = ViewSet()
    for label in labels:
        partials = [part[label] for part in parts if label in part]
        out.add(merge_views(partials, config))
    return out


def explain_database_sharded(
    db: GraphDatabase,
    model: GnnClassifier,
    config: Optional[GvexConfig] = None,
    labels: Optional[Iterable[int]] = None,
    n_shards: int = 2,
    processes: int = 1,
) -> ViewSet:
    """Shard the database, explain each shard, merge the partial views.

    Graph indices stay global, so merged views reference the original
    database exactly like the unsharded result.
    """
    config = config if config is not None else GvexConfig()
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    predicted = [model.predict(g) for g in db]

    parts: List[ViewSet] = []
    for shard in range(n_shards):
        shard_predicted: List[Optional[int]] = [
            p if i % n_shards == shard else None for i, p in enumerate(predicted)
        ]
        if processes > 1:
            part = explain_database_parallel(
                db,
                model,
                config,
                labels=labels,
                processes=processes,
                predicted=shard_predicted,
            )
        else:
            part = ApproxGvex(model, config, labels=labels).explain(
                db, predicted=shard_predicted
            )
        parts.append(part)
    return merge_view_sets(parts, config)


__all__ = ["merge_views", "merge_view_sets", "explain_database_sharded"]
