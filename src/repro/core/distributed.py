"""Deprecated: sharded view generation and view merging.

.. deprecated::
    The sharding logic moved to
    :class:`repro.runtime.ShardedExecutor` and the merge contract to
    :mod:`repro.runtime.merge`; this module re-exports both and keeps
    :func:`explain_database_sharded` as a thin wrapper for one
    deprecation cycle (docs/api.md). New code should build an
    :class:`~repro.runtime.ExplainPlan` and run it through
    :class:`~repro.runtime.ShardedExecutor`.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.config import GvexConfig
from repro.gnn.model import GnnClassifier
from repro.graphs.database import GraphDatabase
from repro.graphs.view import ViewSet

from repro.runtime.merge import merge_view_sets, merge_views  # noqa: F401 - legacy home


def explain_database_sharded(
    db: GraphDatabase,
    model: GnnClassifier,
    config: Optional[GvexConfig] = None,
    labels: Optional[Iterable[int]] = None,
    n_shards: int = 2,
    processes: int = 1,
) -> ViewSet:
    """Shard the database, explain each shard, merge the partial views.

    Deprecated wrapper over
    :class:`repro.runtime.ShardedExecutor`; graph indices stay global,
    so merged views reference the original database exactly like the
    unsharded result.
    """
    from repro.runtime import build_plan, run_plan

    plan = build_plan(db, model, config, labels=labels, processes=processes)
    return run_plan(plan, processes=processes, n_shards=n_shards)


__all__ = ["merge_views", "merge_view_sets", "explain_database_sharded"]
