"""Verification primitives: ``EVerify``, ``VpExtend``, and full view
verification (§3.3, §4).

``GnnVerifier`` is the paper's ``EVerify`` operator — it answers "what
label does M assign to this node-induced subgraph / to the remainder of
the graph" with memoization, since the greedy loop re-queries the same
sets. ``vp_extend`` is Procedure 2 with the three operating modes
discussed in DESIGN.md §3. ``verify_view`` is the Lemma 3.1 decision
procedure (constraints C1-C3), used as a correctness oracle in tests
and exposed for users who assemble views by hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.config import (
    BACKEND_SERIAL,
    GvexConfig,
    VERIFY_NONE,
    VERIFY_PAPER,
    VERIFY_SOFT,
)
from repro.gnn.model import GnnClassifier
from repro.graphs.graph import Graph
from repro.graphs.view import ExplanationView
from repro.matching.coverage import CoverageIndex
from repro.exceptions import ValidationError


def uniform_prior(n_classes: int) -> np.ndarray:
    """``M(∅)`` — the uniform class prior used for degenerate queries.

    Shared by the empty-subset and empty-remainder fallbacks so both
    code paths (and :meth:`GnnClassifier.predict_proba` on the empty
    graph) agree on the same distribution.
    """
    n = int(n_classes)
    if n < 1:
        raise ValidationError(f"n_classes must be >= 1, got {n_classes}")
    return np.full(n, 1.0 / n)


#: sentinel distinguishing "compute M(G) now" from an explicit label
#: (which may legitimately be ``None`` for the empty graph)
_AUTO = object()


class GnnVerifier:
    """Cached GNN inference on node subsets of one graph (``EVerify``).

    ``inference_calls`` counts forward-pass launches (one per memo-cache
    miss for this serial reference backend); ``subsets_evaluated``
    counts the node subsets those launches covered. For the serial
    backend the two are equal — :class:`BatchedGnnVerifier` launches
    one stacked pass per frontier, so its ``inference_calls`` is much
    smaller for the same ``subsets_evaluated``.
    """

    #: whether prefetches are filled with stacked batch passes
    is_batched = False

    def __init__(
        self, model: GnnClassifier, graph: Graph, original_label: object = _AUTO
    ) -> None:
        self.model = model
        self.graph = graph
        #: ``M(G)`` — callers that already know the prediction (e.g. a
        #: whole-shard ``predict_db`` pass) seed it to skip the serial
        #: forward the default would launch here
        self.original_label: Optional[int] = (
            model.predict(graph) if original_label is _AUTO else original_label  # type: ignore[assignment]
        )
        self._subset_probas: Dict[FrozenSet[int], np.ndarray] = {}
        self._remainder_probas: Dict[FrozenSet[int], np.ndarray] = {}
        self.inference_calls = 0
        self.subsets_evaluated = 0

    # ------------------------------------------------------------------
    def _subset_proba(self, key: FrozenSet[int]) -> np.ndarray:
        if key not in self._subset_probas:
            sub, _ = self.graph.induced_subgraph(key)
            self.inference_calls += 1
            self.subsets_evaluated += 1
            self._subset_probas[key] = self.model.predict_proba(sub)
        return self._subset_probas[key]

    def _remainder_proba(self, key: FrozenSet[int]) -> np.ndarray:
        if key not in self._remainder_probas:
            rest, _ = self.graph.remove_nodes(key)
            self.inference_calls += 1
            self.subsets_evaluated += 1
            self._remainder_probas[key] = self.model.predict_proba(rest)
        return self._remainder_probas[key]

    # ------------------------------------------------------------------
    # frontier prefetch API (no-op batching in the serial reference:
    # each miss still costs one forward, exactly as a lazy query would)
    # ------------------------------------------------------------------
    def _normalize_keys(
        self, keys: Iterable[Iterable[int]]
    ) -> "list[FrozenSet[int]]":
        seen = {}
        for key in keys:
            fs = frozenset(int(v) for v in key)
            if fs not in seen:
                seen[fs] = None
        return list(seen)

    def _subset_misses(
        self, keys: Iterable[Iterable[int]]
    ) -> "list[FrozenSet[int]]":
        """Uncached, non-degenerate subset keys. The empty set is
        degenerate: queries answer it from :func:`uniform_prior`."""
        return [
            key
            for key in self._normalize_keys(keys)
            if key and key not in self._subset_probas
        ]

    def _remainder_misses(
        self, keys: Iterable[Iterable[int]]
    ) -> "list[FrozenSet[int]]":
        """Uncached remainder keys with a non-empty remainder. Keys
        covering the whole graph fall back to :func:`uniform_prior`."""
        return [
            key
            for key in self._normalize_keys(keys)
            if len(key) < self.graph.n_nodes
            and key not in self._remainder_probas
        ]

    def prefetch_subsets(self, keys: Iterable[Iterable[int]]) -> int:
        """Ensure ``P(M(G_s))`` is cached for every key; returns #misses."""
        misses = self._subset_misses(keys)
        for key in misses:
            self._subset_proba(key)
        return len(misses)

    def prefetch_remainders(self, keys: Iterable[Iterable[int]]) -> int:
        """Ensure ``P(M(G \\ G_s))`` is cached; returns #misses."""
        misses = self._remainder_misses(keys)
        for key in misses:
            self._remainder_proba(key)
        return len(misses)

    def prefetch_extensions(
        self, base: Iterable[int], candidates: Iterable[int]
    ) -> int:
        """Cache ``P(M(G_s))`` for ``base ∪ {v}`` per candidate ``v``.

        The shape every greedy frontier takes: consecutive rounds grow
        ``base`` by one node, so the batched backend can splice the new
        column into the previous round's stacked index arrangement
        instead of re-sorting every subset (frontier tensor reuse).
        This serial reference keeps the lazy one-forward-per-miss
        schedule; decisions are identical either way.
        """
        base_key = frozenset(int(v) for v in base)
        return self.prefetch_subsets(
            [base_key | {int(v)} for v in candidates]
        )

    def label_of_nodes(self, nodes: Iterable[int]) -> Optional[int]:
        """``M(G_s)`` for the node-induced subgraph on ``nodes``."""
        key = frozenset(int(v) for v in nodes)
        if not key:
            return None
        return int(np.argmax(self._subset_proba(key)))

    def label_of_remainder(self, nodes: Iterable[int]) -> Optional[int]:
        """``M(G \\ G_s)`` — label of the graph with ``nodes`` removed."""
        key = frozenset(int(v) for v in nodes)
        if len(key) >= self.graph.n_nodes:
            return None  # empty remainder: M(∅)
        return int(np.argmax(self._remainder_proba(key)))

    def subset_probability(self, nodes: Iterable[int], label: int) -> float:
        """``P(M(G_s) = label)`` — drives consistency hill-climbing.

        The empty subset is ``M(∅)``: a uniform prior, no inference.
        """
        key = frozenset(int(v) for v in nodes)
        if not key:
            return float(uniform_prior(self.model.n_classes)[label])
        return float(self._subset_proba(key)[label])

    def remainder_probability(self, nodes: Iterable[int], label: int) -> float:
        """``P(M(G \\ G_s) = label)`` — drives counterfactual steering.

        When ``nodes`` covers the whole graph the remainder is empty
        (``M(∅)``): a uniform prior, no inference.
        """
        key = frozenset(int(v) for v in nodes)
        if len(key) >= self.graph.n_nodes:
            return float(uniform_prior(self.model.n_classes)[label])
        return float(self._remainder_proba(key)[label])

    def check(self, nodes: Iterable[int], label: int) -> Tuple[bool, bool]:
        """(consistent, counterfactual) for ``nodes`` w.r.t. ``label`` (§2.2)."""
        key = frozenset(int(v) for v in nodes)
        if not key:
            return False, False
        consistent = self.label_of_nodes(key) == label
        counterfactual = self.label_of_remainder(key) != label
        return consistent, counterfactual


class BatchedGnnVerifier(GnnVerifier):
    """``EVerify`` with frontier-at-a-time cache fills.

    Same memoization semantics and bit-identical probabilities as the
    serial :class:`GnnVerifier` — only the schedule differs: prefetches
    evaluate every cache miss in one stacked forward pass
    (:meth:`GnnClassifier.predict_proba_batch`), so ``inference_calls``
    counts one launch per frontier instead of one per subset. Lazy
    misses outside a prefetch fall back to the inherited serial path.

    Models without a ``predict_proba_batch`` method degrade gracefully
    to the serial schedule.
    """

    is_batched = True

    #: peak-memory cap: one stacked launch materializes ``(B, k, k)``
    #: tensors, so the frontier is split into launches of at most
    #: ``BATCH_ELEMENT_BUDGET / k^2`` subsets (≈128 MB of float64 at
    #: the cap). Chunking changes scheduling only, never values.
    BATCH_ELEMENT_BUDGET = 16_000_000

    def __init__(
        self, model: GnnClassifier, graph: Graph, original_label: object = _AUTO
    ) -> None:
        super().__init__(model, graph, original_label=original_label)
        self._can_batch = hasattr(model, "predict_proba_batch")
        #: dense gather sources (features / symmetrized adjacency) are
        #: immutable per graph; reusing them across launches avoids an
        #: O(n²) rebuild every prefetch
        self._gather_cache: dict = {}
        self._pass_presorted = False
        if self._can_batch:
            import inspect

            params = inspect.signature(model.predict_proba_batch).parameters
            self._pass_cache = "cache" in params
            self._pass_presorted = "presorted" in params

    def _launch(self, subsets: "list[list[int]]") -> "list[np.ndarray]":
        """Stacked forwards over ``subsets``, chunked to the memory cap."""
        rows: "list[np.ndarray]" = []
        start = 0
        while start < len(subsets):
            widest = max(
                (len(s) for s in subsets[start:]), default=1
            )
            chunk = max(1, self.BATCH_ELEMENT_BUDGET // max(1, widest * widest))
            batch = subsets[start : start + chunk]
            if self._pass_cache:
                probas = self.model.predict_proba_batch(
                    self.graph, batch, cache=self._gather_cache
                )
            else:
                probas = self.model.predict_proba_batch(self.graph, batch)
            rows.extend(probas)
            self.inference_calls += 1
            self.subsets_evaluated += len(batch)
            start += chunk
        return rows

    def prefetch_subsets(self, keys: Iterable[Iterable[int]]) -> int:
        misses = self._subset_misses(keys)
        if not misses:
            return 0
        if not self._can_batch:
            for key in misses:
                self._subset_proba(key)
            return len(misses)
        rows = self._launch([sorted(key) for key in misses])
        for key, row in zip(misses, rows):
            self._subset_probas[key] = row
        return len(misses)

    def prefetch_remainders(self, keys: Iterable[Iterable[int]]) -> int:
        misses = self._remainder_misses(keys)
        if not misses:
            return 0
        if not self._can_batch:
            for key in misses:
                self._remainder_proba(key)
            return len(misses)
        all_nodes = range(self.graph.n_nodes)
        rows = self._launch(
            [[v for v in all_nodes if v not in key] for key in misses]
        )
        for key, row in zip(misses, rows):
            self._remainder_probas[key] = row
        return len(misses)

    def prefetch_extensions(
        self, base: Iterable[int], candidates: Iterable[int]
    ) -> int:
        """Stacked fill of ``base ∪ {v}`` probes via the splice fast path.

        Builds the frontier's sorted index matrix with one vectorized
        splice into the shared ``base`` arrangement
        (:func:`repro.gnn.batch.extension_index_matrix`) — skipping the
        per-subset sorting and validation of the generic prefetch — and
        launches it through the presorted fast path. No state is
        carried between rounds (the gathers read the per-graph ``X``/
        ``A`` cache, which costs the same as splicing old tensors
        would). Cached values are bit-identical to
        :meth:`prefetch_subsets`'s.
        """
        base_key = frozenset(int(v) for v in base)
        fresh = [
            v
            for v in dict.fromkeys(int(v) for v in candidates)
            if v not in base_key
        ]
        misses = [v for v in fresh if base_key | {v} not in self._subset_probas]
        if not misses:
            return 0
        if not (self._can_batch and self._pass_presorted):
            return super().prefetch_extensions(base_key, misses)
        from repro.gnn.batch import extension_index_matrix

        idx = extension_index_matrix(base_key, misses)
        width = idx.shape[1]
        chunk = max(1, self.BATCH_ELEMENT_BUDGET // max(1, width * width))
        start = 0
        while start < len(misses):
            part = idx[start : start + chunk]
            if self._pass_cache:
                probas = self.model.predict_proba_batch(
                    self.graph, part, cache=self._gather_cache, presorted=True
                )
            else:
                probas = self.model.predict_proba_batch(
                    self.graph, part, presorted=True
                )
            for v, row in zip(misses[start : start + chunk], probas):
                self._subset_probas[base_key | {v}] = row
            self.inference_calls += 1
            self.subsets_evaluated += len(part)
            start += chunk
        return len(misses)


def make_verifier(
    model: GnnClassifier,
    graph: Graph,
    config: Optional[GvexConfig] = None,
    original_label: object = _AUTO,
) -> GnnVerifier:
    """``EVerify`` instance for ``config.verifier_backend``.

    Defaults to the batched backend when no config is given.
    ``original_label`` seeds ``M(G)`` when the caller already computed
    it (e.g. from a stacked :meth:`GnnClassifier.predict_db` pass over
    the shard), skipping the per-graph forward.
    """
    if config is not None and config.verifier_backend == BACKEND_SERIAL:
        return GnnVerifier(model, graph, original_label=original_label)
    return BatchedGnnVerifier(model, graph, original_label=original_label)


def vp_extend(
    v: int,
    selected: FrozenSet[int],
    verifier: GnnVerifier,
    label: int,
    upper_bound: int,
    mode: str = VERIFY_SOFT,
) -> bool:
    """Procedure 2: may ``selected ∪ {v}`` extend the explanation subgraph?

    * ``paper`` — literal Procedure 2: the extension must already be
      consistent (``M(G_t) = M(G)``) and counterfactual
      (``M(G \\ G_t) ≠ M(G)``), and stay under the size bound.
    * ``soft`` — only the size bound gates extension; consistency /
      counterfactual are recorded by the caller after each step.
    * ``none`` — size bound only (alias of soft at this level).
    """
    if v in selected:
        return False
    if len(selected) + 1 > upper_bound:
        return False
    if mode in (VERIFY_SOFT, VERIFY_NONE):
        return True
    if mode == VERIFY_PAPER:
        consistent, counterfactual = verifier.check(selected | {v}, label)
        return consistent and counterfactual
    raise ValidationError(f"unknown verification mode {mode!r}")


def vp_extend_frontier(
    candidates: Iterable[int],
    selected: FrozenSet[int],
    verifier: GnnVerifier,
    label: int,
    upper_bound: int,
    mode: str = VERIFY_SOFT,
) -> "list[int]":
    """Procedure 2 over a whole candidate frontier.

    Returns the candidates (in input order) whose extension passes
    :func:`vp_extend`. In ``paper`` mode the consistency and
    counterfactual probes for every extension are prefetched first —
    with a batched verifier that is two stacked forward passes for the
    entire frontier; with the serial reference it degenerates to the
    per-candidate schedule. Decisions are identical either way.
    """
    cands = [int(v) for v in candidates]
    if mode == VERIFY_PAPER:
        feasible = [
            v
            for v in cands
            if v not in selected and len(selected) + 1 <= upper_bound
        ]
        verifier.prefetch_extensions(selected, feasible)
        verifier.prefetch_remainders([selected | {v} for v in feasible])
    return [
        v for v in cands if vp_extend(v, selected, verifier, label, upper_bound, mode)
    ]


@dataclass(frozen=True)
class ViewVerification:
    """Outcome of the Lemma 3.1 three-constraint check."""

    c1_patterns_cover_nodes: bool
    c2_explanations_valid: bool
    c3_properly_covers: bool
    total_nodes: int

    @property
    def ok(self) -> bool:
        return (
            self.c1_patterns_cover_nodes
            and self.c2_explanations_valid
            and self.c3_properly_covers
        )


def verify_view(
    view: ExplanationView,
    graphs: Sequence[Graph],
    model: GnnClassifier,
    config: GvexConfig,
    label: Optional[int] = None,
    per_graph_coverage: bool = True,
) -> ViewVerification:
    """Check constraints C1-C3 for an assembled explanation view.

    ``graphs`` is the label group, indexed by each subgraph's
    ``graph_index``. ``label`` defaults to the model's prediction per
    graph. ``per_graph_coverage`` selects the coverage-scope reading
    (DESIGN.md §3): per graph (default, matches Algorithm 1's stopping
    rule) or per label group (Problem 1's aggregate range).
    """
    # C2: every subgraph consistent + counterfactual
    c2 = True
    for s in view.subgraphs:
        graph = graphs[s.graph_index]
        verifier = GnnVerifier(model, graph)
        target = label if label is not None else verifier.original_label
        consistent, counterfactual = verifier.check(s.nodes, target)
        if not (consistent and counterfactual):
            c2 = False
            break

    # C1: patterns cover all subgraph nodes
    hosts = [s.subgraph for s in view.subgraphs]
    if hosts:
        index = CoverageIndex(hosts, backend=config.matching_backend)
        c1 = index.covers_all_nodes(view.patterns)
    else:
        c1 = not view.patterns  # empty view is vacuously a graph view

    # C3: proper coverage
    bounds = config.coverage_for(view.label)
    total = view.n_subgraph_nodes
    if per_graph_coverage:
        c3 = all(bounds.contains(s.n_nodes) for s in view.subgraphs)
    else:
        c3 = bounds.contains(total)

    return ViewVerification(c1, c2, c3, total)


__all__ = [
    "GnnVerifier",
    "BatchedGnnVerifier",
    "make_verifier",
    "uniform_prior",
    "vp_extend",
    "vp_extend_frontier",
    "ViewVerification",
    "verify_view",
]
