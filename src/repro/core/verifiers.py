"""Verification primitives: ``EVerify``, ``VpExtend``, and full view
verification (§3.3, §4).

``GnnVerifier`` is the paper's ``EVerify`` operator — it answers "what
label does M assign to this node-induced subgraph / to the remainder of
the graph" with memoization, since the greedy loop re-queries the same
sets. ``vp_extend`` is Procedure 2 with the three operating modes
discussed in DESIGN.md §3. ``verify_view`` is the Lemma 3.1 decision
procedure (constraints C1-C3), used as a correctness oracle in tests
and exposed for users who assemble views by hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.config import GvexConfig, VERIFY_NONE, VERIFY_PAPER, VERIFY_SOFT
from repro.gnn.model import GnnClassifier
from repro.graphs.graph import Graph
from repro.graphs.view import ExplanationView
from repro.matching.coverage import CoverageIndex


class GnnVerifier:
    """Cached GNN inference on node subsets of one graph (``EVerify``)."""

    def __init__(self, model: GnnClassifier, graph: Graph) -> None:
        self.model = model
        self.graph = graph
        self.original_label: Optional[int] = model.predict(graph)
        self._subset_probas: Dict[FrozenSet[int], np.ndarray] = {}
        self._remainder_probas: Dict[FrozenSet[int], np.ndarray] = {}
        self.inference_calls = 0

    # ------------------------------------------------------------------
    def _subset_proba(self, key: FrozenSet[int]) -> np.ndarray:
        if key not in self._subset_probas:
            sub, _ = self.graph.induced_subgraph(key)
            self.inference_calls += 1
            self._subset_probas[key] = self.model.predict_proba(sub)
        return self._subset_probas[key]

    def _remainder_proba(self, key: FrozenSet[int]) -> np.ndarray:
        if key not in self._remainder_probas:
            rest, _ = self.graph.remove_nodes(key)
            self.inference_calls += 1
            self._remainder_probas[key] = self.model.predict_proba(rest)
        return self._remainder_probas[key]

    def label_of_nodes(self, nodes: Iterable[int]) -> Optional[int]:
        """``M(G_s)`` for the node-induced subgraph on ``nodes``."""
        key = frozenset(int(v) for v in nodes)
        if not key:
            return None
        return int(np.argmax(self._subset_proba(key)))

    def label_of_remainder(self, nodes: Iterable[int]) -> Optional[int]:
        """``M(G \\ G_s)`` — label of the graph with ``nodes`` removed."""
        key = frozenset(int(v) for v in nodes)
        if len(key) >= self.graph.n_nodes:
            return None  # empty remainder: M(∅)
        return int(np.argmax(self._remainder_proba(key)))

    def subset_probability(self, nodes: Iterable[int], label: int) -> float:
        """``P(M(G_s) = label)`` — drives consistency hill-climbing."""
        key = frozenset(int(v) for v in nodes)
        if not key:
            return 1.0 / self.model.n_classes
        return float(self._subset_proba(key)[label])

    def remainder_probability(self, nodes: Iterable[int], label: int) -> float:
        """``P(M(G \\ G_s) = label)`` — drives counterfactual steering."""
        key = frozenset(int(v) for v in nodes)
        if len(key) >= self.graph.n_nodes:
            return 1.0 / self.model.n_classes
        return float(self._remainder_proba(key)[label])

    def check(self, nodes: Iterable[int], label: int) -> Tuple[bool, bool]:
        """(consistent, counterfactual) for ``nodes`` w.r.t. ``label`` (§2.2)."""
        key = frozenset(int(v) for v in nodes)
        if not key:
            return False, False
        consistent = self.label_of_nodes(key) == label
        counterfactual = self.label_of_remainder(key) != label
        return consistent, counterfactual


def vp_extend(
    v: int,
    selected: FrozenSet[int],
    verifier: GnnVerifier,
    label: int,
    upper_bound: int,
    mode: str = VERIFY_SOFT,
) -> bool:
    """Procedure 2: may ``selected ∪ {v}`` extend the explanation subgraph?

    * ``paper`` — literal Procedure 2: the extension must already be
      consistent (``M(G_t) = M(G)``) and counterfactual
      (``M(G \\ G_t) ≠ M(G)``), and stay under the size bound.
    * ``soft`` — only the size bound gates extension; consistency /
      counterfactual are recorded by the caller after each step.
    * ``none`` — size bound only (alias of soft at this level).
    """
    if v in selected:
        return False
    if len(selected) + 1 > upper_bound:
        return False
    if mode in (VERIFY_SOFT, VERIFY_NONE):
        return True
    if mode == VERIFY_PAPER:
        consistent, counterfactual = verifier.check(selected | {v}, label)
        return consistent and counterfactual
    raise ValueError(f"unknown verification mode {mode!r}")


@dataclass(frozen=True)
class ViewVerification:
    """Outcome of the Lemma 3.1 three-constraint check."""

    c1_patterns_cover_nodes: bool
    c2_explanations_valid: bool
    c3_properly_covers: bool
    total_nodes: int

    @property
    def ok(self) -> bool:
        return (
            self.c1_patterns_cover_nodes
            and self.c2_explanations_valid
            and self.c3_properly_covers
        )


def verify_view(
    view: ExplanationView,
    graphs: Sequence[Graph],
    model: GnnClassifier,
    config: GvexConfig,
    label: Optional[int] = None,
    per_graph_coverage: bool = True,
) -> ViewVerification:
    """Check constraints C1-C3 for an assembled explanation view.

    ``graphs`` is the label group, indexed by each subgraph's
    ``graph_index``. ``label`` defaults to the model's prediction per
    graph. ``per_graph_coverage`` selects the coverage-scope reading
    (DESIGN.md §3): per graph (default, matches Algorithm 1's stopping
    rule) or per label group (Problem 1's aggregate range).
    """
    # C2: every subgraph consistent + counterfactual
    c2 = True
    for s in view.subgraphs:
        graph = graphs[s.graph_index]
        verifier = GnnVerifier(model, graph)
        target = label if label is not None else verifier.original_label
        consistent, counterfactual = verifier.check(s.nodes, target)
        if not (consistent and counterfactual):
            c2 = False
            break

    # C1: patterns cover all subgraph nodes
    hosts = [s.subgraph for s in view.subgraphs]
    if hosts:
        index = CoverageIndex(hosts)
        c1 = index.covers_all_nodes(view.patterns)
    else:
        c1 = not view.patterns  # empty view is vacuously a graph view

    # C3: proper coverage
    bounds = config.coverage_for(view.label)
    total = view.n_subgraph_nodes
    if per_graph_coverage:
        c3 = all(bounds.contains(s.n_nodes) for s in view.subgraphs)
    else:
        c3 = bounds.contains(total)

    return ViewVerification(c1, c2, c3, total)


__all__ = ["GnnVerifier", "vp_extend", "ViewVerification", "verify_view"]
