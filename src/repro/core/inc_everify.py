"""Incremental ``IncEVerify`` — streaming influence/diversity updates (§5).

StreamGVEX interleaves node arrival with view maintenance, and its
"anytime" guarantee is only worth the name if the explainability oracle
on the seen prefix is *extended* when a chunk arrives rather than
re-derived. :class:`IncrementalEVerify` is that engine. Across chunks
it carries three persistent accumulators:

* the propagation power sequence ``Q^1 … Q^k`` behind the expected-mode
  influence matrix (Eq. 3) — extended by a factored low-rank correction
  (:func:`repro.gnn.propagation.extend_power_sequence`) whose rank is
  bounded by the arriving chunk plus its boundary, instead of an
  ``O(k·m³)`` rebuild; once a GCN prefix outgrows ``SPARSE_THRESHOLD``
  the engine mirrors ``expected_influence``'s sparse big-graph
  dispatch instead of caching dense powers;
* the per-layer hidden states ``H^0 … H^k`` of the GNN forward on the
  seen prefix — only *dirty* rows (nodes whose aggregation row changed,
  or with a dirty in-neighbor; propagated layer by layer) are
  recomputed, mirroring the serial layer's operation order row-wise;
* the pairwise embedding distance matrix behind the diversity balls
  (Eq. 6) — rows/columns of dirty final-layer nodes are refreshed, the
  clean block is kept.

``graph.induced_subgraph`` orders the seen prefix by global node id, so
arriving nodes interleave with old ones; every accumulator is scattered
into the new index space (a pure permutation — values are untouched)
before the extension is applied.

The engine's oracles are *mathematically equal* to the per-chunk
rebuild (``GvexConfig.stream_inc = "rebuild"``); floating-point
round-off may differ in the last ulps, which the thresholded relations
``I2 ≥ θ`` and ``d ≤ r`` absorb. ``tests/test_stream_incremental.py``
enforces selection parity over the dataset zoo; docs/streaming.md
documents the contract and when rebuild mode is required (exact
Jacobians re-derive per chunk via the fallback counted in
:class:`OracleStats`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.config import JACOBIAN_EXPECTED, GvexConfig
from repro.core.diversity import embedding_distances
from repro.core.explainability import ExplainabilityOracle
from repro.gnn.jacobian import (
    expected_influence,
    extend_expected_influence,
    normalized_influence,
)
from repro.gnn.model import GnnClassifier
from repro.graphs.graph import Graph


@dataclass
class OracleStats:
    """Per-stream accounting of oracle maintenance work.

    ``full_refreshes`` counts from-scratch oracle builds (a full
    forward pass plus a full propagation-power build — the rebuild
    schedule pays one per chunk, the incremental engine one per
    stream); ``incremental_updates`` counts chunk extensions;
    ``fallback_rebuilds`` counts chunks where the engine had to
    re-derive (exact-Jacobian mode); ``rows_recomputed`` totals the
    dirty hidden-state rows the extensions touched.
    """

    full_refreshes: int = 0
    incremental_updates: int = 0
    fallback_rebuilds: int = 0
    rows_recomputed: int = 0
    #: chunks whose influence matrix went through the sparse big-graph
    #: path (prefix past ``SPARSE_THRESHOLD``) instead of the dense
    #: power extension; embeddings/distances stay incremental there
    sparse_power_builds: int = 0

    @property
    def oracle_forwards(self) -> int:
        """Full-prefix forward launches the oracle maintenance issued."""
        return self.full_refreshes + self.fallback_rebuilds


class IncrementalEVerify:
    """Chunk-extendable explainability oracle for one node stream.

    One instance serves one :meth:`StreamGvex.explain_graph_stream`
    call. ``refresh(seen_sub, seen_ids)`` returns an
    :class:`ExplainabilityOracle` for the seen prefix; the first call
    builds the accumulators, later calls extend them.
    """

    def __init__(self, model: GnnClassifier, config: GvexConfig) -> None:
        self.model = model
        self.config = config
        self.stats = OracleStats()
        self._ids: Optional[np.ndarray] = None
        self._Q: Optional[np.ndarray] = None
        self._powers: List[np.ndarray] = []
        self._hiddens: List[np.ndarray] = []
        self._dist: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def refresh(self, seen_sub: Graph, seen_ids: List[int]) -> ExplainabilityOracle:
        """Oracle for the grown prefix; incremental when possible."""
        ids = np.asarray(seen_ids, dtype=np.intp)
        if self.config.jacobian != JACOBIAN_EXPECTED:
            # exact Jacobians have no incremental structure: re-derive,
            # exactly as rebuild mode would
            if self._ids is None:
                self.stats.full_refreshes += 1
            else:
                self.stats.fallback_rebuilds += 1
            self._ids = ids
            return ExplainabilityOracle(self.model, seen_sub, self.config)
        if self._ids is None:
            oracle = self._full_build(seen_sub, ids)
        else:
            oracle = self._extend(seen_sub, ids)
        self._ids = ids
        return oracle

    # ------------------------------------------------------------------
    def _relations_oracle(self, seen_sub: Graph, I1: np.ndarray) -> ExplainabilityOracle:
        B = normalized_influence(I1) >= self.config.theta
        assert self._dist is not None
        R = self._dist <= self.config.radius
        return ExplainabilityOracle.from_relations(seen_sub, self.config, B, R)

    def _sparse_influence(self, n: int) -> bool:
        """Whether rebuild mode would take the sparse big-graph path.

        Past ``SPARSE_THRESHOLD`` a dense ``O(k·m³)`` power sequence is
        the wrong program (and caching ``k`` dense ``(m, m)`` powers
        the wrong memory profile): mirror ``expected_influence``'s
        dispatch so both schedules run the same sparse float program
        there. Embeddings and distances stay incremental.
        """
        if getattr(self.model, "conv", "gcn") != "gcn":
            return False
        from repro.gnn.sparse import SPARSE_THRESHOLD

        return n > SPARSE_THRESHOLD

    def _full_build(self, seen_sub: Graph, ids: np.ndarray) -> ExplainabilityOracle:
        self.stats.full_refreshes += 1
        Q = self.model.aggregation_matrix(seen_sub)
        if self._sparse_influence(seen_sub.n_nodes):
            I1 = expected_influence(self.model, seen_sub)
            self._powers = []
            self.stats.sparse_power_builds += 1
        else:
            I1, self._powers = extend_expected_influence(
                self.model, seen_sub, [], np.empty(0, dtype=np.intp), Q=Q
            )
        cache = self.model.forward(self.model.features_for(seen_sub), Q)
        self._Q = Q
        self._hiddens = list(cache.hiddens)
        self._dist = embedding_distances(self._hiddens[-1])
        return self._relations_oracle(seen_sub, I1)

    def _extend(self, seen_sub: Graph, ids: np.ndarray) -> ExplainabilityOracle:
        self.stats.incremental_updates += 1
        model = self.model
        assert (
            self._ids is not None
            and self._dist is not None
            and self._Q is not None
        )
        pos = np.searchsorted(ids, self._ids)  # old local -> new local
        m = seen_sub.n_nodes

        # --- influence: rank-update of the propagation powers (Eq. 3),
        # or the sparse big-graph program once the prefix outgrows it
        Q_old_pad = np.zeros((m, m))
        Q_old_pad[np.ix_(pos, pos)] = self._Q
        Q_new = model.aggregation_matrix(seen_sub)
        if self._sparse_influence(m):
            I1 = expected_influence(model, seen_sub)
            self._powers = []
            self.stats.sparse_power_builds += 1
        elif not self._powers:  # defensive: prefixes only grow, but a
            # dense resume after a sparse stretch stays correct
            I1, self._powers = extend_expected_influence(
                model, seen_sub, [], np.empty(0, dtype=np.intp), Q=Q_new
            )
        else:
            I1, self._powers = extend_expected_influence(
                model, seen_sub, self._powers, pos, Q=Q_new
            )
        self._Q = Q_new

        # --- embeddings: recompute only dirty rows, layer by layer
        X = model.features_for(seen_sub)
        q_dirty = np.any((Q_new - Q_old_pad) != 0.0, axis=1)
        q_support = Q_new != 0.0
        hiddens: List[np.ndarray] = [X]
        dirty = np.ones(m, dtype=bool)
        dirty[pos] = False  # H^0 rows of old nodes are bit-unchanged
        sage = model.conv == "sage"
        for layer in range(model.n_layers):
            H_prev = hiddens[-1]
            need = q_dirty | q_support[:, dirty].any(axis=1)
            if sage:
                need = need | dirty  # self term reads the node's own row
            H_old = self._hiddens[layer + 1]
            H_new = np.empty((m, H_old.shape[1]))
            keep_old = ~need[pos]  # old-local mask of rows to carry over
            H_new[pos[keep_old]] = H_old[keep_old]
            rows = np.nonzero(need)[0]
            # mirror the serial layer: Z = Q (H W) + b (+ H W_self)
            M = H_prev @ model.weights[layer]
            Z = Q_new[rows] @ M + model.biases[layer]
            if sage:
                Z = Z + H_prev[rows] @ model.sage_self_weights[layer]
            H_new[rows] = model._act(Z)
            hiddens.append(H_new)
            self.stats.rows_recomputed += int(rows.size)
            dirty = need
        self._hiddens = hiddens

        # --- diversity: refresh distance rows/cols of dirty embeddings
        emb = hiddens[-1]
        dist = np.empty((m, m))
        clean_old = np.nonzero(~dirty[pos])[0]  # old-local clean rows
        clean_new = pos[clean_old]
        dist[np.ix_(clean_new, clean_new)] = self._dist[
            np.ix_(clean_old, clean_old)
        ]
        rows = np.nonzero(dirty)[0]
        if rows.size:
            block = _distance_rows(emb, rows)
            dist[rows, :] = block
            dist[:, rows] = block.T
        self._dist = dist
        return self._relations_oracle(seen_sub, I1)


def _distance_rows(embeddings: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Rows of :func:`embedding_distances` for the given indices.

    Same normalized-Euclidean formula, restricted to the dirty rows —
    mathematically equal to slicing the full pairwise matrix.
    """
    norms = np.linalg.norm(embeddings, axis=1, keepdims=True)
    safe = np.where(norms <= 1e-12, 1.0, norms)
    unit = embeddings / safe
    sq = (unit**2).sum(axis=1)
    d2 = sq[rows, None] + sq[None, :] - 2.0 * (unit[rows] @ unit.T)
    return np.sqrt(np.maximum(d2, 0.0))


__all__ = ["IncrementalEVerify", "OracleStats"]
