"""Multi-process view generation (§A.7).

Per-graph explanation phases are independent, so the label-group loop
parallelizes trivially. Workers are forked with the model/config set
once via a pool initializer (numpy weights are shared copy-on-write),
so per-task overhead is one pickled graph index.

Any explainer registered in :mod:`repro.api.registry` can be
distributed: GVEX's ApproxGVEX keeps its fast path (the core
``explain_graph`` with inference-call accounting); other methods are
built once per worker via ``build_explainer`` and driven through the
uniform ``explain_graph`` interface. Pattern summarization (Psum) runs
in the parent either way, since it needs the whole label group.

Falls back to the serial path when ``processes <= 1`` or when the
platform cannot fork.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.config import GvexConfig
from repro.core.approx import ApproxGvex, explain_graph
from repro.exceptions import RegistryError
from repro.core.psum import summarize
from repro.gnn.model import GnnClassifier
from repro.graphs.database import GraphDatabase
from repro.graphs.view import ExplanationSubgraph, ExplanationView, ViewSet

#: registry name whose parallel path uses the core ApproxGVEX kernel
_APPROX = "gvex-approx"

_WORKER_MODEL: Optional[GnnClassifier] = None
_WORKER_CONFIG: Optional[GvexConfig] = None
_WORKER_DB: Optional[GraphDatabase] = None
_WORKER_EXPLAINER = None  # non-approx methods: built once per worker


def _init_worker(
    model: GnnClassifier,
    config: GvexConfig,
    db: GraphDatabase,
    method: str = _APPROX,
    seed: int = 0,
    explainer_kwargs: Optional[Mapping] = None,
) -> None:
    global _WORKER_MODEL, _WORKER_CONFIG, _WORKER_DB, _WORKER_EXPLAINER
    _WORKER_MODEL = model
    _WORKER_CONFIG = config
    _WORKER_DB = db
    if method == _APPROX:
        _WORKER_EXPLAINER = None
    else:
        from repro.api.registry import build_explainer

        _WORKER_EXPLAINER = build_explainer(
            method, model, config=config, seed=seed, **(explainer_kwargs or {})
        )


def _explain_one(
    task: Tuple[int, int]
) -> Tuple[int, int, Optional[ExplanationSubgraph], int]:
    index, label = task
    assert _WORKER_MODEL is not None and _WORKER_CONFIG is not None
    assert _WORKER_DB is not None
    if _WORKER_EXPLAINER is not None:
        upper = _WORKER_CONFIG.coverage_for(label).upper
        subgraph = _WORKER_EXPLAINER.explain_graph(
            _WORKER_DB[index], label=label, max_nodes=upper or None, graph_index=index
        )
        return index, label, subgraph, 0
    result = explain_graph(
        _WORKER_MODEL,
        _WORKER_DB[index],
        label,
        _WORKER_CONFIG,
        graph_index=index,
    )
    return index, label, result.subgraph, result.inference_calls


def _with_stats(views: ViewSet, inference_calls: int, return_stats: bool):
    if not return_stats:
        return views
    return views, {"inference_calls": inference_calls}


def build_views_from_subgraphs(
    subgraphs: Dict[int, List[ExplanationSubgraph]],
    config: GvexConfig,
    labels: Sequence[int],
) -> ViewSet:
    """Assemble two-tier views from per-label explanation subgraphs.

    The parent-side tail of the parallel pipeline: sort by source graph,
    mine/summarize patterns with Psum, aggregate Eq. 2 scores.
    """
    views = ViewSet()
    for label in labels:
        subs = sorted(subgraphs.get(label, []), key=lambda s: s.graph_index)
        view = ExplanationView(label=label, subgraphs=subs)
        psum = summarize([s.subgraph for s in subs], config)
        view.patterns = psum.patterns
        view.edge_loss = psum.edge_loss
        view.score = sum(s.score for s in subs)
        views.add(view)
    return views


def explain_database_parallel(
    db: GraphDatabase,
    model: GnnClassifier,
    config: Optional[GvexConfig] = None,
    labels: Optional[Iterable[int]] = None,
    processes: int = 2,
    predicted: Optional[Sequence[Optional[int]]] = None,
    return_stats: bool = False,
    method: str = _APPROX,
    seed: int = 0,
    explainer_kwargs: Optional[Mapping] = None,
):
    """Parallel view generation over a database (per-graph coverage scope).

    For ``method="gvex-approx"`` this is semantically identical to
    :meth:`ApproxGvex.explain`; other registry names distribute the
    uniform ``explain_graph`` interface instead. Only the explanation
    phase is distributed — the Psum summarize step runs in the parent
    (it needs the whole label group's subgraphs). Workers honor
    ``config.verifier_backend``, so the batched engine composes with
    multiprocessing. With ``return_stats`` the result is a ``(views,
    stats)`` pair where ``stats["inference_calls"]`` sums the workers'
    forward-pass launches (approx path only).
    """
    from repro.api.registry import get_spec

    config = config if config is not None else GvexConfig()
    method = get_spec(method).name
    if method == _APPROX and explainer_kwargs:
        raise RegistryError(
            "the gvex-approx parallel path takes its configuration from "
            f"GvexConfig, not constructor overrides {sorted(explainer_kwargs)}"
        )
    if predicted is None:
        predicted = [model.predict(g) for g in db]

    groups: Dict[int, List[int]] = {}
    for i, l in enumerate(predicted):
        if l is None:
            continue
        groups.setdefault(int(l), []).append(i)
    wanted = sorted(groups) if labels is None else sorted(set(labels))

    def serial_fallback():
        if method == _APPROX:
            algo = ApproxGvex(model, config, labels=wanted)
            views = algo.explain(db, predicted)
            return _with_stats(views, algo.total_inference_calls, return_stats)
        from repro.api.registry import build_explainer

        explainer = build_explainer(
            method, model, config=config, seed=seed, **(explainer_kwargs or {})
        )
        views = explainer.explain_views(db, labels=wanted, config=config)
        return _with_stats(views, 0, return_stats)

    if processes <= 1:
        return serial_fallback()

    tasks = [(i, label) for label in wanted for i in groups.get(label, [])]
    try:
        ctx = mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return serial_fallback()

    total_calls = 0
    subgraphs: Dict[int, List[ExplanationSubgraph]] = {l: [] for l in wanted}
    with ctx.Pool(
        processes=processes,
        initializer=_init_worker,
        initargs=(model, config, db, method, seed, dict(explainer_kwargs or {})),
    ) as pool:
        for index, label, subgraph, calls in pool.map(_explain_one, tasks):
            total_calls += calls
            if subgraph is not None:
                subgraphs[label].append(subgraph)

    views = build_views_from_subgraphs(subgraphs, config, wanted)
    return _with_stats(views, total_calls, return_stats)


__all__ = ["explain_database_parallel", "build_views_from_subgraphs"]
