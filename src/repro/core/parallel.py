"""Deprecated: multi-process view generation (§A.7).

.. deprecated::
    This module's scheduling logic moved to :mod:`repro.runtime` — the
    single execution engine behind the facade, the CLI, the bench
    harness, and the HTTP layer. :func:`explain_database_parallel`
    survives as a thin wrapper over
    :func:`repro.runtime.build_plan` + :class:`repro.runtime.ForkPoolExecutor`
    for one deprecation cycle (docs/api.md); new code should build an
    :class:`~repro.runtime.ExplainPlan` and pick an executor directly.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

from repro.config import GvexConfig
from repro.gnn.model import GnnClassifier
from repro.graphs.database import GraphDatabase

from repro.runtime.plan import APPROX_METHOD as _APPROX
from repro.runtime.plan import assemble_views as build_views_from_subgraphs  # noqa: F401 - legacy name


def explain_database_parallel(
    db: GraphDatabase,
    model: GnnClassifier,
    config: Optional[GvexConfig] = None,
    labels: Optional[Iterable[int]] = None,
    processes: int = 2,
    predicted: Optional[Sequence[Optional[int]]] = None,
    return_stats: bool = False,
    method: str = _APPROX,
    seed: int = 0,
    explainer_kwargs: Optional[Mapping] = None,
):
    """Parallel view generation over a database (per-graph coverage scope).

    Deprecated wrapper over the :mod:`repro.runtime` plan/executor
    API; semantics are unchanged: ``method="gvex-approx"`` matches
    :meth:`~repro.core.approx.ApproxGvex.explain`, other registry names
    distribute the uniform ``explain_graph`` interface, Psum runs in
    the parent, workers honor ``config.verifier_backend``, and
    ``return_stats`` adds ``{"inference_calls": ...}``.
    """
    from repro.runtime import build_plan, run_plan

    plan = build_plan(
        db,
        model,
        config,
        labels=labels,
        predicted=predicted,
        method=method,
        seed=seed,
        explainer_kwargs=explainer_kwargs,
        processes=processes,
    )
    return run_plan(plan, processes=processes, return_stats=return_stats)


__all__ = ["explain_database_parallel", "build_views_from_subgraphs"]
