"""``ApproxGVEX`` — the explain-and-summarize algorithm (Algorithm 1, §4).

Per graph: greedily select nodes with maximum marginal explainability
gain (lazy greedy — valid because ``f`` is monotone submodular, Lemma
3.3), gated by ``VpExtend`` under the configured verification mode and
the coverage bounds ``[b_l, u_l]``. Per label group: run the per-graph
phase for every member, then summarize the selected subgraphs into
patterns with ``Psum``. The greedy-under-cardinality-range scheme
carries the paper's 1/2-approximation (Theorem 4.1).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.config import (
    GvexConfig,
    SCOPE_PER_GROUP,
    VERIFY_PAPER,
    VERIFY_SOFT,
)
from repro.core.explainability import ExplainabilityOracle, SelectionState
from repro.core.psum import summarize
from repro.core.verifiers import (
    _AUTO,
    GnnVerifier,
    make_verifier,
    vp_extend_frontier,
)
from repro.gnn.model import GnnClassifier
from repro.graphs.database import GraphDatabase
from repro.graphs.graph import Graph
from repro.graphs.pattern import Pattern
from repro.graphs.view import ExplanationSubgraph, ExplanationView, ViewSet


@dataclass
class GraphExplainResult:
    """Per-graph output of the explanation phase."""

    subgraph: Optional[ExplanationSubgraph]
    backup_candidates: Set[int] = field(default_factory=set)
    inference_calls: int = 0


def database_predictions(
    model: GnnClassifier,
    db,
    indices: Optional[Sequence[int]] = None,
) -> "List[Optional[int]]":
    """``M(G)`` for every graph of a database in stacked forwards.

    Uses :meth:`GnnClassifier.predict_db` over the database's columnar
    mirror when the model supports it (size-grouped ``(B, n, ·)``
    stacked passes fed straight from the shared CSR arrays) and falls
    back to the serial per-graph loop for foreign models. Entry ``i``
    equals ``model.predict(db[i])`` exactly either way. ``db`` may be a
    :class:`~repro.graphs.database.GraphDatabase` or a plain graph
    sequence; ``indices`` restricts the pass to those database indices
    (shard execution) — entries then align with ``indices``, and the
    columnar lookups still hit the right slices.
    """
    graphs = list(db.graphs if hasattr(db, "graphs") else db)
    if indices is not None:
        indices = [int(i) for i in indices]
        graphs = [graphs[i] for i in indices]
    predict_db = getattr(model, "predict_db", None)
    if predict_db is None:
        return [model.predict(g) for g in graphs]
    columnar = getattr(db, "columnar", None)
    return predict_db(graphs, columnar=columnar, indices=indices)


def explain_graph(
    model: GnnClassifier,
    graph: Graph,
    label: int,
    config: GvexConfig,
    graph_index: int = 0,
    lower: Optional[int] = None,
    upper: Optional[int] = None,
    oracle: Optional[ExplainabilityOracle] = None,
    seed_nodes: Sequence[int] = (),
    predicted: object = _AUTO,
) -> GraphExplainResult:
    """Explanation phase of Algorithm 1 for a single graph.

    ``lower``/``upper`` override the configured coverage bounds (the
    per-group scope passes remaining budgets). ``seed_nodes`` are
    pre-selected before the greedy starts (node explanation seeds the
    center node). ``predicted`` seeds the verifier's ``M(G)`` when the
    caller already ran a stacked database forward (shard execution
    does), avoiding a redundant serial pass. Returns a result whose
    ``subgraph`` is ``None`` when the lower bound could not be met
    (Algorithm 1 lines 16-17).
    """
    bounds = config.coverage_for(label)
    lower = bounds.lower if lower is None else lower
    upper = bounds.upper if upper is None else upper
    upper = min(upper, graph.n_nodes)
    if graph.n_nodes == 0 or upper == 0:
        return GraphExplainResult(subgraph=None)

    if oracle is None:
        oracle = ExplainabilityOracle(model, graph, config)
    verifier = make_verifier(model, graph, config, original_label=predicted)
    state = oracle.new_state()
    for v in seed_nodes:
        if len(state.selected) < upper:
            oracle.add(state, int(v))
    backup: Set[int] = set()
    mode = config.verification

    if mode == VERIFY_PAPER:
        _grow_paper_mode(graph, verifier, oracle, state, backup, label, lower, upper)
    else:
        _grow_lazy(
            graph, verifier, oracle, state, backup, label, lower, upper, mode,
            matching_backend=config.matching_backend,
        )

    # lower-bound phase: keep growing from the backup pool (lines 10-15),
    # verifying the whole pool as one frontier per round
    while len(state.selected) < lower and backup:
        feasible = vp_extend_frontier(
            sorted(backup), frozenset(state.selected), verifier, label, upper, mode
        )
        if not feasible:
            break
        v_star = oracle.best_candidate(state, feasible)
        if v_star is None:
            break
        oracle.add(state, v_star)
        backup.discard(v_star)

    if len(state.selected) < lower or not state.selected:
        return GraphExplainResult(
            subgraph=None,
            backup_candidates=backup,
            inference_calls=verifier.inference_calls,
        )

    nodes = tuple(sorted(state.selected))
    sub, _ = graph.induced_subgraph(nodes)
    consistent, counterfactual = verifier.check(nodes, label)
    return GraphExplainResult(
        subgraph=ExplanationSubgraph(
            graph_index=graph_index,
            nodes=nodes,
            subgraph=sub,
            consistent=consistent,
            counterfactual=counterfactual,
            score=oracle.value_of_state(state),
        ),
        backup_candidates=backup,
        inference_calls=verifier.inference_calls,
    )


def _grow_lazy(
    graph: Graph,
    verifier: GnnVerifier,
    oracle: ExplainabilityOracle,
    state: SelectionState,
    backup: Set[int],
    label: int,
    lower: int,
    upper: int,
    mode: str,
    matching_backend: Optional[str] = None,
) -> None:
    """Lazy-greedy growth for the soft/none modes.

    Gains are served from a lazy heap — submodularity makes stale
    entries upper bounds, so re-evaluating only the popped head
    preserves exact greedy selection.

    In ``soft`` mode each round ranks a candidate pool (top-gain nodes
    plus neighbors of the selection) lexicographically:

    1. **confidence** — while the selection's class probability
       ``P(M(V_S ∪ {v}) = l)`` is below a target ``τ``, grow whatever
       most raises it (assembling the class-evidencing region);
    2. **counterfactual steering** — once confident, prefer the
       candidate that most depresses the remainder's class probability
       ``P(M(G \\ (V_S ∪ {v})) = l)``;
    3. ties break toward pattern novelty (ΔP ≠ ∅, the streaming
       algorithm's criterion) and then explainability gain.

    Growth stops early once the selection is consistent, counterfactual,
    and confident with at least ``b_l`` nodes — the §2.2 properties plus
    the probability margins the fidelity metrics (Eqs. 8-9) measure.
    ``none`` mode skips all verification and runs the pure lazy greedy.
    """
    soft = mode == VERIFY_SOFT
    beam = 6
    orig_prob = verifier.subset_probability(graph.nodes(), label)
    tau = min(0.9, orig_prob)
    heap: List[Tuple[float, int, int]] = []  # (-gain, node, version)
    for v in graph.nodes():
        heapq.heappush(heap, (-oracle.gain(state, v), v, 0))
        backup.add(v)
    version = 0
    while len(state.selected) < upper and heap:
        # assemble this round's candidate pool
        pool: Dict[int, float] = {}  # node -> -gain
        popped: List[Tuple[float, int]] = []
        while heap and len(popped) < beam:
            neg_gain, v, ver = heapq.heappop(heap)
            if v in state.selected:
                continue
            if ver < version:
                heapq.heappush(heap, (-oracle.gain(state, v), v, version))
                continue
            popped.append((neg_gain, v))
            pool[v] = neg_gain
        if soft:
            frontier = sorted(
                {w for u in state.selected for w in graph.all_neighbors(u)}
                - state.selected
            )
            frontier.sort(key=lambda w: -oracle.gain(state, w))
            for w in frontier[: 2 * beam]:
                pool.setdefault(w, -oracle.gain(state, w))
        if not pool:
            break

        if not soft:
            chosen = popped[0][1]
        else:
            # the whole frontier's subset probas are needed below — fill
            # the verifier cache with one stacked pass per round; the
            # frontier's index rows are one vectorized splice into the
            # sorted selection, not per-subset sorting
            verifier.prefetch_extensions(state.selected, pool)
            conf = {}
            for v in pool:
                p = verifier.subset_probability(state.selected | {v}, label)
                # degenerate inputs (e.g. NaN features) yield non-finite
                # probabilities; rank them below every real candidate
                conf[v] = p if np.isfinite(p) else -1.0
            adjacent = {
                v: any(w in state.selected for w in graph.all_neighbors(v))
                for v in pool
            }
            top_conf = max(conf.values())
            if top_conf < tau - 1e-9:
                # confidence phase: hill-climb the class probability;
                # on plateaus prefer neighbors of the selection — the
                # class-evidencing region is connected under message
                # passing, and scattering never assembles it
                chosen = max(
                    pool,
                    key=lambda v: (
                        round(conf[v], 3),
                        adjacent[v],
                        -pool[v],
                        -v,
                    ),
                )
            else:
                top = [v for v in pool if conf[v] >= tau - 1e-9]
                verifier.prefetch_remainders(
                    [state.selected | {v} for v in top]
                )
                novelty = (
                    _pattern_novelty(
                        graph,
                        state.selected,
                        {v: pool[v] for v in top},
                        backend=matching_backend,
                    )
                    if len(top) > 1
                    else {v: True for v in top}
                )
                chosen = min(
                    top,
                    key=lambda v: (
                        verifier.remainder_probability(state.selected | {v}, label),
                        0 if novelty[v] else 1,
                        pool[v],
                        v,
                    ),
                )
        for neg_gain, v in popped:  # gains only shrink: still valid bounds
            if v != chosen:
                heapq.heappush(heap, (neg_gain, v, version))
        oracle.add(state, chosen)
        backup.discard(chosen)
        version += 1
        if soft and len(state.selected) >= max(lower, 1):
            consistent, counterfactual = verifier.check(state.selected, label)
            confident = (
                verifier.subset_probability(state.selected, label)
                >= orig_prob - 0.1
            )
            if consistent and counterfactual and confident:
                break


def _pattern_novelty(
    graph: Graph,
    selected: Set[int],
    pool: Dict[int, float],
    backend: Optional[str] = None,
) -> Dict[int, bool]:
    """Whether each candidate contributes a new (>=2-node) pattern.

    The streaming algorithm's ``IncUpdateVS`` prizes nodes whose
    neighborhood adds structure not yet represented in ``V_S`` (ΔP ≠ ∅);
    applying the same test as a tie-break here steers the batch greedy
    toward structurally distinctive nodes (e.g. the O's completing an
    NO2 group) when the remainder-probability signal is flat.
    """
    from repro.mining.pgen import mine_incremental, mine_patterns

    if not selected:
        return {v: True for v in pool}
    sel_sub, _ = graph.induced_subgraph(selected)
    known = [
        m.pattern
        for m in mine_patterns([sel_sub], max_size=3, backend=backend)
    ]
    known.extend(
        Pattern.singleton(int(t))
        for t in sorted(set(graph.node_types.tolist()))
    )
    out: Dict[int, bool] = {}
    for v in pool:
        ext = sorted(selected | {v})
        ext_sub, ids = graph.induced_subgraph(ext)
        delta = mine_incremental(
            ext_sub,
            new_node=ids.index(v),
            radius=2,
            known=known,
            max_size=3,
            backend=backend,
        )
        out[v] = any(p.n_nodes >= 2 for p in delta)
    return out


def _grow_paper_mode(
    graph: Graph,
    verifier: GnnVerifier,
    oracle: ExplainabilityOracle,
    state: SelectionState,
    backup: Set[int],
    label: int,
    lower: int,
    upper: int,
) -> None:
    """Literal Algorithm 1 loop: re-verify every candidate each round.

    Each round verifies the entire remaining-node frontier in one
    ``vp_extend_frontier`` call — two stacked forward passes under the
    batched backend instead of two per candidate.
    """
    while len(state.selected) < upper:
        candidates = [v for v in graph.nodes() if v not in state.selected]
        feasible = vp_extend_frontier(
            candidates, frozenset(state.selected), verifier, label, upper, VERIFY_PAPER
        )
        backup.update(feasible)
        if not feasible:
            break
        v_star = oracle.best_candidate(state, feasible)
        if v_star is None:
            break
        oracle.add(state, v_star)
        backup.discard(v_star)


class ApproxGvex:
    """Explain-and-summarize view generation over a graph database.

    Parameters
    ----------
    model:
        The trained (fixed) GNN classifier ``M``.
    config:
        GVEX configuration ``C``.
    labels:
        Optional subset of (model-space integer) labels of interest Ł;
        defaults to every label the model assigns on the database.
    """

    def __init__(
        self,
        model: GnnClassifier,
        config: Optional[GvexConfig] = None,
        labels: Optional[Iterable[int]] = None,
    ) -> None:
        self.model = model
        self.config = config if config is not None else GvexConfig()
        self.labels = None if labels is None else sorted(set(labels))
        self.total_inference_calls = 0

    # ------------------------------------------------------------------
    def explain(
        self,
        db: GraphDatabase,
        predicted: Optional[Sequence[Optional[int]]] = None,
    ) -> ViewSet:
        """Generate one explanation view per label of interest (Problem 1)."""
        if predicted is None:
            predicted = database_predictions(self.model, db)
        groups: Dict[int, List[int]] = {}
        for i, l in enumerate(predicted):
            if l is None:
                continue
            groups.setdefault(int(l), []).append(i)

        labels = self.labels if self.labels is not None else sorted(groups)
        views = ViewSet()
        for label in labels:
            views.add(self.explain_label_group(db, label, groups.get(label, [])))
        return views

    def explain_label_group(
        self, db: GraphDatabase, label: int, indices: Sequence[int]
    ) -> ExplanationView:
        """Build the explanation view for one label group ``G^l``."""
        view = ExplanationView(label=label)
        bounds = self.config.coverage_for(label)
        per_group = self.config.coverage_scope == SCOPE_PER_GROUP
        remaining_upper = bounds.upper if per_group else None

        for idx in indices:
            graph = db[idx]
            if per_group:
                assert remaining_upper is not None
                if remaining_upper <= 0:
                    break
                result = explain_graph(
                    self.model,
                    graph,
                    label,
                    self.config,
                    graph_index=idx,
                    lower=0,
                    upper=remaining_upper,
                )
            else:
                result = explain_graph(
                    self.model, graph, label, self.config, graph_index=idx
                )
            self.total_inference_calls += result.inference_calls
            if result.subgraph is not None:
                view.subgraphs.append(result.subgraph)
                if per_group:
                    assert remaining_upper is not None
                    remaining_upper -= result.subgraph.n_nodes

        if per_group and view.n_subgraph_nodes < bounds.lower:
            # the group could not reach its lower bound: no valid view
            return ExplanationView(label=label)

        psum = summarize([s.subgraph for s in view.subgraphs], self.config)
        view.patterns = psum.patterns
        view.edge_loss = psum.edge_loss
        view.score = sum(s.score for s in view.subgraphs)
        return view


def explain_database(
    db: GraphDatabase,
    model: GnnClassifier,
    config: Optional[GvexConfig] = None,
    labels: Optional[Iterable[int]] = None,
) -> ViewSet:
    """One-call convenience wrapper around :class:`ApproxGvex`."""
    return ApproxGvex(model, config, labels).explain(db)


__all__ = [
    "ApproxGvex",
    "explain_graph",
    "explain_database",
    "database_predictions",
    "GraphExplainResult",
]
