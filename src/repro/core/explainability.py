"""The explainability objective ``f`` (Eq. 2) as a submodular oracle.

One :class:`ExplainabilityOracle` is built per (model, graph) pair. It
precomputes the boolean influence relation and diversity balls, after
which set values and marginal gains are O(n) boolean reductions — this
is what makes the greedy in ApproxGVEX and the swap tests in
StreamGVEX cheap.

Per Eq. 2, a subgraph with node set ``V_s`` of a graph with ``|V|``
nodes contributes ``(I(V_s) + γ·D(V_s)) / |V|``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Set

import numpy as np

from repro.config import GvexConfig
from repro.core.diversity import diversity_balls
from repro.core.influence import influence_relation
from repro.gnn.model import GnnClassifier
from repro.graphs.graph import Graph
from repro.exceptions import ValidationError


@dataclass
class SelectionState:
    """Incremental state of a greedy node selection on one graph."""

    selected: Set[int] = field(default_factory=set)
    influenced: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=bool))
    diversity: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=bool))

    def copy(self) -> "SelectionState":
        return SelectionState(
            selected=set(self.selected),
            influenced=self.influenced.copy(),
            diversity=self.diversity.copy(),
        )


class ExplainabilityOracle:
    """Submodular value/gain oracle for Eq. 2 on a single graph."""

    def __init__(
        self, model: GnnClassifier, graph: Graph, config: GvexConfig
    ) -> None:
        self.graph = graph
        self.config = config
        self.n = graph.n_nodes
        if self.n:
            self.B = influence_relation(model, graph, config)
            self.R = diversity_balls(model, graph, config)
        else:
            self.B = np.zeros((0, 0), dtype=bool)
            self.R = np.zeros((0, 0), dtype=bool)

    @classmethod
    def from_relations(
        cls,
        graph: Graph,
        config: GvexConfig,
        influence: np.ndarray,
        diversity: np.ndarray,
    ) -> "ExplainabilityOracle":
        """Oracle over precomputed boolean relations ``B`` and ``R``.

        StreamGVEX's incremental ``IncEVerify`` maintains the influence
        relation and diversity balls as persistent accumulators across
        stream chunks; this constructor wraps them in the standard
        value/gain interface without re-deriving anything.
        """
        n = graph.n_nodes
        if influence.shape != (n, n) or diversity.shape != (n, n):
            raise ValidationError(
                f"relations must be ({n}, {n}); got {influence.shape} "
                f"and {diversity.shape}"
            )
        self = cls.__new__(cls)
        self.graph = graph
        self.config = config
        self.n = n
        self.B = influence
        self.R = diversity
        return self

    # ------------------------------------------------------------------
    def new_state(self) -> SelectionState:
        return SelectionState(
            selected=set(),
            influenced=np.zeros(self.n, dtype=bool),
            diversity=np.zeros(self.n, dtype=bool),
        )

    def state_for(self, nodes: Iterable[int]) -> SelectionState:
        state = self.new_state()
        for v in nodes:
            self.add(state, v)
        return state

    # ------------------------------------------------------------------
    def value_of_state(self, state: SelectionState) -> float:
        """Current ``(I + γ·D) / |V|`` value."""
        if self.n == 0:
            return 0.0
        influence = float(state.influenced.sum())
        diversity = float(state.diversity.sum())
        return (influence + self.config.gamma * diversity) / self.n

    def evaluate(self, nodes: Iterable[int]) -> float:
        """Stateless value of an arbitrary node set."""
        return self.value_of_state(self.state_for(nodes))

    def gain(self, state: SelectionState, v: int) -> float:
        """Marginal gain of adding node ``v`` (without mutating state).

        The quantity bounded by Lemma 3.3: ``f`` is monotone
        submodular, so these marginals are non-increasing along a
        selection — what justifies lazy-greedy evaluation in
        ApproxGVEX and the swap test in StreamGVEX.
        """
        if v in state.selected:
            return 0.0
        new_influenced = state.influenced | self.B[v]
        newly = new_influenced & ~state.influenced
        d_influence = float(newly.sum())
        if newly.any():
            new_diversity = state.diversity | self.R[newly].any(axis=0)
            d_diversity = float((new_diversity & ~state.diversity).sum())
        else:
            d_diversity = 0.0
        return (d_influence + self.config.gamma * d_diversity) / self.n

    def loss(self, state: SelectionState, v: int) -> float:
        """Value drop from removing ``v`` (recomputes the reduced state)."""
        if v not in state.selected:
            return 0.0
        reduced = self.state_for(state.selected - {v})
        return self.value_of_state(state) - self.value_of_state(reduced)

    def add(self, state: SelectionState, v: int) -> float:
        """Add ``v`` to the state; returns the realized gain."""
        gain = self.gain(state, v)
        if v in state.selected:
            return 0.0
        newly = self.B[v] & ~state.influenced
        state.influenced |= self.B[v]
        if newly.any():
            state.diversity |= self.R[newly].any(axis=0)
        state.selected.add(v)
        return gain

    def remove(self, state: SelectionState, v: int) -> "SelectionState":
        """State with ``v`` removed (rebuilt; unions are not invertible)."""
        return self.state_for(state.selected - {v})

    # ------------------------------------------------------------------
    def best_candidate(
        self, state: SelectionState, candidates: Iterable[int]
    ) -> Optional[int]:
        """argmax marginal gain; deterministic tie-break on node id."""
        best_v: Optional[int] = None
        best_gain = -1.0
        for v in sorted(set(candidates) - state.selected):
            g = self.gain(state, v)
            if g > best_gain + 1e-15:
                best_gain = g
                best_v = v
        return best_v


__all__ = ["ExplainabilityOracle", "SelectionState"]
