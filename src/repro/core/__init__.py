"""GVEX core: explainability objective, verifiers, and the two algorithms."""

from repro.core.approx import (
    ApproxGvex,
    database_predictions,
    explain_database,
    explain_graph,
)
from repro.core.explainability import ExplainabilityOracle, SelectionState
from repro.core.inc_everify import IncrementalEVerify, OracleStats
from repro.core.node_explain import NodeExplanation, explain_node
from repro.core.psum import PsumResult, summarize
from repro.core.streaming import AnytimeSnapshot, StreamGvex, StreamResult
from repro.core.verifiers import (
    BatchedGnnVerifier,
    GnnVerifier,
    ViewVerification,
    make_verifier,
    uniform_prior,
    verify_view,
    vp_extend,
    vp_extend_frontier,
)

__all__ = [
    "ApproxGvex",
    "StreamGvex",
    "StreamResult",
    "AnytimeSnapshot",
    "explain_graph",
    "explain_database",
    "database_predictions",
    "explain_node",
    "NodeExplanation",
    "ExplainabilityOracle",
    "SelectionState",
    "IncrementalEVerify",
    "OracleStats",
    "summarize",
    "PsumResult",
    "GnnVerifier",
    "BatchedGnnVerifier",
    "make_verifier",
    "uniform_prior",
    "vp_extend",
    "vp_extend_frontier",
    "verify_view",
    "ViewVerification",
]
