"""Feature-influence scores ``I(V_s)`` (Eqs. 3-5).

Builds the boolean *influence relation* ``B[u, v]`` — node ``u``
influences node ``v`` iff the normalized Jacobian influence
``I2(u, v) >= θ`` — from which ``I(V_s)`` is the size of the union of
influenced sets, a monotone submodular set function (Lemma 3.3).
"""

from __future__ import annotations

import numpy as np

from repro.config import GvexConfig
from repro.gnn.jacobian import influence_matrix, normalized_influence
from repro.gnn.model import GnnClassifier
from repro.graphs.graph import Graph


def influence_relation(
    model: GnnClassifier, graph: Graph, config: GvexConfig
) -> np.ndarray:
    """Boolean ``(n, n)`` matrix: ``B[u, v]`` iff ``I2(u, v) >= θ``."""
    I1 = influence_matrix(model, graph, mode=config.jacobian)
    I2 = normalized_influence(I1)
    return I2 >= config.theta


def influence_score(B: np.ndarray, nodes) -> int:
    """``I(V_s)`` — Eq. 5 — number of nodes influenced by ``V_s``."""
    idx = list(nodes)
    if not idx:
        return 0
    return int(B[idx].any(axis=0).sum())


def influenced_set(B: np.ndarray, nodes) -> np.ndarray:
    """Boolean mask of nodes influenced by ``V_s`` (the set ``Inf(V_s)``)."""
    idx = list(nodes)
    if not idx:
        return np.zeros(B.shape[1], dtype=bool)
    return B[idx].any(axis=0)


__all__ = ["influence_relation", "influence_score", "influenced_set"]
