"""Neighborhood-diversity scores ``D(V_s)`` (Eq. 6).

For each node ``v``, the ball ``r(v, d)`` collects nodes whose
final-layer GNN embeddings are within distance ``r`` of ``v``'s.
``D(V_s)`` is the size of the union of balls around every node
influenced by ``V_s`` — again monotone submodular.

The distance is the normalized Euclidean distance: embeddings are
L2-normalized first, so ``d`` ranges in [0, 2] and the radius threshold
``r`` is scale-free across models and datasets.
"""

from __future__ import annotations

import numpy as np

from repro.config import GvexConfig
from repro.gnn.model import GnnClassifier
from repro.graphs.graph import Graph


def embedding_distances(embeddings: np.ndarray) -> np.ndarray:
    """Pairwise normalized Euclidean distances between embedding rows."""
    norms = np.linalg.norm(embeddings, axis=1, keepdims=True)
    safe = np.where(norms <= 1e-12, 1.0, norms)
    unit = embeddings / safe
    sq = (unit**2).sum(axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (unit @ unit.T)
    return np.sqrt(np.maximum(d2, 0.0))


def diversity_balls(
    model: GnnClassifier, graph: Graph, config: GvexConfig
) -> np.ndarray:
    """Boolean ``(n, n)`` ball matrix ``R[v, v']`` iff ``d(X^k_v, X^k_v') <= r``."""
    if graph.n_nodes == 0:
        return np.zeros((0, 0), dtype=bool)
    emb = model.node_embeddings(graph)
    return embedding_distances(emb) <= config.radius


def diversity_score(R: np.ndarray, influenced_mask: np.ndarray) -> int:
    """``D(V_s)`` — union size of balls around influenced nodes."""
    if not influenced_mask.any():
        return 0
    return int(R[influenced_mask].any(axis=0).sum())


__all__ = ["embedding_distances", "diversity_balls", "diversity_score"]
