"""GVEX configuration objects.

The paper's configuration ``C = (θ, r, {[b_l, u_l]})`` (§3.2) bundles the
explainability thresholds with per-label coverage constraints. We extend
it with the explainability trade-off weight ``γ`` (Eq. 2), the Jacobian
mode for feature influence (§3.1 / DESIGN.md §1), and the verification
mode of Procedure ``VpExtend`` (DESIGN.md §3).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Hashable, Mapping, Optional, Tuple

from repro.exceptions import ConfigurationError

#: Literal Procedure 2 — every extension must be consistent + counterfactual.
VERIFY_PAPER = "paper"
#: Grow by explainability gain; record/verify consistency + counterfactual
#: after each extension and stop early once both hold (default).
VERIFY_SOFT = "soft"
#: No GNN verification during growth (pure submodular maximization).
VERIFY_NONE = "none"

VERIFICATION_MODES = (VERIFY_PAPER, VERIFY_SOFT, VERIFY_NONE)

#: coverage bounds apply to each graph's selected node count (matches
#: Algorithm 1's stopping rule and the u_l sweeps in Figures 5-6)
SCOPE_PER_GRAPH = "per_graph"
#: coverage bounds apply to the label group's total selected nodes
#: (Problem 1's aggregate reading)
SCOPE_PER_GROUP = "per_group"

COVERAGE_SCOPES = (SCOPE_PER_GRAPH, SCOPE_PER_GROUP)

#: Exact per-pair Jacobian through the trained network's ReLU masks.
JACOBIAN_EXACT = "exact"
#: Expected Jacobian == k-step random-walk matrix (Xu et al. 2018).
JACOBIAN_EXPECTED = "expected"

JACOBIAN_MODES = (JACOBIAN_EXACT, JACOBIAN_EXPECTED)

#: Reference ``EVerify``: one dense forward per memo-cache miss.
BACKEND_SERIAL = "serial"
#: Frontier-at-a-time ``EVerify``: cache misses are filled in bulk with
#: stacked forward passes (default; decision-identical to serial).
BACKEND_BATCHED = "batched"

VERIFIER_BACKENDS = (BACKEND_SERIAL, BACKEND_BATCHED)

#: StreamGVEX ``IncEVerify``: rebuild the explainability oracle on the
#: seen prefix once per chunk (the reference schedule).
STREAM_REBUILD = "rebuild"
#: StreamGVEX ``IncEVerify``: extend persistent influence/diversity
#: accumulators when a chunk arrives (default; decision-identical to
#: rebuild — see docs/streaming.md).
STREAM_INCREMENTAL = "incremental"

STREAM_INC_MODES = (STREAM_REBUILD, STREAM_INCREMENTAL)

#: Reference ``PMatch``: pure-Python VF2 backtracking with per-pair
#: set probes and no cross-call caching (the seed implementation).
MATCH_REFERENCE = "reference"
#: Bitset ``PMatch``: precomputed per-host match contexts, packed-
#: bitset VF2 feasibility, and the process-wide match-plan cache
#: (default; enumeration-order identical to reference).
MATCH_FAST = "fast"

MATCHING_BACKENDS = (MATCH_REFERENCE, MATCH_FAST)


@dataclass(frozen=True)
class CoverageConstraint:
    """Per-label node coverage range ``[lower, upper]`` (§3.1 Coverage)."""

    lower: int
    upper: int

    def __post_init__(self) -> None:
        if self.lower < 0:
            raise ConfigurationError(
                f"coverage lower bound must be >= 0, got {self.lower}"
            )
        if self.upper < self.lower:
            raise ConfigurationError(
                f"coverage upper bound {self.upper} < lower bound {self.lower}"
            )

    def contains(self, count: int) -> bool:
        """Whether a node count satisfies this constraint."""
        return self.lower <= count <= self.upper

    def as_tuple(self) -> Tuple[int, int]:
        return (self.lower, self.upper)


@dataclass(frozen=True)
class GvexConfig:
    """Full GVEX configuration.

    Parameters
    ----------
    theta:
        Influence threshold ``θ`` — a node ``v`` counts as influenced by
        ``u`` when the normalized influence ``I2(u, v) >= theta`` (Eq. 5).
    radius:
        Embedding-distance threshold ``r`` for the diversity ball
        ``r(v, d)`` (Eq. 6).
    gamma:
        Trade-off weight between influence and diversity in Eq. 2.
    coverage:
        Mapping from class label to its :class:`CoverageConstraint`.
        Labels missing from the mapping fall back to ``default_coverage``.
    default_coverage:
        Constraint applied to labels not listed in ``coverage``.
    verification:
        One of :data:`VERIFICATION_MODES`; see DESIGN.md §3.
    verifier_backend:
        One of :data:`VERIFIER_BACKENDS` — how ``EVerify`` schedules
        GNN inference. ``"batched"`` fills the memo cache one candidate
        frontier at a time with stacked forward passes; ``"serial"`` is
        the one-subset-per-forward reference. Both backends return
        bit-identical probabilities, so selections never differ.
    matching_backend:
        One of :data:`MATCHING_BACKENDS` — how ``PMatch`` runs pattern
        matching. ``"fast"`` (default) uses per-host bitset match
        contexts plus the process-wide match-plan cache; ``"reference"``
        is the pure-Python VF2 seed implementation. Both enumerate
        matchings in the same deterministic order, so coverage sets,
        mined patterns, and views are bit-identical
        (see docs/matching.md).
    jacobian:
        One of :data:`JACOBIAN_MODES` for feature-influence computation.
    max_pattern_size:
        Upper bound on mined pattern node count (PGen).
    min_pattern_support:
        Minimum number of explanation subgraphs a mined pattern must
        occur in before it becomes a Psum candidate (singletons are
        always kept so coverage stays feasible).
    """

    theta: float = 0.1
    radius: float = 0.5
    gamma: float = 0.5
    coverage: Mapping[Hashable, CoverageConstraint] = field(default_factory=dict)
    default_coverage: CoverageConstraint = CoverageConstraint(0, 15)
    verification: str = VERIFY_SOFT
    #: EVerify backend: ``"batched"`` (default) or the ``"serial"``
    #: reference implementation (see docs/verification.md)
    verifier_backend: str = BACKEND_BATCHED
    #: PMatch backend: ``"fast"`` (default) or the ``"reference"``
    #: pure-Python VF2 (see docs/matching.md)
    matching_backend: str = MATCH_FAST
    jacobian: str = JACOBIAN_EXPECTED
    max_pattern_size: int = 5
    min_pattern_support: int = 1
    coverage_scope: str = SCOPE_PER_GRAPH
    #: StreamGVEX: nodes per batch between oracle refreshes (§5)
    stream_batch_size: int = 8
    #: StreamGVEX: neighborhood radius handed to IncPGen
    stream_radius: int = 1
    #: StreamGVEX ``IncEVerify`` schedule: ``"incremental"`` (default)
    #: extends persistent influence/diversity accumulators chunk by
    #: chunk; ``"rebuild"`` re-derives the oracle on the seen prefix
    #: every chunk and stays as the parity reference
    #: (see docs/streaming.md)
    stream_inc: str = STREAM_INCREMENTAL

    def __post_init__(self) -> None:
        if not 0.0 <= self.theta <= 1.0:
            raise ConfigurationError(f"theta must be in [0, 1], got {self.theta}")
        if self.radius < 0:
            raise ConfigurationError(f"radius must be >= 0, got {self.radius}")
        if not 0.0 <= self.gamma <= 1.0:
            raise ConfigurationError(f"gamma must be in [0, 1], got {self.gamma}")
        if self.verification not in VERIFICATION_MODES:
            raise ConfigurationError(
                f"verification must be one of {VERIFICATION_MODES}, "
                f"got {self.verification!r}"
            )
        if self.verifier_backend not in VERIFIER_BACKENDS:
            raise ConfigurationError(
                f"verifier_backend must be one of {VERIFIER_BACKENDS}, "
                f"got {self.verifier_backend!r}"
            )
        if self.matching_backend not in MATCHING_BACKENDS:
            raise ConfigurationError(
                f"matching_backend must be one of {MATCHING_BACKENDS}, "
                f"got {self.matching_backend!r}"
            )
        if self.jacobian not in JACOBIAN_MODES:
            raise ConfigurationError(
                f"jacobian must be one of {JACOBIAN_MODES}, got {self.jacobian!r}"
            )
        if self.max_pattern_size < 1:
            raise ConfigurationError(
                f"max_pattern_size must be >= 1, got {self.max_pattern_size}"
            )
        if self.min_pattern_support < 1:
            raise ConfigurationError(
                f"min_pattern_support must be >= 1, got {self.min_pattern_support}"
            )
        if self.coverage_scope not in COVERAGE_SCOPES:
            raise ConfigurationError(
                f"coverage_scope must be one of {COVERAGE_SCOPES}, "
                f"got {self.coverage_scope!r}"
            )
        if self.stream_batch_size < 1:
            raise ConfigurationError(
                f"stream_batch_size must be >= 1, got {self.stream_batch_size}"
            )
        if self.stream_radius < 0:
            raise ConfigurationError(
                f"stream_radius must be >= 0, got {self.stream_radius}"
            )
        if self.stream_inc not in STREAM_INC_MODES:
            raise ConfigurationError(
                f"stream_inc must be one of {STREAM_INC_MODES}, "
                f"got {self.stream_inc!r}"
            )

    def coverage_for(self, label: Hashable) -> CoverageConstraint:
        """Coverage constraint ``[b_l, u_l]`` for a class label."""
        return self.coverage.get(label, self.default_coverage)

    def with_coverage(self, label: Hashable, lower: int, upper: int) -> "GvexConfig":
        """Return a copy with the constraint for ``label`` replaced."""
        new = dict(self.coverage)
        new[label] = CoverageConstraint(lower, upper)
        return replace(self, coverage=new)

    def with_bounds(self, lower: int, upper: int) -> "GvexConfig":
        """Return a copy whose *default* coverage is ``[lower, upper]``."""
        return replace(self, default_coverage=CoverageConstraint(lower, upper))

    # ------------------------------------------------------------------
    # wire format (used by the service / HTTP layer)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON representation; inverse of :meth:`from_dict`."""
        out: Dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "coverage":
                out[f.name] = {
                    str(label): list(c.as_tuple()) for label, c in value.items()
                }
            elif f.name == "default_coverage":
                out[f.name] = list(value.as_tuple())
            else:
                out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "GvexConfig":
        """Build a config from a plain-JSON dict (unknown keys rejected).

        Coverage labels arrive as JSON object keys (strings); integer
        labels are converted back so lookups keep working.
        """
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown GvexConfig fields: {sorted(unknown)}"
            )
        kwargs: Dict[str, Any] = dict(data)
        if "coverage" in kwargs:
            coverage: Dict[Hashable, CoverageConstraint] = {}
            for label, bounds in (kwargs["coverage"] or {}).items():
                if isinstance(label, str) and label.lstrip("-").isdigit():
                    label = int(label)
                coverage[label] = CoverageConstraint(int(bounds[0]), int(bounds[1]))
            kwargs["coverage"] = coverage
        if "default_coverage" in kwargs and not isinstance(
            kwargs["default_coverage"], CoverageConstraint
        ):
            lower, upper = kwargs["default_coverage"]
            kwargs["default_coverage"] = CoverageConstraint(int(lower), int(upper))
        return cls(**kwargs)


DEFAULT_CONFIG = GvexConfig()

__all__ = [
    "CoverageConstraint",
    "GvexConfig",
    "DEFAULT_CONFIG",
    "VERIFY_PAPER",
    "VERIFY_SOFT",
    "VERIFY_NONE",
    "VERIFICATION_MODES",
    "JACOBIAN_EXACT",
    "JACOBIAN_EXPECTED",
    "JACOBIAN_MODES",
    "BACKEND_SERIAL",
    "BACKEND_BATCHED",
    "VERIFIER_BACKENDS",
    "MATCH_REFERENCE",
    "MATCH_FAST",
    "MATCHING_BACKENDS",
    "STREAM_REBUILD",
    "STREAM_INCREMENTAL",
    "STREAM_INC_MODES",
    "SCOPE_PER_GRAPH",
    "SCOPE_PER_GROUP",
    "COVERAGE_SCOPES",
]
