"""Host match-contexts and pattern match-plans (fast ``PMatch`` tier).

The reference matcher re-derives everything per call: candidate sets
from Python neighbor sets, feasibility from per-pair dict probes. The
fast backend splits that work into two reusable halves:

* :class:`MatchContext` — per-*host* state: node-type and degree
  arrays, packed-bitset adjacency rows (out/in rows for directed
  hosts), lazily built per-type node masks, and neighborhood
  type-signature count arrays. Built once per host and shared by every
  pattern matched against it.
* :class:`MatchPlan` — per-*pattern* state: the reference matching
  order, and for each position the edge/non-edge constraints against
  previously mapped positions plus the degree and neighborhood
  type-signature requirements used for pruning. Built once per
  canonical pattern and shared across a whole host database
  (database-batched ``PMatch``).

Hosts above :data:`MatchContext.LAZY_ROW_THRESHOLD` nodes build
adjacency rows on demand (only nodes actually mapped during search pay
for a row), so contexts stay usable on SYNTHETIC-scale hosts where a
dense ``n x n/64`` row table would not fit.

Both halves only *prune* subtrees that can never produce a match, so
the fast matcher emits exactly the reference enumeration sequence —
the backend contract ``docs/matching.md`` documents and
``tests/test_matching_parity.py`` enforces.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import MatchingError
from repro.graphs.graph import Graph
from repro.graphs.pattern import Pattern
from repro.matching import bitset

#: a neighborhood-signature key: ``(direction, edge_type, neighbor
#: type)`` with direction "" for undirected, "o"/"i" for directed
SigKey = Tuple[str, int, int]


def graph_content_key(graph: Graph) -> str:
    """Stable content digest of a host graph.

    Two graphs share a key iff they have identical node types, directed
    flag, and typed edge sets under the identity node mapping — exactly
    when every matcher result against them is interchangeable (features
    are excluded; matching never reads them). Used to key the
    process-wide match-plan cache (``plan_cache.py``), where object
    identity is not safe (ids are recycled) and host graphs may be
    rebuilt per request. Memoized on the graph, invalidated on
    mutation.
    """
    return graph.content_key()


def matching_order(p: Graph) -> List[int]:
    """Visit order where each node (after the first) touches a prior one.

    This is the reference matcher's order (root at the highest-degree
    node, then maximize mapped-degree ties broken by total degree);
    both backends share it so candidate trees are identical.
    """
    if p.n_nodes == 0:
        return []
    root = max(p.nodes(), key=lambda v: (p.degree(v), -v))
    order = [root]
    seen = {root}
    frontier: List[int] = sorted(p.all_neighbors(root))
    while frontier:
        nxt = None
        best = (-1, 0)
        for v in frontier:
            mapped_deg = sum(1 for w in p.all_neighbors(v) if w in seen)
            key = (mapped_deg, p.degree(v))
            if key > best:
                best = key
                nxt = v
        assert nxt is not None
        order.append(nxt)
        seen.add(nxt)
        frontier = sorted(
            {w for v in seen for w in p.all_neighbors(v) if w not in seen}
        )
    if len(order) != p.n_nodes:
        raise MatchingError("pattern is disconnected")  # guarded by Pattern
    return order


class MatchContext:
    """Precomputed matching state for one host graph.

    Everything a bitset VF2 run needs that depends only on the host:
    adjacency rows as packed uint64 words (``all``/``out``/``in``
    flavors), per-type candidate masks, degree arrays, and the
    neighborhood type-signature count arrays the pruning rules consume.
    """

    #: hosts with more nodes than this build adjacency rows lazily
    LAZY_ROW_THRESHOLD = 4096

    __slots__ = (
        "graph",
        "n",
        "words",
        "directed",
        "node_types",
        "degrees",
        "_all_rows",
        "_out_rows",
        "_in_rows",
        "_lazy_all",
        "_lazy_out",
        "_lazy_in",
        "_type_masks",
        "_sig_counts",
        "_type_counts",
    )

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        n = graph.n_nodes
        self.n = n
        self.words = bitset.n_words(n)
        self.directed = graph.directed
        self.node_types = np.asarray(graph.node_types, dtype=np.int64)
        self.degrees = np.fromiter(
            (graph.degree(v) for v in range(n)), dtype=np.int64, count=n
        )
        self._type_masks: Dict[int, np.ndarray] = {}
        self._sig_counts: Dict[SigKey, np.ndarray] = {}
        self._type_counts: Optional[Dict[int, int]] = None
        eager = n <= self.LAZY_ROW_THRESHOLD
        self._all_rows: Optional[np.ndarray] = None
        self._out_rows: Optional[np.ndarray] = None
        self._in_rows: Optional[np.ndarray] = None
        self._lazy_all: Dict[int, np.ndarray] = {}
        self._lazy_out: Dict[int, np.ndarray] = {}
        self._lazy_in: Dict[int, np.ndarray] = {}
        if eager and n:
            self._build_rows()

    # ------------------------------------------------------------------
    # adjacency rows
    # ------------------------------------------------------------------
    def _build_rows(self) -> None:
        g = self.graph
        W = self.words
        all_rows = np.zeros((self.n, W), dtype=np.uint64)
        if self.directed:
            out_rows = np.zeros((self.n, W), dtype=np.uint64)
            in_rows = np.zeros((self.n, W), dtype=np.uint64)
            for (u, v) in g.edge_types:
                out_rows[u, v >> 6] |= np.uint64(1 << (v & 63))
                in_rows[v, u >> 6] |= np.uint64(1 << (u & 63))
                all_rows[u, v >> 6] |= np.uint64(1 << (v & 63))
                all_rows[v, u >> 6] |= np.uint64(1 << (u & 63))
            self._out_rows = out_rows
            self._in_rows = in_rows
        else:
            for (u, v) in g.edge_types:
                all_rows[u, v >> 6] |= np.uint64(1 << (v & 63))
                all_rows[v, u >> 6] |= np.uint64(1 << (u & 63))
        self._all_rows = all_rows

    def all_row(self, v: int) -> np.ndarray:
        """Bitset of ``v``'s neighbors ignoring direction."""
        if self._all_rows is not None:
            return self._all_rows[v]
        row = self._lazy_all.get(v)
        if row is None:
            row = bitset.from_indices(self.graph.all_neighbors(v), self.n)
            self._lazy_all[v] = row
        return row

    def out_row(self, v: int) -> np.ndarray:
        """Bitset of ``{w : v -> w}`` (directed hosts only)."""
        if self._out_rows is not None:
            return self._out_rows[v]
        row = self._lazy_out.get(v)
        if row is None:
            row = bitset.from_indices(self.graph.neighbors(v), self.n)
            self._lazy_out[v] = row
        return row

    def in_row(self, v: int) -> np.ndarray:
        """Bitset of ``{w : w -> v}`` (directed hosts only)."""
        if self._in_rows is not None:
            return self._in_rows[v]
        row = self._lazy_in.get(v)
        if row is None:
            row = bitset.from_indices(self.graph.in_neighbors(v), self.n)
            self._lazy_in[v] = row
        return row

    # ------------------------------------------------------------------
    # pruning tables
    # ------------------------------------------------------------------
    def type_counts(self) -> Dict[int, int]:
        """Host node count per node type (cheap match prefilter)."""
        if self._type_counts is None:
            types, counts = np.unique(self.node_types, return_counts=True)
            self._type_counts = {
                int(t): int(c) for t, c in zip(types, counts)
            }
        return self._type_counts

    def sig_counts(self, key: SigKey) -> np.ndarray:
        """Per-node count of neighbors matching one signature key.

        ``key = (direction, edge_type, neighbor_type)``; a host node is
        a viable image for a pattern node only when, for every key of
        the pattern node's neighborhood signature, the host count is at
        least the pattern count (injective neighbor mapping).
        """
        counts = self._sig_counts.get(key)
        if counts is None:
            direction, etype, ntype = key
            counts = np.zeros(self.n, dtype=np.int64)
            for (u, v), t in self.graph.edge_types.items():
                if t != etype:
                    continue
                if direction == "":  # undirected: count both endpoints
                    if self.node_types[v] == ntype:
                        counts[u] += 1
                    if self.node_types[u] == ntype:
                        counts[v] += 1
                elif direction == "o":  # u -> v seen from u
                    if self.node_types[v] == ntype:
                        counts[u] += 1
                else:  # "i": u -> v seen from v
                    if self.node_types[u] == ntype:
                        counts[v] += 1
            self._sig_counts[key] = counts
        return counts

    def compat_mask(self, plan: "MatchPlan", pos: int) -> np.ndarray:
        """Packed candidate mask for one plan position.

        Type equality, degree lower bound, and neighborhood-signature
        domination — all the host-only pruning rules, vectorized over
        the whole host then packed to words.
        """
        ok = self.node_types == plan.types[pos]
        if ok.any():
            ok &= self.degrees >= plan.degrees[pos]
        for key, need in plan.sigs[pos]:
            if not ok.any():
                break
            ok &= self.sig_counts(key) >= need
        return bitset.from_bool(ok)


class MatchPlan:
    """Precomputed matching schedule for one pattern.

    Mirrors exactly what the reference backtracking derives on the fly:
    the matching order, and per position the (non-)adjacency and
    edge-type constraints against previously mapped positions. Adds the
    pruning tables (degree bounds, neighborhood type signatures) the
    fast backend applies host-side.
    """

    __slots__ = (
        "pattern",
        "order",
        "types",
        "degrees",
        "sigs",
        "adj",
        "nonadj",
        "dir_cons",
        "type_needs",
    )

    def __init__(self, pattern: Pattern) -> None:
        self.pattern = pattern
        p = pattern.graph
        order = matching_order(p)
        self.order = order
        k = len(order)
        self.types = [p.node_type(v) for v in order]
        self.degrees = [p.degree(v) for v in order]

        # neighborhood signatures per position
        self.sigs: List[List[Tuple[SigKey, int]]] = []
        for v in order:
            need: Dict[SigKey, int] = {}
            if p.directed:
                for w in p.neighbors(v):
                    key = ("o", p.edge_type(v, w), p.node_type(w))
                    need[key] = need.get(key, 0) + 1
                for w in p.in_neighbors(v):
                    key = ("i", p.edge_type(w, v), p.node_type(w))
                    need[key] = need.get(key, 0) + 1
            else:
                for w in p.neighbors(v):
                    key = ("", p.edge_type(v, w), p.node_type(w))
                    need[key] = need.get(key, 0) + 1
            self.sigs.append(sorted(need.items()))

        # per-position constraints against previously mapped positions
        pos_of = {v: i for i, v in enumerate(order)}
        #: undirected: (prev position, edge type) for pattern edges
        self.adj: List[List[Tuple[int, int]]] = [[] for _ in range(k)]
        #: undirected: prev positions with no pattern edge
        self.nonadj: List[List[int]] = [[] for _ in range(k)]
        #: directed: (prev position, fwd edge type or None, bwd edge
        #: type or None) where fwd is ``order[i] -> order[j]``
        self.dir_cons: List[
            List[Tuple[int, Optional[int], Optional[int]]]
        ] = [[] for _ in range(k)]
        for i, pv in enumerate(order):
            for j in range(i):
                qv = order[j]
                if p.directed:
                    fwd = (
                        p.edge_type(pv, qv) if qv in p.neighbors(pv) else None
                    )
                    bwd = (
                        p.edge_type(qv, pv) if pv in p.neighbors(qv) else None
                    )
                    self.dir_cons[i].append((j, fwd, bwd))
                else:
                    if p.has_edge(pv, qv):
                        self.adj[i].append((j, p.edge_type(pv, qv)))
                    else:
                        self.nonadj[i].append(j)

        #: node count needed per type (cheap host prefilter)
        needs: Dict[int, int] = {}
        for t in self.types:
            needs[t] = needs.get(t, 0) + 1
        self.type_needs = needs

    def host_can_match(self, ctx: MatchContext) -> bool:
        """Cheap prefilter: does the host have enough nodes per type?"""
        if len(self.order) > ctx.n:
            return False
        counts = ctx.type_counts()
        return all(
            counts.get(t, 0) >= need for t, need in self.type_needs.items()
        )


__all__ = [
    "MatchContext",
    "MatchPlan",
    "SigKey",
    "graph_content_key",
    "matching_order",
]
