"""Host match-contexts and pattern match-plans (fast ``PMatch`` tier).

The reference matcher re-derives everything per call: candidate sets
from Python neighbor sets, feasibility from per-pair dict probes. The
fast backend splits that work into two reusable halves:

* :class:`MatchContext` — per-*host* state: node-type and degree
  arrays, packed-bitset adjacency rows (out/in rows for directed
  hosts), per-edge-type row tables for typed candidate expansion, and
  neighborhood type-signature count arrays. Built once per host and
  shared by every pattern matched against it.
* :class:`MatchPlan` — per-*pattern* state: the reference matching
  order, and for each position the edge/non-edge constraints against
  previously mapped positions plus the degree and neighborhood
  type-signature requirements used for pruning. Built once per
  canonical pattern and shared across a whole host database
  (database-batched ``PMatch``).

Context construction runs on the columnar CSR layout
(``repro.graphs.columnar``, docs/columnar.md): type and degree arrays
are zero-copy slices of the group arrays, packed rows come from the
group's shared row table (or one ``bitwise_or.at`` scatter over the
slice), and signature counts are a masked ``bincount`` — single
vectorized passes instead of per-host Python packing loops. Hosts that
never joined a database go through the same code path via an on-the-fly
single-graph slice, so the per-edge Python loops only remain as the
fallback for stale slices and for cross-directedness signature keys.

Hosts above :data:`MatchContext.LAZY_ROW_THRESHOLD` nodes build
adjacency rows on demand (only nodes actually mapped during search pay
for a row), so contexts stay usable on SYNTHETIC-scale hosts where a
dense ``n x n/64`` row table would not fit.

Both halves only *prune* subtrees that can never produce a match, so
the fast matcher emits exactly the reference enumeration sequence —
the backend contract ``docs/matching.md`` documents and
``tests/test_matching_parity.py`` enforces.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import MatchingError
from repro.graphs.columnar import (
    KIND_ALL,
    KIND_IN,
    KIND_OUT,
    GraphSlice,
    columnar_slice_of,
)
from repro.graphs.graph import Graph
from repro.graphs.pattern import Pattern
from repro.matching import bitset

#: a neighborhood-signature key: ``(direction, edge_type, neighbor
#: type)`` with direction "" for undirected, "o"/"i" for directed
SigKey = Tuple[str, int, int]


def graph_content_key(graph: Graph) -> str:
    """Stable content digest of a host graph.

    Two graphs share a key iff they have identical node types, directed
    flag, and typed edge sets under the identity node mapping — exactly
    when every matcher result against them is interchangeable (features
    are excluded; matching never reads them). Used to key the
    process-wide match-plan cache (``plan_cache.py``), where object
    identity is not safe (ids are recycled) and host graphs may be
    rebuilt per request. Memoized on the graph, invalidated on
    mutation.
    """
    return graph.content_key()


def matching_order(p: Graph) -> List[int]:
    """Visit order where each node (after the first) touches a prior one.

    This is the reference matcher's order (root at the highest-degree
    node, then maximize mapped-degree ties broken by total degree);
    both backends share it so candidate trees are identical.
    """
    if p.n_nodes == 0:
        return []
    root = max(p.nodes(), key=lambda v: (p.degree(v), -v))
    order = [root]
    seen = {root}
    frontier: List[int] = sorted(p.all_neighbors(root))
    while frontier:
        nxt = None
        best = (-1, 0)
        for v in frontier:
            mapped_deg = sum(1 for w in p.all_neighbors(v) if w in seen)
            key = (mapped_deg, p.degree(v))
            if key > best:
                best = key
                nxt = v
        assert nxt is not None
        order.append(nxt)
        seen.add(nxt)
        frontier = sorted(
            {w for v in seen for w in p.all_neighbors(v) if w not in seen}
        )
    if len(order) != p.n_nodes:
        raise MatchingError("pattern is disconnected")  # guarded by Pattern
    return order


class MatchContext:
    """Precomputed matching state for one host graph.

    Everything a bitset VF2 run needs that depends only on the host:
    adjacency rows as packed uint64 words (``all``/``out``/``in``
    flavors), per-type candidate masks, degree arrays, and the
    neighborhood type-signature count arrays the pruning rules consume.
    """

    #: hosts with more nodes than this build adjacency rows lazily
    LAZY_ROW_THRESHOLD = 4096

    __slots__ = (
        "graph",
        "n",
        "words",
        "directed",
        "node_types",
        "degrees",
        "_slice",
        "_all_rows",
        "_out_rows",
        "_in_rows",
        "_lazy_all",
        "_lazy_out",
        "_lazy_in",
        "_row_ids",
        "_typed_rows",
        "_type_masks",
        "_sig_counts",
        "_type_counts",
        "_compat_cache",
        "_int_cache",
    )

    def __init__(
        self, graph: Graph, columnar: Optional[GraphSlice] = None
    ) -> None:
        self.graph = graph
        n = graph.n_nodes
        self.n = n
        self.words = bitset.n_words(n)
        self.directed = graph.directed
        self._type_masks: Dict[int, np.ndarray] = {}
        self._sig_counts: Dict[SigKey, np.ndarray] = {}
        self._type_counts: Optional[Dict[int, int]] = None
        self._row_ids: Dict[str, np.ndarray] = {}
        self._typed_rows: Dict[Tuple[str, int], np.ndarray] = {}
        self._compat_cache: Dict[str, List[np.ndarray]] = {}
        self._int_cache: Dict[object, object] = {}
        eager = n <= self.LAZY_ROW_THRESHOLD
        if columnar is not None and columnar.content_key != graph.content_key():
            columnar = None  # stale slice: the graph mutated since the build
        if columnar is None and eager:
            columnar = columnar_slice_of(graph)
        self._slice = columnar
        if columnar is not None:
            # zero-copy views of the columnar group arrays
            self.node_types = columnar.node_type
            self.degrees = columnar.degrees()
        else:
            self.node_types = np.asarray(graph.node_types, dtype=np.int64)
            self.degrees = np.fromiter(
                (graph.degree(v) for v in range(n)), dtype=np.int64, count=n
            )
        self._all_rows: Optional[np.ndarray] = None
        self._out_rows: Optional[np.ndarray] = None
        self._in_rows: Optional[np.ndarray] = None
        self._lazy_all: Dict[int, np.ndarray] = {}
        self._lazy_out: Dict[int, np.ndarray] = {}
        self._lazy_in: Dict[int, np.ndarray] = {}
        if eager and n:
            self._build_rows()

    # ------------------------------------------------------------------
    # adjacency rows
    # ------------------------------------------------------------------
    def _slice_row_ids(self, kind: str) -> np.ndarray:
        """Memoized per-entry source-node ids of one CSR flavor."""
        rid = self._row_ids.get(kind)
        if rid is None:
            assert self._slice is not None
            rid = self._slice.row_ids(kind)
            self._row_ids[kind] = rid
        return rid

    def _scatter_rows(self, kind: str) -> np.ndarray:
        """Packed ``(n, words)`` rows from one CSR flavor.

        Reuses the columnar group's shared row table when it exists
        (zero-copy view); otherwise one ``bitwise_or.at`` scatter over
        the slice arrays.
        """
        sl = self._slice
        assert sl is not None
        rows = sl.rows(kind)
        if rows is not None and rows.shape[1] == self.words:
            return rows
        table = np.zeros((self.n, self.words), dtype=np.uint64)
        cols = sl.indices(kind)
        np.bitwise_or.at(
            table,
            (self._slice_row_ids(kind), cols >> np.int64(6)),
            np.uint64(1) << (cols & np.int64(63)).astype(np.uint64),
        )
        return table

    def _build_rows(self) -> None:
        if self._slice is not None:
            self._all_rows = self._scatter_rows(KIND_ALL)
            if self.directed:
                self._out_rows = self._scatter_rows(KIND_OUT)
                self._in_rows = self._scatter_rows(KIND_IN)
            return
        g = self.graph
        W = self.words
        all_rows = np.zeros((self.n, W), dtype=np.uint64)
        if self.directed:
            out_rows = np.zeros((self.n, W), dtype=np.uint64)
            in_rows = np.zeros((self.n, W), dtype=np.uint64)
            for (u, v) in g.edge_types:
                out_rows[u, v >> 6] |= np.uint64(1 << (v & 63))
                in_rows[v, u >> 6] |= np.uint64(1 << (u & 63))
                all_rows[u, v >> 6] |= np.uint64(1 << (v & 63))
                all_rows[v, u >> 6] |= np.uint64(1 << (u & 63))
            self._out_rows = out_rows
            self._in_rows = in_rows
        else:
            for (u, v) in g.edge_types:
                all_rows[u, v >> 6] |= np.uint64(1 << (v & 63))
                all_rows[v, u >> 6] |= np.uint64(1 << (u & 63))
        self._all_rows = all_rows

    def all_row(self, v: int) -> np.ndarray:
        """Bitset of ``v``'s neighbors ignoring direction."""
        if self._all_rows is not None:
            return self._all_rows[v]
        row = self._lazy_all.get(v)
        if row is None:
            row = bitset.from_indices(self.graph.all_neighbors(v), self.n)
            self._lazy_all[v] = row
        return row

    def out_row(self, v: int) -> np.ndarray:
        """Bitset of ``{w : v -> w}`` (directed hosts only)."""
        if self._out_rows is not None:
            return self._out_rows[v]
        row = self._lazy_out.get(v)
        if row is None:
            row = bitset.from_indices(self.graph.neighbors(v), self.n)
            self._lazy_out[v] = row
        return row

    def in_row(self, v: int) -> np.ndarray:
        """Bitset of ``{w : w -> v}`` (directed hosts only)."""
        if self._in_rows is not None:
            return self._in_rows[v]
        row = self._lazy_in.get(v)
        if row is None:
            row = bitset.from_indices(self.graph.in_neighbors(v), self.n)
            self._lazy_in[v] = row
        return row

    # ------------------------------------------------------------------
    # pruning tables
    # ------------------------------------------------------------------
    def type_counts(self) -> Dict[int, int]:
        """Host node count per node type (cheap match prefilter)."""
        if self._type_counts is None:
            types, counts = np.unique(self.node_types, return_counts=True)
            self._type_counts = {
                int(t): int(c) for t, c in zip(types, counts)
            }
        return self._type_counts

    def sig_counts(self, key: SigKey) -> np.ndarray:
        """Per-node count of neighbors matching one signature key.

        ``key = (direction, edge_type, neighbor_type)``; a host node is
        a viable image for a pattern node only when, for every key of
        the pattern node's neighborhood signature, the host count is at
        least the pattern count (injective neighbor mapping).
        """
        counts = self._sig_counts.get(key)
        if counts is None:
            direction, etype, ntype = key
            kind = self._typed_kind(direction)
            if self._slice is not None and kind is not None:
                # a view of the group-level table: one masked bincount
                # covers every graph in the label group at once
                counts = self._slice.sig_counts(kind, etype, ntype)
                self._sig_counts[key] = counts
                return counts
            counts = np.zeros(self.n, dtype=np.int64)
            for (u, v), t in self.graph.edge_types.items():
                if t != etype:
                    continue
                if direction == "":  # undirected: count both endpoints
                    if self.node_types[v] == ntype:
                        counts[u] += 1
                    if self.node_types[u] == ntype:
                        counts[v] += 1
                elif direction == "o":  # u -> v seen from u
                    if self.node_types[v] == ntype:
                        counts[u] += 1
                else:  # "i": u -> v seen from v
                    if self.node_types[u] == ntype:
                        counts[v] += 1
            self._sig_counts[key] = counts
        return counts

    def _typed_kind(self, direction: str) -> Optional[str]:
        """CSR flavor carrying reliable edge types for one direction.

        ``None`` when the slice cannot answer the key bit-identically:
        the undirected key on a directed host (the deduplicated union
        drops types) and directional keys on an undirected host (the
        reference counts canonical orientations only there) both fall
        back to the per-edge loop.
        """
        if direction == "":
            return KIND_ALL if not self.directed else None
        if not self.directed:
            return None
        return KIND_OUT if direction == "o" else KIND_IN

    def typed_row_table(
        self, direction: str, etype: int
    ) -> Optional[np.ndarray]:
        """Packed rows restricted to edges of one type, or ``None``.

        Row ``v`` holds the neighbors of ``v`` (in ``direction``)
        joined by an edge of type ``etype`` — ANDing a candidate mask
        with one such row applies the edge-type constraint to the whole
        candidate frontier at once. Only available on eager contexts
        built from a fresh columnar slice whose flavor carries types
        (see :meth:`_typed_kind`); memoized per ``(direction, etype)``.
        """
        key = (direction, etype)
        table = self._typed_rows.get(key)
        if table is not None:
            return table
        kind = self._typed_kind(direction)
        if kind is None or self._slice is None or self._all_rows is None:
            return None
        sel = self._slice.etypes(kind) == etype
        cols = self._slice.indices(kind)[sel]
        table = np.zeros((self.n, self.words), dtype=np.uint64)
        np.bitwise_or.at(
            table,
            (self._slice_row_ids(kind)[sel], cols >> np.int64(6)),
            np.uint64(1) << (cols & np.int64(63)).astype(np.uint64),
        )
        self._typed_rows[key] = table
        return table

    def compat_mask(self, plan: "MatchPlan", pos: int) -> np.ndarray:
        """Packed candidate mask for one plan position.

        Type equality, degree lower bound, and neighborhood-signature
        domination — all the host-only pruning rules, vectorized over
        the whole host then packed to words.
        """
        ok = self.node_types == plan.types[pos]
        if ok.any():
            ok &= self.degrees >= plan.degrees[pos]
        for key, need in plan.sigs[pos]:
            if not ok.any():
                break
            ok &= self.sig_counts(key) >= need
        return bitset.from_bool(ok)

    def compat_masks(self, plan: "MatchPlan") -> List[np.ndarray]:
        """All per-position candidate masks for one plan, memoized.

        Keyed by the plan's pattern content digest — the masks depend
        only on host content (this context) and pattern content, so
        repeated matches of the same pattern against this host skip
        the whole mask derivation. Callers must treat the returned
        arrays as read-only.
        """
        key = plan.plan_key()
        masks = self._compat_cache.get(key)
        if masks is None:
            masks = [
                self.compat_mask(plan, i) for i in range(len(plan.order))
            ]
            self._compat_cache[key] = masks
        return masks

    # ------------------------------------------------------------------
    # single-word tables (hosts of <= 64 nodes)
    # ------------------------------------------------------------------
    def int_rows(self, kind: str) -> Optional[List[int]]:
        """Adjacency rows as plain Python ints, or ``None``.

        Only single-word eager hosts qualify; the int form lets the
        matcher's inner loop run on machine-word ``&``/``~`` instead
        of per-candidate numpy calls, which is what makes the fast
        backend win on the small hosts the old ``SMALL_HOST_NODES``
        threshold used to delegate to the reference matcher.
        """
        if self.words != 1:
            return None
        out = self._int_cache.get(kind)
        if out is None:
            rows = {
                "all": self._all_rows,
                "out": self._out_rows,
                "in": self._in_rows,
            }[kind]
            if rows is None:
                return None
            out = rows[:, 0].tolist()
            self._int_cache[kind] = out
        return out

    def int_typed_rows(self, direction: str, etype: int) -> Optional[List[int]]:
        """One typed row table as Python ints (single-word hosts)."""
        if self.words != 1:
            return None
        key = ("typed", direction, etype)
        out = self._int_cache.get(key)
        if out is None:
            table = self.typed_row_table(direction, etype)
            if table is None:
                return None
            out = table[:, 0].tolist()
            self._int_cache[key] = out
        return out

    def int_compat(self, plan: "MatchPlan") -> Optional[List[int]]:
        """Per-position candidate masks as Python ints, memoized."""
        if self.words != 1:
            return None
        key = ("compat", plan.plan_key())
        out = self._int_cache.get(key)
        if out is None:
            out = [int(m[0]) for m in self.compat_masks(plan)]
            self._int_cache[key] = out
        return out


class MatchPlan:
    """Precomputed matching schedule for one pattern.

    Mirrors exactly what the reference backtracking derives on the fly:
    the matching order, and per position the (non-)adjacency and
    edge-type constraints against previously mapped positions. Adds the
    pruning tables (degree bounds, neighborhood type signatures) the
    fast backend applies host-side.
    """

    __slots__ = (
        "pattern",
        "order",
        "types",
        "degrees",
        "sigs",
        "adj",
        "nonadj",
        "dir_cons",
        "type_needs",
        "_key",
    )

    def __init__(self, pattern: Pattern) -> None:
        self.pattern = pattern
        self._key: Optional[str] = None
        p = pattern.graph
        order = matching_order(p)
        self.order = order
        k = len(order)
        self.types = [p.node_type(v) for v in order]
        self.degrees = [p.degree(v) for v in order]

        # neighborhood signatures per position
        self.sigs: List[List[Tuple[SigKey, int]]] = []
        for v in order:
            need: Dict[SigKey, int] = {}
            if p.directed:
                for w in p.neighbors(v):
                    key = ("o", p.edge_type(v, w), p.node_type(w))
                    need[key] = need.get(key, 0) + 1
                for w in p.in_neighbors(v):
                    key = ("i", p.edge_type(w, v), p.node_type(w))
                    need[key] = need.get(key, 0) + 1
            else:
                for w in p.neighbors(v):
                    key = ("", p.edge_type(v, w), p.node_type(w))
                    need[key] = need.get(key, 0) + 1
            self.sigs.append(sorted(need.items()))

        # per-position constraints against previously mapped positions
        pos_of = {v: i for i, v in enumerate(order)}
        #: undirected: (prev position, edge type) for pattern edges
        self.adj: List[List[Tuple[int, int]]] = [[] for _ in range(k)]
        #: undirected: prev positions with no pattern edge
        self.nonadj: List[List[int]] = [[] for _ in range(k)]
        #: directed: (prev position, fwd edge type or None, bwd edge
        #: type or None) where fwd is ``order[i] -> order[j]``
        self.dir_cons: List[
            List[Tuple[int, Optional[int], Optional[int]]]
        ] = [[] for _ in range(k)]
        for i, pv in enumerate(order):
            for j in range(i):
                qv = order[j]
                if p.directed:
                    fwd = (
                        p.edge_type(pv, qv) if qv in p.neighbors(pv) else None
                    )
                    bwd = (
                        p.edge_type(qv, pv) if pv in p.neighbors(qv) else None
                    )
                    self.dir_cons[i].append((j, fwd, bwd))
                else:
                    if p.has_edge(pv, qv):
                        self.adj[i].append((j, p.edge_type(pv, qv)))
                    else:
                        self.nonadj[i].append(j)

        #: node count needed per type (cheap host prefilter)
        needs: Dict[int, int] = {}
        for t in self.types:
            needs[t] = needs.get(t, 0) + 1
        self.type_needs = needs

    def plan_key(self) -> str:
        """Pattern content digest — keys per-host mask caches."""
        if self._key is None:
            self._key = self.pattern.graph.content_key()
        return self._key

    def host_can_match(self, ctx: MatchContext) -> bool:
        """Cheap prefilter: does the host have enough nodes per type?"""
        if len(self.order) > ctx.n:
            return False
        counts = ctx.type_counts()
        return all(
            counts.get(t, 0) >= need for t, need in self.type_needs.items()
        )


__all__ = [
    "MatchContext",
    "MatchPlan",
    "SigKey",
    "graph_content_key",
    "matching_order",
]
