"""Node-induced subgraph isomorphism (§2.1, "Graph Pattern Matching").

A pattern ``P`` matches a host graph ``G`` through an injective mapping
``h`` such that (1) node types agree, (2) every pattern edge maps to a
host edge with the same type, and (3) — *induced* semantics — every host
edge between mapped nodes corresponds to a pattern edge. This is the
matching relation the paper fixes for pattern coverage, so a pattern
like a bare ring will not match a ring-with-chord.

Two backends implement the search, selected per call or by the process
default (:func:`set_default_backend`, mirrored by
``GvexConfig.matching_backend``):

* ``"reference"`` — the seed VF2-style backtracking: candidates from
  the neighborhood of a mapped image, feasibility via per-pair
  dict/set probes. Kept verbatim as the parity oracle.
* ``"fast"`` (default) — bitset VF2 over a precomputed
  :class:`~repro.matching.context.MatchContext`: feasibility is a few
  word-wise ANDs over packed adjacency rows, with degree and
  neighborhood-type-signature pruning cutting the candidate tree.

Both backends emit matchings in the **same deterministic order** (host
candidates ascending at every depth), so callers that consume mapping
streams, truncate at ``limit``, or cap coverage enumeration get
bit-identical results either way (``tests/test_matching_parity.py``).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

import numpy as np

from repro.config import MATCH_FAST, MATCH_REFERENCE, MATCHING_BACKENDS
from repro.exceptions import MatchingError
from repro.graphs.graph import Graph
from repro.graphs.pattern import Pattern
from repro.matching import bitset
from repro.matching.context import MatchContext, MatchPlan, matching_order

Mapping = Dict[int, int]

#: process-wide default backend; ``GvexConfig.matching_backend``
#: overrides it per algorithm run
_DEFAULT_BACKEND = MATCH_FAST


def get_default_backend() -> str:
    """The process-wide matching backend name."""
    return _DEFAULT_BACKEND


def set_default_backend(backend: str) -> str:
    """Set the process-wide backend; returns the previous one."""
    global _DEFAULT_BACKEND
    previous = _DEFAULT_BACKEND
    _DEFAULT_BACKEND = resolve_backend(backend)
    return previous


def resolve_backend(backend: Optional[str]) -> str:
    """Validate ``backend``, falling back to the process default."""
    if backend is None:
        return _DEFAULT_BACKEND
    if backend not in MATCHING_BACKENDS:
        raise MatchingError(
            f"matching backend must be one of {MATCHING_BACKENDS}, "
            f"got {backend!r}"
        )
    return backend


def find_isomorphisms(
    pattern: Pattern,
    graph: Graph,
    limit: Optional[int] = None,
    *,
    backend: Optional[str] = None,
    context: Optional[MatchContext] = None,
    plan: Optional[MatchPlan] = None,
) -> Iterator[Mapping]:
    """Yield matchings ``{pattern node -> host node}`` up to ``limit``.

    Matches are enumerated deterministically (ascending host candidate
    order at every depth), identically for both backends. ``context``
    and ``plan`` let batched callers (``pmatch``, the plan cache) share
    host/pattern precomputation; they are fast-backend carriers and are
    ignored by the reference backend.
    """
    if resolve_backend(backend) == MATCH_REFERENCE:
        return _find_isomorphisms_reference(pattern, graph, limit)
    return _find_isomorphisms_fast(
        pattern, graph, limit, context=context, plan=plan
    )


# ----------------------------------------------------------------------
# reference backend (the seed implementation, kept as the parity oracle)
# ----------------------------------------------------------------------
def _find_isomorphisms_reference(
    pattern: Pattern,
    graph: Graph,
    limit: Optional[int] = None,
) -> Iterator[Mapping]:
    if pattern.graph.directed != graph.directed:
        return
    if limit is not None and limit <= 0:
        return
    p = pattern.graph
    if p.n_nodes > graph.n_nodes:
        return

    order = _matching_order(p)
    # pre-bucket host nodes by type for the root
    count = 0
    mapping: Mapping = {}
    used: Set[int] = set()

    def candidates(pos: int) -> Iterator[int]:
        pv = order[pos]
        anchor = _mapped_neighbor(p, pv, mapping)
        if anchor is None:
            for hv in graph.nodes():
                yield hv
        else:
            for hv in sorted(graph.all_neighbors(mapping[anchor])):
                yield hv

    def feasible(pv: int, hv: int) -> bool:
        if hv in used:
            return False
        if graph.node_type(hv) != p.node_type(pv):
            return False
        # check edges against every already mapped pattern node
        for qv, hq in mapping.items():
            p_fwd = p.has_edge(pv, qv) if not p.directed else (qv in p.neighbors(pv))
            g_fwd = (
                graph.has_edge(hv, hq)
                if not graph.directed
                else (hq in graph.neighbors(hv))
            )
            if p.directed:
                p_bwd = pv in p.neighbors(qv)
                g_bwd = hv in graph.neighbors(hq)
                if p_fwd != g_fwd or p_bwd != g_bwd:
                    return False
                if p_fwd and p.edge_type(pv, qv) != graph.edge_type(hv, hq):
                    return False
                if p_bwd and p.edge_type(qv, pv) != graph.edge_type(hq, hv):
                    return False
            else:
                if p_fwd != g_fwd:
                    return False
                if p_fwd and p.edge_type(pv, qv) != graph.edge_type(hv, hq):
                    return False
        return True

    def backtrack(pos: int) -> Iterator[Mapping]:
        nonlocal count
        if pos == len(order):
            count += 1
            yield dict(mapping)
            return
        pv = order[pos]
        for hv in candidates(pos):
            if limit is not None and count >= limit:
                return
            if feasible(pv, hv):
                mapping[pv] = hv
                used.add(hv)
                yield from backtrack(pos + 1)
                del mapping[pv]
                used.discard(hv)

    yield from backtrack(0)


# ----------------------------------------------------------------------
# fast backend: bitset VF2 over a host MatchContext
# ----------------------------------------------------------------------
def _single_word_state(ctx: MatchContext, mp: MatchPlan):
    """Int tables for the single-word search, memoized on the context.

    Per position a list of ``(prev_pos, row_table, invert)`` ops:
    ``mask &= table[image]`` (or its complement) applies one edge /
    non-edge / edge-type constraint to the whole candidate frontier.
    ``None`` when the context cannot serve typed int rows (lazy
    contexts) — the caller falls back to the generic word-array path.
    """
    key = ("sw", mp.plan_key())
    state = ctx._int_cache.get(key)
    if state is not None:
        return None if state == "n/a" else state
    compat = ctx.int_compat(mp)
    ops: List[List[Tuple[int, List[int], bool]]] = []
    ok = compat is not None
    if ok and ctx.directed:
        in_rows = ctx.int_rows("in")
        out_rows = ctx.int_rows("out")
        ok = in_rows is not None and out_rows is not None
        for cons in mp.dir_cons if ok else ():
            pos_ops: List[Tuple[int, List[int], bool]] = []
            for j, fwd, bwd in cons:
                # hv -> hq of the pattern's type iff pv -> qv
                if fwd is not None:
                    ftbl = ctx.int_typed_rows("i", fwd)
                    ok = ftbl is not None
                    if not ok:
                        break
                    pos_ops.append((j, ftbl, False))
                else:
                    pos_ops.append((j, in_rows, True))
                # hq -> hv of the pattern's type iff qv -> pv
                if bwd is not None:
                    btbl = ctx.int_typed_rows("o", bwd)
                    ok = btbl is not None
                    if not ok:
                        break
                    pos_ops.append((j, btbl, False))
                else:
                    pos_ops.append((j, out_rows, True))
            if not ok:
                break
            ops.append(pos_ops)
    elif ok:
        all_rows = ctx.int_rows("all")
        ok = all_rows is not None
        for adj, nonadj in zip(mp.adj, mp.nonadj) if ok else ():
            pos_ops = []
            for j, etype in adj:
                tbl = ctx.int_typed_rows("", etype)
                ok = tbl is not None
                if not ok:
                    break
                pos_ops.append((j, tbl, False))
            if not ok:
                break
            pos_ops.extend((j, all_rows, True) for j in nonadj)
            ops.append(pos_ops)
    if not ok:
        ctx._int_cache[key] = "n/a"
        return None
    state = (compat, ops)
    ctx._int_cache[key] = state
    return state


def _single_word_search(
    mp: MatchPlan, state, limit: Optional[int]
) -> Iterator[Mapping]:
    """Backtracking over Python machine-word ints (<= 64-node hosts).

    Bit extraction ascends, so the emitted matchings are exactly the
    reference (and generic fast) enumeration sequence.
    """
    compat, ops = state
    order = mp.order
    k = len(order)
    images = [0] * k
    used = 0
    count = 0

    def backtrack(pos: int) -> Iterator[Mapping]:
        nonlocal used, count
        if pos == k:
            count += 1
            yield {order[i]: images[i] for i in range(k)}
            return
        mask = compat[pos] & ~used
        for j, tbl, invert in ops[pos]:
            row = tbl[images[j]]
            mask &= ~row if invert else row
        while mask:
            if limit is not None and count >= limit:
                return
            low = mask & -mask
            mask ^= low
            images[pos] = low.bit_length() - 1
            used |= low
            yield from backtrack(pos + 1)
            used ^= low

    yield from backtrack(0)


def _find_isomorphisms_fast(
    pattern: Pattern,
    graph: Graph,
    limit: Optional[int] = None,
    context: Optional[MatchContext] = None,
    plan: Optional[MatchPlan] = None,
) -> Iterator[Mapping]:
    if pattern.graph.directed != graph.directed:
        return
    if limit is not None and limit <= 0:
        return
    if pattern.graph.n_nodes > graph.n_nodes:
        return
    if context is None or plan is None:
        # ad-hoc call: share host contexts and per-content plans through
        # the process-wide cache (deferred import; plan_cache imports
        # this module). exact_plan never canonicalizes, so the calls
        # canonicalization itself makes land here without recursing.
        from repro.matching.plan_cache import PLAN_CACHE

        if context is None:
            context = PLAN_CACHE.context(graph)[0]
        if plan is None:
            plan = PLAN_CACHE.exact_plan(pattern)

    ctx = context
    mp = plan
    if not mp.host_can_match(ctx):
        return
    if ctx.words == 1:
        # single-word host (<= 64 nodes): machine-word ints beat numpy
        # call overhead by an order of magnitude at this size
        state = _single_word_state(ctx, mp)
        if state is not None:
            yield from _single_word_search(mp, state, limit)
            return
    k = len(mp.order)
    compat = ctx.compat_masks(mp)
    edge_types = graph.edge_types
    directed = graph.directed
    used = bitset.zeros(ctx.n)
    images: List[int] = [0] * k
    count = 0
    scratch = np.empty_like(used)

    # Per-position typed constraint rows: ANDing the typed row of a
    # mapped image applies the edge-existence *and* edge-type
    # constraint to the whole candidate frontier in one word op. The
    # typed tables drop exactly the candidates the per-candidate
    # `edge_types_ok` probe would reject, so the enumeration sequence
    # is unchanged. Lazy-row contexts (hosts above the row-table
    # threshold) have no typed tables and keep the dict-probe path.
    typed_ok = True
    typed_adj: List[List[Tuple[int, np.ndarray]]] = []
    typed_dir: List[
        List[Tuple[int, Optional[np.ndarray], Optional[np.ndarray]]]
    ] = []
    if directed:
        for cons in mp.dir_cons:
            rows_d: List[
                Tuple[int, Optional[np.ndarray], Optional[np.ndarray]]
            ] = []
            for j, fwd, bwd in cons:
                ftbl = (
                    ctx.typed_row_table("i", fwd) if fwd is not None else None
                )
                btbl = (
                    ctx.typed_row_table("o", bwd) if bwd is not None else None
                )
                if (fwd is not None and ftbl is None) or (
                    bwd is not None and btbl is None
                ):
                    typed_ok = False
                    break
                rows_d.append((j, ftbl, btbl))
            if not typed_ok:
                break
            typed_dir.append(rows_d)
    else:
        for cons in mp.adj:
            rows_u: List[Tuple[int, np.ndarray]] = []
            for j, etype in cons:
                tbl = ctx.typed_row_table("", etype)
                if tbl is None:
                    typed_ok = False
                    break
                rows_u.append((j, tbl))
            if not typed_ok:
                break
            typed_adj.append(rows_u)

    def candidate_mask(pos: int) -> np.ndarray:
        mask = compat[pos].copy()
        if directed:
            if typed_ok:
                for j, ftbl, btbl in typed_dir[pos]:
                    hq = images[j]
                    # hv -> hq of the pattern's type iff pv -> qv
                    if ftbl is not None:
                        np.bitwise_and(mask, ftbl[hq], out=mask)
                    else:
                        np.bitwise_and(
                            mask,
                            np.bitwise_not(ctx.in_row(hq), out=scratch),
                            out=mask,
                        )
                    # hq -> hv of the pattern's type iff qv -> pv
                    if btbl is not None:
                        np.bitwise_and(mask, btbl[hq], out=mask)
                    else:
                        np.bitwise_and(
                            mask,
                            np.bitwise_not(ctx.out_row(hq), out=scratch),
                            out=mask,
                        )
            else:
                for j, fwd, bwd in mp.dir_cons[pos]:
                    hq = images[j]
                    # hv -> hq required iff the pattern has pv -> qv
                    row = ctx.in_row(hq)
                    if fwd is not None:
                        np.bitwise_and(mask, row, out=mask)
                    else:
                        np.bitwise_and(
                            mask, np.bitwise_not(row, out=scratch), out=mask
                        )
                    # hq -> hv required iff the pattern has qv -> pv
                    row = ctx.out_row(hq)
                    if bwd is not None:
                        np.bitwise_and(mask, row, out=mask)
                    else:
                        np.bitwise_and(
                            mask, np.bitwise_not(row, out=scratch), out=mask
                        )
        else:
            if typed_ok:
                for j, tbl in typed_adj[pos]:
                    np.bitwise_and(mask, tbl[images[j]], out=mask)
            else:
                for j, _ in mp.adj[pos]:
                    np.bitwise_and(mask, ctx.all_row(images[j]), out=mask)
            for j in mp.nonadj[pos]:
                np.bitwise_and(
                    mask,
                    np.bitwise_not(ctx.all_row(images[j]), out=scratch),
                    out=mask,
                )
        np.bitwise_and(mask, np.bitwise_not(used, out=scratch), out=mask)
        return mask

    def edge_types_ok(pos: int, hv: int) -> bool:
        if directed:
            for j, fwd, bwd in mp.dir_cons[pos]:
                hq = images[j]
                if fwd is not None and edge_types[(hv, hq)] != fwd:
                    return False
                if bwd is not None and edge_types[(hq, hv)] != bwd:
                    return False
        else:
            for j, etype in mp.adj[pos]:
                hq = images[j]
                key = (hv, hq) if hv <= hq else (hq, hv)
                if edge_types[key] != etype:
                    return False
        return True

    def backtrack(pos: int) -> Iterator[Mapping]:
        nonlocal count
        if pos == k:
            count += 1
            yield {mp.order[i]: images[i] for i in range(k)}
            return
        # one vectorized extraction of the whole (ascending) frontier
        for hv in bitset.bits_of(candidate_mask(pos)).tolist():
            if limit is not None and count >= limit:
                return
            if not typed_ok and not edge_types_ok(pos, hv):
                continue
            images[pos] = hv
            bitset.set_bit(used, hv)
            yield from backtrack(pos + 1)
            bitset.clear_bit(used, hv)

    yield from backtrack(0)


#: reference order derivation, shared with the fast plan builder
_matching_order = matching_order


def _mapped_neighbor(p: Graph, pv: int, mapping: Mapping) -> Optional[int]:
    for w in p.all_neighbors(pv):
        if w in mapping:
            return w
    return None


def first_isomorphism(
    pattern: Pattern, graph: Graph, backend: Optional[str] = None
) -> Optional[Mapping]:
    """First matching or ``None``."""
    for m in find_isomorphisms(pattern, graph, limit=1, backend=backend):
        return m
    return None


def is_subgraph_isomorphic(
    pattern: Pattern, graph: Graph, backend: Optional[str] = None
) -> bool:
    """Whether the pattern occurs in the host graph (induced semantics)."""
    return first_isomorphism(pattern, graph, backend=backend) is not None


def are_isomorphic(a: Pattern, b: Pattern, backend: Optional[str] = None) -> bool:
    """Exact isomorphism between two patterns.

    Same node/edge counts plus an induced-subgraph matching of equal
    size is exactly graph isomorphism.
    """
    if a.n_nodes != b.n_nodes or a.n_edges != b.n_edges:
        return False
    return first_isomorphism(a, b.graph, backend=backend) is not None


__all__ = [
    "find_isomorphisms",
    "first_isomorphism",
    "is_subgraph_isomorphic",
    "are_isomorphic",
    "get_default_backend",
    "set_default_backend",
    "resolve_backend",
]
