"""Node-induced subgraph isomorphism (§2.1, "Graph Pattern Matching").

A pattern ``P`` matches a host graph ``G`` through an injective mapping
``h`` such that (1) node types agree, (2) every pattern edge maps to a
host edge with the same type, and (3) — *induced* semantics — every host
edge between mapped nodes corresponds to a pattern edge. This is the
matching relation the paper fixes for pattern coverage, so a pattern
like a bare ring will not match a ring-with-chord.

The matcher is a VF2-style backtracking search with candidate ordering:
pattern nodes are visited so each new node is adjacent to an already
mapped one (patterns are connected), and its candidates are drawn from
the neighborhood of the mapped image rather than all host nodes.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.exceptions import MatchingError
from repro.graphs.graph import Graph
from repro.graphs.pattern import Pattern

Mapping = Dict[int, int]


def find_isomorphisms(
    pattern: Pattern,
    graph: Graph,
    limit: Optional[int] = None,
) -> Iterator[Mapping]:
    """Yield matchings ``{pattern node -> host node}`` up to ``limit``.

    Matches are enumerated deterministically (lexicographic candidate
    order), so results are stable across runs.
    """
    if pattern.graph.directed != graph.directed:
        return
    if limit is not None and limit <= 0:
        return
    p = pattern.graph
    if p.n_nodes > graph.n_nodes:
        return

    order = _matching_order(p)
    # pre-bucket host nodes by type for the root
    count = 0
    mapping: Mapping = {}
    used: Set[int] = set()

    def candidates(pos: int) -> Iterator[int]:
        pv = order[pos]
        anchor = _mapped_neighbor(p, pv, mapping)
        if anchor is None:
            for hv in graph.nodes():
                yield hv
        else:
            for hv in sorted(graph.all_neighbors(mapping[anchor])):
                yield hv

    def feasible(pv: int, hv: int) -> bool:
        if hv in used:
            return False
        if graph.node_type(hv) != p.node_type(pv):
            return False
        # check edges against every already mapped pattern node
        for qv, hq in mapping.items():
            p_fwd = p.has_edge(pv, qv) if not p.directed else (qv in p.neighbors(pv))
            g_fwd = (
                graph.has_edge(hv, hq)
                if not graph.directed
                else (hq in graph.neighbors(hv))
            )
            if p.directed:
                p_bwd = pv in p.neighbors(qv)
                g_bwd = hv in graph.neighbors(hq)
                if p_fwd != g_fwd or p_bwd != g_bwd:
                    return False
                if p_fwd and p.edge_type(pv, qv) != graph.edge_type(hv, hq):
                    return False
                if p_bwd and p.edge_type(qv, pv) != graph.edge_type(hq, hv):
                    return False
            else:
                if p_fwd != g_fwd:
                    return False
                if p_fwd and p.edge_type(pv, qv) != graph.edge_type(hv, hq):
                    return False
        return True

    def backtrack(pos: int) -> Iterator[Mapping]:
        nonlocal count
        if pos == len(order):
            count += 1
            yield dict(mapping)
            return
        pv = order[pos]
        for hv in candidates(pos):
            if limit is not None and count >= limit:
                return
            if feasible(pv, hv):
                mapping[pv] = hv
                used.add(hv)
                yield from backtrack(pos + 1)
                del mapping[pv]
                used.discard(hv)

    yield from backtrack(0)


def _matching_order(p: Graph) -> List[int]:
    """Visit order where each node (after the first) touches a prior one."""
    if p.n_nodes == 0:
        return []
    # root at the highest-degree node: fewest root candidates on average
    root = max(p.nodes(), key=lambda v: (p.degree(v), -v))
    order = [root]
    seen = {root}
    frontier: List[int] = sorted(p.all_neighbors(root))
    while frontier:
        nxt = None
        best = (-1, 0)
        for v in frontier:
            mapped_deg = sum(1 for w in p.all_neighbors(v) if w in seen)
            key = (mapped_deg, p.degree(v))
            if key > best:
                best = key
                nxt = v
        assert nxt is not None
        order.append(nxt)
        seen.add(nxt)
        frontier = sorted(
            {w for v in seen for w in p.all_neighbors(v) if w not in seen}
        )
    if len(order) != p.n_nodes:
        raise MatchingError("pattern is disconnected")  # guarded by Pattern
    return order


def _mapped_neighbor(p: Graph, pv: int, mapping: Mapping) -> Optional[int]:
    for w in p.all_neighbors(pv):
        if w in mapping:
            return w
    return None


def first_isomorphism(pattern: Pattern, graph: Graph) -> Optional[Mapping]:
    """First matching or ``None``."""
    for m in find_isomorphisms(pattern, graph, limit=1):
        return m
    return None


def is_subgraph_isomorphic(pattern: Pattern, graph: Graph) -> bool:
    """Whether the pattern occurs in the host graph (induced semantics)."""
    return first_isomorphism(pattern, graph) is not None


def are_isomorphic(a: Pattern, b: Pattern) -> bool:
    """Exact isomorphism between two patterns.

    Same node/edge counts plus an induced-subgraph matching of equal
    size is exactly graph isomorphism.
    """
    if a.n_nodes != b.n_nodes or a.n_edges != b.n_edges:
        return False
    return first_isomorphism(a, b.graph) is not None


__all__ = [
    "find_isomorphisms",
    "first_isomorphism",
    "is_subgraph_isomorphic",
    "are_isomorphic",
]
