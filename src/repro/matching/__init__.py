"""Matching substrate: induced subgraph isomorphism and pattern coverage.

Two backends (``GvexConfig.matching_backend``, process default
:func:`set_default_backend`): the ``"reference"`` pure-Python VF2 and
the ``"fast"`` bitset tier — per-host :class:`MatchContext`\\ s, a
process-wide :data:`PLAN_CACHE`, and database-batched :func:`pmatch`.
Both enumerate matchings in the same deterministic order; see
``docs/matching.md`` for the contract.
"""

from repro.matching.canonical import deduplicate_patterns, pattern_identity
from repro.matching.context import (
    MatchContext,
    MatchPlan,
    graph_content_key,
    matching_order,
)
from repro.matching.coverage import (
    CoverageIndex,
    PatternCoverage,
    covered_node_count,
    match_coverage,
    pmatch,
)
from repro.matching.incremental import IncrementalMatcher
from repro.matching.isomorphism import (
    are_isomorphic,
    find_isomorphisms,
    first_isomorphism,
    get_default_backend,
    is_subgraph_isomorphic,
    resolve_backend,
    set_default_backend,
)
from repro.matching.plan_cache import PLAN_CACHE, MatchPlanCache

__all__ = [
    "find_isomorphisms",
    "first_isomorphism",
    "is_subgraph_isomorphic",
    "are_isomorphic",
    "deduplicate_patterns",
    "pattern_identity",
    "CoverageIndex",
    "PatternCoverage",
    "match_coverage",
    "pmatch",
    "covered_node_count",
    "IncrementalMatcher",
    "MatchContext",
    "MatchPlan",
    "MatchPlanCache",
    "PLAN_CACHE",
    "graph_content_key",
    "matching_order",
    "get_default_backend",
    "set_default_backend",
    "resolve_backend",
]
