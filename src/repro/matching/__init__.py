"""Matching substrate: induced subgraph isomorphism and pattern coverage."""

from repro.matching.canonical import deduplicate_patterns, pattern_identity
from repro.matching.coverage import (
    CoverageIndex,
    PatternCoverage,
    covered_node_count,
    match_coverage,
)
from repro.matching.incremental import IncrementalMatcher
from repro.matching.isomorphism import (
    are_isomorphic,
    find_isomorphisms,
    first_isomorphism,
    is_subgraph_isomorphic,
)

__all__ = [
    "find_isomorphisms",
    "first_isomorphism",
    "is_subgraph_isomorphic",
    "are_isomorphic",
    "deduplicate_patterns",
    "pattern_identity",
    "CoverageIndex",
    "PatternCoverage",
    "match_coverage",
    "covered_node_count",
    "IncrementalMatcher",
]
