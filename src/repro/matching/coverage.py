"""Pattern coverage — the paper's ``PMatch`` primitive operator (§4).

Given patterns and host graphs (typically the explanation subgraphs of
one label group), computes which host nodes/edges are *covered*: a node
``v`` is covered by ``P`` when some matching maps a pattern node onto
``v`` (§2.1). Used to check constraint C1 (patterns cover all nodes of
``G_s``), C3 (proper coverage counts), and Psum's edge-loss weights.

Match enumeration is capped (``match_cap``) to bound worst-case cost on
pathological hosts; enumeration also stops early once every host node
is covered, which is the common case for the small explanation
subgraphs GVEX produces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.graphs.graph import Graph
from repro.graphs.pattern import Pattern
from repro.matching.canonical import pattern_identity
from repro.matching.isomorphism import find_isomorphisms

#: (host index, node id)
NodeRef = Tuple[int, int]
#: (host index, canonical edge key)
EdgeRef = Tuple[int, Tuple[int, int]]


@dataclass(frozen=True)
class PatternCoverage:
    """Host nodes and edges covered by one pattern."""

    nodes: FrozenSet[NodeRef]
    edges: FrozenSet[EdgeRef]

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def n_edges(self) -> int:
        return len(self.edges)


def match_coverage(
    pattern: Pattern, host: Graph, host_index: int = 0, match_cap: int = 10_000
) -> PatternCoverage:
    """Coverage of a single pattern over a single host graph."""
    covered_nodes: Set[NodeRef] = set()
    covered_edges: Set[EdgeRef] = set()
    p = pattern.graph
    n_host = host.n_nodes
    count = 0
    for mapping in find_isomorphisms(pattern, host):
        count += 1
        for hv in mapping.values():
            covered_nodes.add((host_index, hv))
        for (pu, pv) in p.edge_types:
            hu, hv = mapping[pu], mapping[pv]
            if not host.directed and hu > hv:
                hu, hv = hv, hu
            covered_edges.add((host_index, (hu, hv)))
        if count >= match_cap:
            break
        if len(covered_nodes) == n_host and len(covered_edges) == host.n_edges:
            break
    return PatternCoverage(frozenset(covered_nodes), frozenset(covered_edges))


class CoverageIndex:
    """Cached pattern coverage over a fixed set of host graphs.

    The Psum greedy queries the same patterns repeatedly; this index
    computes each pattern's coverage once (patterns are identified up to
    isomorphism, so structurally equal patterns share a cache entry).
    """

    def __init__(self, hosts: Sequence[Graph], match_cap: int = 10_000) -> None:
        self.hosts: List[Graph] = list(hosts)
        self.match_cap = match_cap
        self._cache: Dict[int, PatternCoverage] = {}
        self._identity: Dict[str, List[Pattern]] = {}

    # ------------------------------------------------------------------
    @property
    def all_nodes(self) -> FrozenSet[NodeRef]:
        return frozenset(
            (h, v) for h, g in enumerate(self.hosts) for v in g.nodes()
        )

    @property
    def all_edges(self) -> FrozenSet[EdgeRef]:
        refs: Set[EdgeRef] = set()
        for h, g in enumerate(self.hosts):
            for u, v, _ in g.edges():
                refs.add((h, (u, v)))
        return frozenset(refs)

    @property
    def n_nodes(self) -> int:
        return sum(g.n_nodes for g in self.hosts)

    @property
    def n_edges(self) -> int:
        return sum(g.n_edges for g in self.hosts)

    # ------------------------------------------------------------------
    def coverage(self, pattern: Pattern) -> PatternCoverage:
        """Coverage of ``pattern`` across all hosts (cached)."""
        canon = pattern_identity(pattern, self._identity)
        key = id(canon)
        if key not in self._cache:
            nodes: Set[NodeRef] = set()
            edges: Set[EdgeRef] = set()
            for h, host in enumerate(self.hosts):
                cov = match_coverage(canon, host, h, self.match_cap)
                nodes |= cov.nodes
                edges |= cov.edges
            self._cache[key] = PatternCoverage(frozenset(nodes), frozenset(edges))
        return self._cache[key]

    def covers_all_nodes(self, patterns: Iterable[Pattern]) -> bool:
        """Constraint C1: do the patterns cover every host node?"""
        covered: Set[NodeRef] = set()
        target = self.all_nodes
        for p in patterns:
            covered |= self.coverage(p).nodes
            if covered >= target:
                return True
        return covered >= target


def covered_node_count(patterns: Iterable[Pattern], hosts: Sequence[Graph]) -> int:
    """Total host nodes covered by a pattern set (for C3 checks)."""
    index = CoverageIndex(hosts)
    covered: Set[NodeRef] = set()
    for p in patterns:
        covered |= index.coverage(p).nodes
    return len(covered)


__all__ = [
    "PatternCoverage",
    "match_coverage",
    "CoverageIndex",
    "covered_node_count",
    "NodeRef",
    "EdgeRef",
]
