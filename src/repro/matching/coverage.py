"""Pattern coverage — the paper's ``PMatch`` primitive operator (§4).

Given patterns and host graphs (typically the explanation subgraphs of
one label group), computes which host nodes/edges are *covered*: a node
``v`` is covered by ``P`` when some matching maps a pattern node onto
``v`` (§2.1). Used to check constraint C1 (patterns cover all nodes of
``G_s``), C3 (proper coverage counts), and Psum's edge-loss weights.

Match enumeration is capped (``match_cap``) to bound worst-case cost on
pathological hosts; enumeration also stops early once every host node
is covered, which is the common case for the small explanation
subgraphs GVEX produces.

``PMatch`` is **database-batched**: :func:`pmatch` matches one pattern
against a whole host group in a single call, sharing the pattern's
matching order / signature tables across hosts and skipping hosts that
fail the type-count prefilter, with results drawn from (and fed into)
the process-wide :data:`~repro.matching.plan_cache.PLAN_CACHE` under
the fast backend. The ``"reference"`` backend reproduces the seed
implementation — per-host VF2, no cross-call caching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.config import MATCH_REFERENCE
from repro.graphs.graph import Graph
from repro.graphs.pattern import Pattern
from repro.matching.canonical import pattern_identity
from repro.matching.context import graph_content_key
from repro.matching.isomorphism import find_isomorphisms, resolve_backend
from repro.matching.plan_cache import PLAN_CACHE

#: (host index, node id)
NodeRef = Tuple[int, int]
#: (host index, canonical edge key)
EdgeRef = Tuple[int, Tuple[int, int]]


@dataclass(frozen=True)
class PatternCoverage:
    """Host nodes and edges covered by one pattern."""

    nodes: FrozenSet[NodeRef]
    edges: FrozenSet[EdgeRef]

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def n_edges(self) -> int:
        return len(self.edges)


def match_coverage(
    pattern: Pattern,
    host: Graph,
    host_index: int = 0,
    match_cap: int = 10_000,
    backend: Optional[str] = None,
    host_key: Optional[str] = None,
) -> PatternCoverage:
    """Coverage of a single pattern over a single host graph."""
    if resolve_backend(backend) != MATCH_REFERENCE:
        nodes, edges = PLAN_CACHE.coverage(
            pattern, host, match_cap, host_key=host_key
        )
        return PatternCoverage(
            frozenset((host_index, v) for v in nodes),
            frozenset((host_index, e) for e in edges),
        )
    covered_nodes: Set[NodeRef] = set()
    covered_edges: Set[EdgeRef] = set()
    p = pattern.graph
    n_host = host.n_nodes
    count = 0
    for mapping in find_isomorphisms(pattern, host, backend=MATCH_REFERENCE):
        count += 1
        for hv in mapping.values():
            covered_nodes.add((host_index, hv))
        for (pu, pv) in p.edge_types:
            hu, hv = mapping[pu], mapping[pv]
            if not host.directed and hu > hv:
                hu, hv = hv, hu
            covered_edges.add((host_index, (hu, hv)))
        if count >= match_cap:
            break
        if len(covered_nodes) == n_host and len(covered_edges) == host.n_edges:
            break
    return PatternCoverage(frozenset(covered_nodes), frozenset(covered_edges))


def pmatch(
    pattern: Pattern,
    hosts: Sequence[Graph],
    match_cap: int = 10_000,
    backend: Optional[str] = None,
    host_keys: Optional[Sequence[Optional[str]]] = None,
    columnar=None,
    indices: Optional[Sequence[int]] = None,
) -> List[PatternCoverage]:
    """Database-batched ``PMatch``: one pattern vs a whole host group.

    Under the fast backend the pattern's canonical identity, matching
    order, and signature tables resolve once and are shared across all
    hosts; each host's coverage comes from (or lands in) the
    process-wide plan cache, and hosts failing the type-count
    prefilter skip VF2 entirely. ``host_keys`` lets callers that
    already computed content keys (e.g. :class:`CoverageIndex`) avoid
    re-hashing; ``columnar`` (a ``ColumnarDatabase`` or lazy factory,
    with ``indices`` locating each host in it) routes cache-miss
    context builds through the group's shared CSR arrays. Results are
    per host, in host order, identical to per-host
    :func:`match_coverage` calls.
    """
    resolved = resolve_backend(backend)
    if resolved == MATCH_REFERENCE:
        return [
            match_coverage(pattern, host, h, match_cap, backend=resolved)
            for h, host in enumerate(hosts)
        ]
    local = PLAN_CACHE.coverage_many(
        pattern,
        hosts,
        match_cap,
        host_keys=host_keys,
        columnar=columnar,
        indices=indices,
    )
    return [
        PatternCoverage(
            frozenset((h, v) for v in nodes),
            frozenset((h, e) for e in edges),
        )
        for h, (nodes, edges) in enumerate(local)
    ]


class CoverageIndex:
    """Cached pattern coverage over a fixed set of host graphs.

    The Psum greedy queries the same patterns repeatedly; this index
    computes each pattern's coverage once (patterns are identified up to
    isomorphism, so structurally equal patterns share a cache entry).
    Under the fast backend the per-(pattern, host) work additionally
    flows through the process-wide plan cache, so a later index over
    the same hosts (``verify_view``, the query index) re-pays nothing.
    """

    def __init__(
        self,
        hosts: Sequence[Graph],
        match_cap: int = 10_000,
        backend: Optional[str] = None,
    ) -> None:
        self.hosts: List[Graph] = list(hosts)
        self.match_cap = match_cap
        self.backend = resolve_backend(backend)
        self._cache: Dict[Pattern, PatternCoverage] = {}
        self._identity: Dict[str, List[Pattern]] = {}
        self._host_keys: Optional[List[str]] = (
            None
            if self.backend == MATCH_REFERENCE
            else [graph_content_key(g) for g in self.hosts]
        )
        self._columnar = None

    def _host_columnar(self):
        """Lazy columnar mirror of the host group.

        Passed to ``pmatch`` as a factory, so the build only happens
        when some host context genuinely misses the plan cache (steady
        state serve traffic pays one memoized-attr read).
        """
        if self._columnar is None:
            from repro.graphs.columnar import ColumnarDatabase

            self._columnar = ColumnarDatabase.from_graphs(self.hosts)
        return self._columnar

    # ------------------------------------------------------------------
    @property
    def all_nodes(self) -> FrozenSet[NodeRef]:
        return frozenset(
            (h, v) for h, g in enumerate(self.hosts) for v in g.nodes()
        )

    @property
    def all_edges(self) -> FrozenSet[EdgeRef]:
        refs: Set[EdgeRef] = set()
        for h, g in enumerate(self.hosts):
            for u, v, _ in g.edges():
                refs.add((h, (u, v)))
        return frozenset(refs)

    @property
    def n_nodes(self) -> int:
        return sum(g.n_nodes for g in self.hosts)

    @property
    def n_edges(self) -> int:
        return sum(g.n_edges for g in self.hosts)

    # ------------------------------------------------------------------
    def coverage(self, pattern: Pattern) -> PatternCoverage:
        """Coverage of ``pattern`` across all hosts (cached, batched)."""
        canon = pattern_identity(pattern, self._identity, backend=self.backend)
        key = canon
        if key not in self._cache:
            per_host = pmatch(
                canon,
                self.hosts,
                self.match_cap,
                backend=self.backend,
                host_keys=self._host_keys,
                columnar=self._host_columnar,
            )
            nodes: Set[NodeRef] = set()
            edges: Set[EdgeRef] = set()
            for cov in per_host:
                nodes |= cov.nodes
                edges |= cov.edges
            self._cache[key] = PatternCoverage(frozenset(nodes), frozenset(edges))
        return self._cache[key]

    def covers_all_nodes(self, patterns: Iterable[Pattern]) -> bool:
        """Constraint C1: do the patterns cover every host node?"""
        covered: Set[NodeRef] = set()
        target = self.all_nodes
        for p in patterns:
            covered |= self.coverage(p).nodes
            if covered >= target:
                return True
        return covered >= target


def covered_node_count(
    patterns: Iterable[Pattern],
    hosts: Sequence[Graph],
    backend: Optional[str] = None,
) -> int:
    """Total host nodes covered by a pattern set (for C3 checks)."""
    index = CoverageIndex(hosts, backend=backend)
    covered: Set[NodeRef] = set()
    for p in patterns:
        covered |= index.coverage(p).nodes
    return len(covered)


__all__ = [
    "PatternCoverage",
    "match_coverage",
    "pmatch",
    "CoverageIndex",
    "covered_node_count",
    "NodeRef",
    "EdgeRef",
]
