"""Exact pattern deduplication.

Pattern WL keys (:meth:`repro.graphs.Pattern.key`) are cheap but only
*necessary* for isomorphism; this module buckets candidates by key and
resolves collisions with the exact matcher, giving a correct canonical
set of unique patterns. The ``backend`` parameters select the matcher
backend for collision resolution (see ``docs/matching.md``); both
backends agree on every pair, so canonical sets are backend-invariant.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.graphs.pattern import Pattern
from repro.matching.isomorphism import are_isomorphic


def deduplicate_patterns(
    patterns: Iterable[Pattern], backend: Optional[str] = None
) -> List[Pattern]:
    """Unique patterns up to isomorphism, preserving first-seen order."""
    buckets: Dict[str, List[Pattern]] = {}
    unique: List[Pattern] = []
    for p in patterns:
        bucket = buckets.setdefault(p.key(), [])
        if not any(are_isomorphic(p, q, backend=backend) for q in bucket):
            bucket.append(p)
            unique.append(p)
    return unique


def pattern_identity(
    pattern: Pattern,
    known: Dict[str, List[Pattern]],
    backend: Optional[str] = None,
) -> Pattern:
    """Return the canonical representative of ``pattern`` in ``known``.

    Registers the pattern if unseen. ``known`` maps WL key -> the
    distinct patterns sharing it.
    """
    bucket = known.setdefault(pattern.key(), [])
    for q in bucket:
        # content-identical graphs are isomorphic under the identity
        # mapping — the common case when serve paths re-create the
        # same pattern per request; the search runs only on genuine
        # relabellings
        if (
            q is pattern
            or q.graph.content_key() == pattern.graph.content_key()
            or are_isomorphic(pattern, q, backend=backend)
        ):
            return q
    bucket.append(pattern)
    return pattern


__all__ = ["deduplicate_patterns", "pattern_identity"]
