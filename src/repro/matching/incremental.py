"""Incremental pattern matching — the paper's ``IncPMatch`` operator (§5).

Maintains pattern coverage over a host graph that grows one node at a
time (StreamGVEX's node stream). The key observation: a *new* match
created by node ``v``'s arrival must contain ``v``, and since patterns
are connected with at most ``s`` nodes, all of its nodes lie within
``s - 1`` hops of ``v``. So each update only re-matches patterns inside
that neighborhood instead of the whole seen graph (the role the paper
delegates to streaming matchers like TurboFlux).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.graphs.graph import Graph
from repro.graphs.pattern import Pattern
from repro.matching.canonical import pattern_identity
from repro.matching.isomorphism import find_isomorphisms, resolve_backend
from repro.exceptions import ValidationError


class IncrementalMatcher:
    """Streaming coverage of registered patterns over a growing host.

    ``add_node`` appends a node (with edges to already-present nodes)
    to the internal host graph and updates every registered pattern's
    covered-node/edge sets by matching only in the new node's
    neighborhood.
    """

    def __init__(
        self,
        directed: bool = False,
        match_cap: int = 10_000,
        backend: Optional[str] = None,
    ) -> None:
        self.directed = directed
        self.match_cap = match_cap
        self.backend = resolve_backend(backend)
        self._types: List[int] = []
        self._edges: Dict[Tuple[int, int], int] = {}
        self._adj: List[Set[int]] = []
        self._patterns: List[Pattern] = []
        self._identity: Dict[str, List[Pattern]] = {}
        self._covered_nodes: Dict[Pattern, Set[int]] = {}
        self._covered_edges: Dict[Pattern, Set[Tuple[int, int]]] = {}

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self._types)

    def host_graph(self) -> Graph:
        """Snapshot of the seen host graph."""
        g = Graph(self._types, directed=self.directed)
        for (u, v), t in self._edges.items():
            g.add_edge(u, v, t)
        return g

    # ------------------------------------------------------------------
    def register(self, pattern: Pattern) -> Pattern:
        """Track a pattern; returns its canonical representative.

        Coverage for the already-seen host is computed immediately so
        registration order does not affect results.
        """
        canon = pattern_identity(pattern, self._identity, backend=self.backend)
        if canon not in self._covered_nodes:
            self._patterns.append(canon)
            self._covered_nodes[canon] = set()
            self._covered_edges[canon] = set()
            if self.n_nodes:
                self._match_into(canon, self.host_graph(), list(range(self.n_nodes)))
        return canon

    def add_node(
        self, node_type: int, edges: Sequence[Tuple[int, int]] = ()
    ) -> int:
        """Append a node; ``edges`` are ``(existing_node, edge_type)`` pairs.

        Returns the new node's id. Updates all registered patterns.
        """
        v = len(self._types)
        self._types.append(int(node_type))
        self._adj.append(set())
        for u, etype in edges:
            if not 0 <= u < v:
                raise ValidationError(f"edge endpoint {u} not yet in stream (v={v})")
            key = (u, v) if (self.directed or u <= v) else (v, u)
            # stream edges always point from an existing node to the new one
            self._edges[(u, v) if self.directed else key] = int(etype)
            self._adj[u].add(v)
            self._adj[v].add(u)
        if self._patterns:
            self._update_for_new_node(v)
        return v

    # ------------------------------------------------------------------
    def covered_nodes(self, pattern: Pattern) -> Set[int]:
        canon = pattern_identity(pattern, self._identity, backend=self.backend)
        return set(self._covered_nodes.get(canon, set()))

    def covered_edges(self, pattern: Pattern) -> Set[Tuple[int, int]]:
        canon = pattern_identity(pattern, self._identity, backend=self.backend)
        return set(self._covered_edges.get(canon, set()))

    def union_covered_nodes(self) -> Set[int]:
        out: Set[int] = set()
        for nodes in self._covered_nodes.values():
            out |= nodes
        return out

    # ------------------------------------------------------------------
    def _update_for_new_node(self, v: int) -> None:
        max_size = max(p.n_nodes for p in self._patterns)
        hood = self._neighborhood(v, max_size - 1)
        local = sorted(hood)
        remap = {old: new for new, old in enumerate(local)}
        sub = Graph([self._types[u] for u in local], directed=self.directed)
        for (a, b), t in self._edges.items():
            if a in remap and b in remap:
                sub.add_edge(remap[a], remap[b], t)
        for pattern in self._patterns:
            self._match_into(pattern, sub, local, must_include=remap[v])

    def _match_into(
        self,
        pattern: Pattern,
        host: Graph,
        local_to_global: Sequence[int],
        must_include: Optional[int] = None,
    ) -> None:
        nodes = self._covered_nodes[pattern]
        edges = self._covered_edges[pattern]
        count = 0
        for mapping in find_isomorphisms(pattern, host, backend=self.backend):
            count += 1
            if must_include is not None and must_include not in mapping.values():
                if count >= self.match_cap:
                    break
                continue
            for hv in mapping.values():
                nodes.add(local_to_global[hv])
            for (pu, pv) in pattern.graph.edge_types:
                gu = local_to_global[mapping[pu]]
                gv = local_to_global[mapping[pv]]
                if not self.directed and gu > gv:
                    gu, gv = gv, gu
                edges.add((gu, gv))
            if count >= self.match_cap:
                break

    def _neighborhood(self, v: int, hops: int) -> Set[int]:
        seen = {v}
        frontier = {v}
        for _ in range(max(hops, 0)):
            nxt: Set[int] = set()
            for u in frontier:
                nxt |= self._adj[u] - seen
            if not nxt:
                break
            seen |= nxt
            frontier = nxt
        return seen


__all__ = ["IncrementalMatcher"]
