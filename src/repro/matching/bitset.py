"""Packed-bitset primitives for the fast matching backend.

Node sets over an ``n``-node host are stored as little-endian uint64
word arrays: node ``v`` lives in word ``v >> 6`` at bit ``v & 63``.
The VF2 feasibility test then becomes a handful of word-wise AND /
AND-NOT operations instead of per-pair set probes, and candidate
enumeration walks set bits in ascending node order — which is exactly
the reference matcher's deterministic candidate order.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

import numpy as np

#: bits per word
WORD_BITS = 64

#: per-byte set-bit positions, ascending — drives :func:`iter_bits`
_BYTE_BITS: List[List[int]] = [
    [b for b in range(8) if byte >> b & 1] for byte in range(256)
]


def n_words(n_bits: int) -> int:
    """Words needed to hold ``n_bits`` bits."""
    return (n_bits + WORD_BITS - 1) // WORD_BITS


def zeros(n_bits: int) -> np.ndarray:
    """An all-clear bitset for ``n_bits`` bits."""
    return np.zeros(n_words(n_bits), dtype=np.uint64)


def from_indices(indices: Iterable[int], n_bits: int) -> np.ndarray:
    """Bitset with exactly ``indices`` set."""
    words = zeros(n_bits)
    for v in indices:
        words[v >> 6] |= np.uint64(1 << (v & 63))
    return words


def from_bool(mask: np.ndarray) -> np.ndarray:
    """Pack a boolean array into words (index ``i`` -> bit ``i``)."""
    n = len(mask)
    padded = np.zeros(n_words(n) * WORD_BITS, dtype=np.uint8)
    padded[:n] = np.asarray(mask, dtype=np.uint8)
    return np.packbits(padded, bitorder="little").view(np.dtype("<u8"))


def set_bit(words: np.ndarray, v: int) -> None:
    words[v >> 6] |= np.uint64(1 << (v & 63))


def clear_bit(words: np.ndarray, v: int) -> None:
    words[v >> 6] &= np.uint64(~(1 << (v & 63)) & 0xFFFFFFFFFFFFFFFF)


def test_bit(words: np.ndarray, v: int) -> bool:
    return bool(words[v >> 6] >> np.uint64(v & 63) & np.uint64(1))


def iter_bits(words: np.ndarray) -> Iterator[int]:
    """Yield set bit positions in ascending order."""
    for w, word in enumerate(words):
        word = int(word)
        if not word:
            continue
        base = w << 6
        while word:
            low = word & -word
            yield base + low.bit_length() - 1
            word ^= low


def popcount(words: np.ndarray) -> int:
    """Number of set bits."""
    return sum(int(w).bit_count() for w in words)


def bits_of(words: np.ndarray) -> np.ndarray:
    """Set bit positions, ascending, as one vectorized extraction.

    ``unpackbits`` over the little-endian byte view puts bit ``i`` at
    byte-array position ``i``, so ``flatnonzero`` yields exactly the
    :func:`iter_bits` sequence — one numpy pass instead of a Python
    word/bit loop, which is what makes whole-frontier candidate
    expansion cheap on small hosts.
    """
    return np.flatnonzero(
        np.unpackbits(words.view(np.uint8), bitorder="little")
    )


__all__ = [
    "WORD_BITS",
    "n_words",
    "zeros",
    "from_indices",
    "from_bool",
    "set_bit",
    "clear_bit",
    "test_bit",
    "iter_bits",
    "bits_of",
    "popcount",
]
