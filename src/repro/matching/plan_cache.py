"""Process-wide match-plan cache — the cross-tier ``PMatch`` memo.

Four independent call sites pay full pattern-vs-host enumeration today:
Psum's coverage greedy (``core/psum.py``), constraint verification
(``core/verifiers.py``), the query index's posting builds
(``query/index.py``), and PGen's dedup/identity resolution
(``mining/pgen.py``). They routinely ask about the *same* (pattern,
host) pairs — every Psum winner is re-matched by ``verify_view`` and
again when the view index builds its posting lists.

This module gives them one shared memo:

* **pattern plans** keyed by the pattern's *exact* canonical identity
  (WL key + position in the key's isomorphism-resolved bucket — WL keys
  alone may collide);
* **host contexts** keyed by :func:`~repro.matching.context.
  graph_content_key` — content-defined, so rebuilt-but-identical hosts
  (e.g. induced explanation subgraphs reconstructed per request) hit;
* **coverage** results ``(pattern, host, match_cap) -> (covered nodes,
  covered edges)`` in host-local ids, and **containment** booleans.

Entries are immutable values of deterministic computations, so cache
hits are bit-identical to recomputation by construction. The cache is
bounded — FIFO eviction for contexts and match results, a wholesale
generation-bumping reset for the pattern registry past
``max_patterns`` — and thread-safe (the HTTP serve path matches from
reader threads); forked workers reinitialize it via an at-fork hook.
Only the fast backend consults it — the reference backend reproduces
the seed behavior exactly, cache and all.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.exceptions import MatchingError, ValidationError
from repro.graphs.columnar import ColumnarDatabase, GraphSlice
from repro.graphs.graph import Graph
from repro.graphs.pattern import Pattern
from repro.matching.context import MatchContext, MatchPlan, graph_content_key
from repro.matching.isomorphism import are_isomorphic, find_isomorphisms

#: current plan-cache snapshot format (``export_snapshot``); bump on
#: incompatible change — unknown versions are rejected on load
SNAPSHOT_SCHEMA_VERSION = 1

#: exact canonical pattern identity: (registry generation, WL key,
#: bucket position) — the generation increments when the pattern
#: registry resets, so recycled bucket positions can never alias
#: entries keyed before the reset
CanonKey = Tuple[int, str, int]

#: host-local coverage: (covered node ids, covered canonical edge keys)
LocalCoverage = Tuple[FrozenSet[int], FrozenSet[Tuple[int, int]]]


class MatchPlanCache:
    """Shared memo of match plans, host contexts, and match results."""

    def __init__(
        self,
        max_contexts: int = 512,
        max_results: int = 200_000,
        max_patterns: int = 100_000,
    ) -> None:
        self.max_contexts = max_contexts
        self.max_results = max_results
        self.max_patterns = max_patterns
        self._lock = threading.RLock()
        self._generation = 0
        self._identity: Dict[str, List[Pattern]] = {}
        #: pattern graph content key -> resolved canonical identity;
        #: serve paths re-create byte-identical Pattern objects per
        #: request, and this memo resolves them with one cheap hash
        #: instead of a WL refinement + exact isomorphism check
        self._content_canon: Dict[str, Tuple[Pattern, CanonKey]] = {}
        self._plans: Dict[CanonKey, MatchPlan] = {}
        self._contexts: "OrderedDict[str, MatchContext]" = OrderedDict()
        #: ad-hoc plans keyed by exact pattern *content* — the un-
        #: canonicalized fast path (``find_isomorphisms`` without a
        #: carried plan) must plan the caller's own node ids, and
        #: resolving through ``canon`` could return an isomorphic
        #: representative with different ids
        self._exact_plans: "OrderedDict[str, MatchPlan]" = OrderedDict()
        self._coverage: "OrderedDict[Tuple[CanonKey, str, int], LocalCoverage]" = (
            OrderedDict()
        )
        self._contains: "OrderedDict[Tuple[CanonKey, str], bool]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: how many MatchPlan / MatchContext objects were *constructed*
        #: (vs served from the cache) — the warm-tier boot contract
        #: asserts a snapshot-warmed worker records zero plan builds
        self.plan_builds = 0
        self.context_builds = 0
        #: counted separately from ``plan_builds``: the warm-tier boot
        #: contract asserts zero *canonical* plan builds, and ad-hoc
        #: plans are a different population
        self.exact_plan_builds = 0

    # ------------------------------------------------------------------
    # keys and shared precomputation
    # ------------------------------------------------------------------
    def canon(self, pattern: Pattern) -> Tuple[Pattern, CanonKey]:
        """Canonical representative + exact canonical key.

        WL refinement and isomorphism checks — potentially expensive
        for adversarial analyst patterns — run *outside* the lock;
        bucket positions only ever append, so a snapshot's indices
        stay valid and a concurrent registration just triggers a
        rescan of the grown tail.
        """
        content = graph_content_key(pattern.graph)
        with self._lock:
            resolved = self._content_canon.get(content)
            if resolved is not None:
                return resolved
        wl_key = pattern.key()  # WL refinement: outside the lock
        while True:
            with self._lock:
                resolved = self._content_canon.get(content)
                if resolved is not None:
                    return resolved
                generation = self._generation
                bucket = list(self._identity.get(wl_key, ()))
            match_pos = None
            for pos, candidate in enumerate(bucket):
                if candidate is pattern or are_isomorphic(
                    pattern, candidate, backend="fast"
                ):
                    match_pos = pos
                    break
            with self._lock:
                if self._generation != generation:
                    continue  # registry reset mid-scan: start over
                if match_pos is not None:
                    resolved = (
                        bucket[match_pos],
                        (generation, wl_key, match_pos),
                    )
                    self._content_canon[content] = resolved
                    return resolved
                live = self._identity.setdefault(wl_key, [])
                if len(live) != len(bucket):
                    continue  # bucket grew concurrently: rescan it
                if (
                    len(self._content_canon) >= self.max_patterns
                ):  # safety valve: see _reset_patterns_locked
                    self._reset_patterns_locked()
                    live = self._identity.setdefault(wl_key, [])
                live.append(pattern)
                resolved = (
                    pattern,
                    (self._generation, wl_key, len(live) - 1),
                )
                self._content_canon[content] = resolved
                return resolved

    def _reset_patterns_locked(self) -> None:
        """Drop all pattern-side state (and the results keyed by it).

        Called with the lock held when the pattern registry exceeds
        ``max_patterns`` (a long-lived serve process fed unbounded
        distinct analyst patterns). Canonical keys embed bucket
        positions, so the identity map can never be cleared alone —
        coverage/containment entries keyed by old positions would
        alias fresh registrations; everything pattern-keyed resets
        together and rebuilds on demand, and the generation bump keeps
        any key still held by an in-flight caller from colliding.
        """
        self._generation += 1
        self._identity.clear()
        self._content_canon.clear()
        self._plans.clear()
        self._coverage.clear()
        self._contains.clear()

    def plan(self, pattern: Pattern) -> Tuple[Pattern, CanonKey, MatchPlan]:
        """Canonical pattern, its key, and its (cached) match plan."""
        canon, key = self.canon(pattern)
        with self._lock:
            plan = self._plans.get(key)
            if plan is None:
                plan = MatchPlan(canon)
                self._plans[key] = plan
                self.plan_builds += 1
        return canon, key, plan

    def exact_plan(self, pattern: Pattern) -> MatchPlan:
        """Ad-hoc (cached) plan for *this* pattern's node ids.

        Unlike :meth:`plan` there is no canonical resolution: the plan
        is keyed by the pattern graph's content key and always maps the
        caller's own node ids, which is what un-batched
        ``find_isomorphisms`` calls need. Never recurses into
        ``canon``/``are_isomorphic``, so the ad-hoc fast path can call
        it from inside canonicalization itself.
        """
        content = graph_content_key(pattern.graph)
        with self._lock:
            plan = self._exact_plans.get(content)
            if plan is not None:
                self._exact_plans.move_to_end(content)
                return plan
        plan = MatchPlan(pattern)  # order derivation outside the lock
        with self._lock:
            existing = self._exact_plans.get(content)
            if existing is not None:
                return existing
            self._exact_plans[content] = plan
            self.exact_plan_builds += 1
            while len(self._exact_plans) > self.max_patterns:
                self._exact_plans.popitem(last=False)
        return plan

    def context(
        self,
        host: Graph,
        host_key: Optional[str] = None,
        columnar: Optional[GraphSlice] = None,
    ) -> Tuple[MatchContext, str]:
        """The host's (cached) match context and its content key.

        ``columnar`` optionally carries the host's slice of a columnar
        group so a cache miss builds the context from the shared CSR
        arrays (``MatchContext`` itself verifies slice freshness).
        """
        if host_key is None:
            host_key = graph_content_key(host)
        with self._lock:
            ctx = self._contexts.get(host_key)
            if ctx is None:
                ctx = MatchContext(host, columnar=columnar)
                self._contexts[host_key] = ctx
                self.context_builds += 1
                while len(self._contexts) > self.max_contexts:
                    self._contexts.popitem(last=False)
            else:
                self._contexts.move_to_end(host_key)
        return ctx, host_key

    def contexts_for_group(
        self,
        hosts: Sequence[Graph],
        host_keys: Optional[Sequence[Optional[str]]] = None,
        columnar: Optional[ColumnarDatabase] = None,
        indices: Optional[Sequence[int]] = None,
    ) -> List[MatchContext]:
        """Contexts for a whole host group in one shot.

        With a :class:`ColumnarDatabase` the missing contexts are built
        from per-graph slices that share the group's packed-row table —
        one vectorized scatter covers every host in the group instead
        of per-host packing loops. ``indices[i]`` is ``hosts[i]``'s
        index in the columnar database (defaults to ``i``). Cached
        contexts are returned as-is, so the result is identical to
        per-host :meth:`context` calls.
        """
        col = self._resolve_columnar(columnar)
        out: List[MatchContext] = []
        for i, host in enumerate(hosts):
            key = host_keys[i] if host_keys is not None else None
            sl = None
            if col is not None:
                sl = col.fresh_slice(
                    indices[i] if indices is not None else i, host
                )
            out.append(self.context(host, key, columnar=sl)[0])
        return out

    @staticmethod
    def _resolve_columnar(columnar) -> Optional[ColumnarDatabase]:
        """Accept a ColumnarDatabase or a lazy zero-arg factory.

        Batched callers pass a factory so the columnar build is only
        paid when some context is genuinely missing from the cache.
        """
        if columnar is None or isinstance(columnar, ColumnarDatabase):
            return columnar
        return columnar()

    # ------------------------------------------------------------------
    # cached match results
    # ------------------------------------------------------------------
    def coverage(
        self,
        pattern: Pattern,
        host: Graph,
        match_cap: int = 10_000,
        host_key: Optional[str] = None,
    ) -> LocalCoverage:
        """Covered host nodes/edges, in host-local ids (cached).

        Mirrors ``match_coverage``'s enumeration exactly: same match
        order, same ``match_cap`` truncation, same stop-early-on-full-
        coverage rule — the result is a pure function of (pattern
        content, host content, cap), which is the cache key.
        """
        if host_key is None:
            host_key = graph_content_key(host)
        content = graph_content_key(pattern.graph)
        with self._lock:
            # hit path: two memoized hashes + two dict probes, no plan
            # resolution — this is what repeated serve requests pay
            resolved = self._content_canon.get(content)
            if resolved is not None:
                cached = self._coverage.get((resolved[1], host_key, match_cap))
                if cached is not None:
                    self.hits += 1
                    return cached
        canon, key, plan = self.plan(pattern)
        cache_key = (key, host_key, match_cap)
        with self._lock:
            cached = self._coverage.get(cache_key)
            if cached is not None:
                self.hits += 1
                return cached
            self.misses += 1
        ctx, _ = self.context(host, host_key)
        result = _coverage_local(canon, plan, ctx, host, match_cap)
        with self._lock:
            self._coverage[cache_key] = result
            while len(self._coverage) > self.max_results:
                self._coverage.popitem(last=False)
            contains_key = (key, host_key)
            if contains_key not in self._contains:
                self._contains[contains_key] = bool(result[0])
        return result

    def contains(
        self,
        pattern: Pattern,
        host: Graph,
        host_key: Optional[str] = None,
    ) -> bool:
        """Whether the pattern occurs in the host (cached)."""
        if host_key is None:
            host_key = graph_content_key(host)
        content = graph_content_key(pattern.graph)
        with self._lock:
            resolved = self._content_canon.get(content)
            if resolved is not None:
                cached = self._contains.get((resolved[1], host_key))
                if cached is not None:
                    self.hits += 1
                    return cached
        canon, key, plan = self.plan(pattern)
        cache_key = (key, host_key)
        with self._lock:
            cached = self._contains.get(cache_key)
            if cached is not None:
                self.hits += 1
                return cached
            self.misses += 1
        ctx, _ = self.context(host, host_key)
        found = False
        for _ in find_isomorphisms(
            canon, host, limit=1, backend="fast", context=ctx, plan=plan
        ):
            found = True
        with self._lock:
            self._contains[cache_key] = found
            while len(self._contains) > self.max_results:
                self._contains.popitem(last=False)
        return found

    def coverage_many(
        self,
        pattern: Pattern,
        hosts: Sequence[Graph],
        match_cap: int = 10_000,
        host_keys: Optional[Sequence[Optional[str]]] = None,
        columnar=None,
        indices: Optional[Sequence[int]] = None,
    ) -> List[LocalCoverage]:
        """Batched :meth:`coverage`: one pattern vs a host group.

        The database-batched ``PMatch`` core: canonical identity and
        match plan resolve once, cached per-host coverage is read
        under one lock acquisition, and only novel (pattern, host)
        pairs enumerate (prefiltered by type counts). ``columnar`` (a
        :class:`ColumnarDatabase` or lazy factory, with ``indices[i]``
        locating ``hosts[i]`` in it) routes cache-miss context builds
        through the group's columnar arrays. Identical, host for host,
        to per-host :meth:`coverage` calls.
        """
        keys = [
            host_keys[i]
            if host_keys is not None and host_keys[i] is not None
            else graph_content_key(host)
            for i, host in enumerate(hosts)
        ]
        canon, key, plan = self.plan(pattern)
        out: List[Optional[LocalCoverage]] = [None] * len(hosts)
        with self._lock:
            for i, hk in enumerate(keys):
                cached = self._coverage.get((key, hk, match_cap))
                if cached is not None:
                    out[i] = cached
                    self.hits += 1
        todo = [i for i, cov in enumerate(out) if cov is None]
        empty: LocalCoverage = (frozenset(), frozenset())
        col = self._resolve_columnar(columnar) if todo else None
        for i in todo:
            sl = None
            if col is not None:
                sl = col.fresh_slice(
                    indices[i] if indices is not None else i, hosts[i]
                )
            ctx, _ = self.context(hosts[i], keys[i], columnar=sl)
            if not plan.host_can_match(ctx):
                out[i] = empty
                continue
            out[i] = _coverage_local(canon, plan, ctx, hosts[i], match_cap)
        if todo:
            with self._lock:
                for i in todo:
                    self.misses += 1
                    self._coverage[(key, keys[i], match_cap)] = out[i]
                    contains_key = (key, keys[i])
                    if contains_key not in self._contains:
                        self._contains[contains_key] = bool(out[i][0])
                while len(self._coverage) > self.max_results:
                    self._coverage.popitem(last=False)
        return out  # fully populated: every index was cached or computed

    def contains_many(
        self,
        pattern: Pattern,
        hosts: Sequence[Graph],
        host_keys: Optional[Sequence[Optional[str]]] = None,
        columnar=None,
        indices: Optional[Sequence[int]] = None,
    ) -> List[bool]:
        """Batched containment: one pattern vs a host group.

        The database-batched form of :meth:`contains`: the pattern's
        canonical identity and plan resolve once, cached answers for
        the whole group are read under a single lock acquisition, and
        only genuinely novel (pattern, host) pairs run VF2 (with the
        type-count prefilter applied first). ``columnar``/``indices``
        as in :meth:`coverage_many`. Posting builds in
        ``query/index.py`` call this per pattern per tier.
        """
        keys = [
            host_keys[i]
            if host_keys is not None and host_keys[i] is not None
            else graph_content_key(host)
            for i, host in enumerate(hosts)
        ]
        canon, key, plan = self.plan(pattern)
        out: List[Optional[bool]] = [None] * len(hosts)
        with self._lock:
            for i, hk in enumerate(keys):
                cached = self._contains.get((key, hk))
                if cached is not None:
                    out[i] = cached
                    self.hits += 1
        todo = [i for i, flag in enumerate(out) if flag is None]
        col = self._resolve_columnar(columnar) if todo else None
        for i in todo:
            sl = None
            if col is not None:
                sl = col.fresh_slice(
                    indices[i] if indices is not None else i, hosts[i]
                )
            ctx, _ = self.context(hosts[i], keys[i], columnar=sl)
            if not plan.host_can_match(ctx):
                out[i] = False
                continue
            found = False
            for _ in find_isomorphisms(
                canon, hosts[i], limit=1, backend="fast", context=ctx, plan=plan
            ):
                found = True
            out[i] = found
        if todo:
            with self._lock:
                for i in todo:
                    self.misses += 1
                    self._contains[(key, keys[i])] = out[i]
                while len(self._contains) > self.max_results:
                    self._contains.popitem(last=False)
        return [bool(flag) for flag in out]

    # ------------------------------------------------------------------
    # snapshots: the cross-process warm tier (docs/distribution.md)
    # ------------------------------------------------------------------
    def export_snapshot(self) -> Dict[str, object]:
        """The cache's portable warm state as versioned plain JSON.

        Everything is keyed on *content keys* — pattern graphs ship in
        full (plans are deterministic functions of them and rebuild on
        load), coverage and containment results ship by (pattern
        content key, host content key). Live objects (``MatchPlan``,
        ``MatchContext``) never serialize: a loader reconstructs plans
        from the shipped patterns and rebuilds contexts lazily, so a
        snapshot can cross process and machine boundaries safely.
        """
        from repro.graphs.io import graph_to_dict

        with self._lock:
            canon_content: Dict[CanonKey, str] = {}
            patterns: Dict[str, Dict[str, object]] = {}
            for wl_key, bucket in self._identity.items():
                for pos, pattern in enumerate(bucket):
                    content = graph_content_key(pattern.graph)
                    canon_content[(self._generation, wl_key, pos)] = content
                    patterns[content] = graph_to_dict(pattern.graph)
            coverage = []
            for (key, host_key, cap), (nodes, edges) in self._coverage.items():
                content = canon_content.get(key)
                if content is None:  # keyed before a registry reset
                    continue
                coverage.append(
                    [
                        content,
                        host_key,
                        cap,
                        sorted(nodes),
                        sorted([u, v] for u, v in edges),
                    ]
                )
            contains = []
            for (key, host_key), flag in self._contains.items():
                content = canon_content.get(key)
                if content is None:
                    continue
                contains.append([content, host_key, bool(flag)])
        return {
            "schema": SNAPSHOT_SCHEMA_VERSION,
            "patterns": patterns,
            "coverage": coverage,
            "contains": contains,
        }

    def load_snapshot(self, snapshot: Dict[str, object]) -> Dict[str, int]:
        """Warm this cache from :meth:`export_snapshot` output.

        Unknown snapshot versions are rejected
        (:class:`~repro.exceptions.MatchingError`); *stale entries are
        dropped, never applied*: a pattern whose shipped graph no
        longer hashes to its recorded content key (corruption, a
        content-key algorithm change) is skipped along with every
        result keyed on it, and malformed rows are skipped
        individually. Plans for the surviving patterns are rebuilt
        eagerly — that is the point of warming: the subsequent run
        records **zero** plan builds for snapshot-covered patterns.

        Returns ``{"patterns", "coverage", "contains", "dropped"}``
        counts for diagnostics.
        """
        from repro.graphs.io import graph_from_dict

        if not isinstance(snapshot, dict):
            raise MatchingError("plan-cache snapshot must be a JSON object")
        schema = snapshot.get("schema")
        if schema != SNAPSHOT_SCHEMA_VERSION:
            raise MatchingError(
                f"unsupported plan-cache snapshot schema {schema!r}; "
                f"this build reads version {SNAPSHOT_SCHEMA_VERSION}"
            )
        stats = {"patterns": 0, "coverage": 0, "contains": 0, "dropped": 0}
        key_of: Dict[str, CanonKey] = {}
        for content, graph_dict in dict(snapshot.get("patterns") or {}).items():
            try:
                pattern = Pattern(graph_from_dict(graph_dict))
            # repro: noqa[REPRO401] - warm tier is best-effort: a malformed
            # snapshot row is dropped (counted) rather than failing boot
            except Exception:  # repro: noqa[REPRO401]
                stats["dropped"] += 1
                continue
            if graph_content_key(pattern.graph) != content:
                stats["dropped"] += 1  # stale key: drop, don't apply
                continue
            _, key, _ = self.plan(pattern)  # registers + rebuilds the plan
            key_of[content] = key
            stats["patterns"] += 1
        for row in list(snapshot.get("coverage") or []):
            try:
                content, host_key, cap, nodes, edges = row
                key = key_of[content]
                if not isinstance(host_key, str) or not isinstance(cap, int):
                    raise ValidationError(row)
                value = (
                    frozenset(int(n) for n in nodes),
                    frozenset((int(u), int(v)) for u, v in edges),
                )
            except (KeyError, TypeError, ValueError):
                stats["dropped"] += 1
                continue
            with self._lock:
                self._coverage[(key, host_key, cap)] = value
                if (key, host_key) not in self._contains:
                    self._contains[(key, host_key)] = bool(value[0])
                while len(self._coverage) > self.max_results:
                    self._coverage.popitem(last=False)
            stats["coverage"] += 1
        for row in list(snapshot.get("contains") or []):
            try:
                content, host_key, flag = row
                key = key_of[content]
                if not isinstance(host_key, str) or not isinstance(flag, bool):
                    raise ValidationError(row)
            except (KeyError, TypeError, ValueError):
                stats["dropped"] += 1
                continue
            with self._lock:
                self._contains[(key, host_key)] = flag
                while len(self._contains) > self.max_results:
                    self._contains.popitem(last=False)
            stats["contains"] += 1
        return stats

    # ------------------------------------------------------------------
    # repro: noqa[REPRO101] - runs via os.register_at_fork in the child,
    # which is single-threaded by construction; rebuilding the lock and
    # state lock-free here is the documented fork-safety design
    def _reinit_after_fork(self) -> None:  # repro: noqa[REPRO101]
        """Replace the lock and drop contents in a freshly forked child.

        The fork-pool executors fork from the threaded serve process;
        only the forking thread survives in the child, so a reader
        thread that held the lock (or was mid-mutation) at fork time
        would leave the copied lock permanently held and the dicts
        possibly inconsistent. The child starts single-threaded, so
        replacing the lock and clearing is race-free; workers rewarm
        their own cache, matching the warm-``WorkerState`` design.
        """
        self._lock = threading.RLock()
        self._generation += 1
        self._identity.clear()
        self._content_canon.clear()
        self._plans.clear()
        self._exact_plans.clear()
        self._contexts.clear()
        self._coverage.clear()
        self._contains.clear()

    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop every cached plan, context, and result."""
        with self._lock:
            self._identity.clear()
            self._content_canon.clear()
            self._plans.clear()
            self._exact_plans.clear()
            self._contexts.clear()
            self._coverage.clear()
            self._contains.clear()
            self.hits = 0
            self.misses = 0
            self.plan_builds = 0
            self.context_builds = 0
            self.exact_plan_builds = 0

    def stats(self) -> Dict[str, int]:
        """Cache occupancy and hit counters (for benches / diagnostics)."""
        with self._lock:
            return {
                "plans": len(self._plans),
                "exact_plans": len(self._exact_plans),
                "contexts": len(self._contexts),
                "coverage_entries": len(self._coverage),
                "contains_entries": len(self._contains),
                "hits": self.hits,
                "misses": self.misses,
                "plan_builds": self.plan_builds,
                "context_builds": self.context_builds,
                "exact_plan_builds": self.exact_plan_builds,
            }


def _coverage_local(
    canon: Pattern,
    plan: MatchPlan,
    ctx: MatchContext,
    host: Graph,
    match_cap: int,
) -> LocalCoverage:
    """One pattern's coverage of one host, in host-local ids.

    The enumeration / early-exit schedule is byte-for-byte the one in
    ``match_coverage`` so cached and uncached results coincide.
    """
    covered_nodes: set = set()
    covered_edges: set = set()
    n_host = host.n_nodes
    count = 0
    for mapping in find_isomorphisms(
        canon, host, backend="fast", context=ctx, plan=plan
    ):
        count += 1
        for hv in mapping.values():
            covered_nodes.add(hv)
        for (pu, pv) in canon.graph.edge_types:
            hu, hv = mapping[pu], mapping[pv]
            if not host.directed and hu > hv:
                hu, hv = hv, hu
            covered_edges.add((hu, hv))
        if count >= match_cap:
            break
        if len(covered_nodes) == n_host and len(covered_edges) == host.n_edges:
            break
    return frozenset(covered_nodes), frozenset(covered_edges)


#: the process-wide cache instance every fast-tier call site shares
PLAN_CACHE = MatchPlanCache()

if hasattr(os, "register_at_fork"):  # POSIX: fork-pool workers
    os.register_at_fork(after_in_child=PLAN_CACHE._reinit_after_fork)


__all__ = [
    "MatchPlanCache",
    "PLAN_CACHE",
    "CanonKey",
    "LocalCoverage",
    "SNAPSHOT_SCHEMA_VERSION",
]
