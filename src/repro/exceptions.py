"""Exception hierarchy for the repro (GVEX) library.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (bad bound, empty input...).

    Dual-inherits :class:`ValueError` so pre-existing ``except
    ValueError`` callers keep working while API callers can catch
    :class:`ReproError` uniformly (docs/api.md error contract).
    """


class InvalidTypeError(ReproError, TypeError):
    """An argument has the wrong type (dual-inherits TypeError)."""


class MissingKeyError(ReproError, KeyError):
    """A lookup key is absent (dual-inherits KeyError).

    ``KeyError.__str__`` reprs its argument; this subclass restores
    plain messages so typed errors render readably at API boundaries.
    """

    def __str__(self) -> str:
        return Exception.__str__(self)


class AnalysisError(ReproError):
    """The static-analysis run itself failed (parse error, bad
    baseline file...) — distinct from the findings it reports."""


class GraphError(ReproError):
    """Structural problem with a graph (bad node id, malformed edge...)."""


class PatternError(ReproError):
    """Problem with a graph pattern (empty, disconnected, bad types...)."""


class ConfigurationError(ReproError):
    """Invalid GVEX configuration (thresholds, coverage bounds...)."""


class ModelError(ReproError):
    """Problem with a GNN model (shape mismatch, untrained use...)."""


class DatasetError(ReproError):
    """Problem constructing or loading a dataset."""


class ExplanationError(ReproError):
    """An explainer could not produce a valid explanation."""


class MatchingError(ReproError):
    """Problem during subgraph isomorphism / pattern matching."""


class QueryError(ReproError):
    """Malformed view query (bad scope, unsupported composition...)."""


class RegistryError(ReproError):
    """Unknown or misconfigured explainer registry entry."""


class DeadlineExpiredError(ReproError):
    """A request's deadline budget ran out before the work finished.

    Deadlines are ``time.monotonic()``-based budgets threaded from the
    HTTP layer (``/explain`` ``deadline_seconds``) through queue
    admission, plan execution, and cluster dispatch; the HTTP layer
    maps this to ``504 Gateway Timeout`` with a structured body
    (docs/api.md deadline contract)."""


class JournalError(ReproError):
    """A shard-result journal could not be used (stale plan key,
    unreadable header, version mismatch). Torn or corrupt *trailing*
    records are tolerated silently; this error means the journal as a
    whole belongs to a different plan or format and must not seed a
    resume."""


class QueueFullError(ReproError):
    """The bounded work queue rejected a submission (backpressure).

    ``scope`` distinguishes the two admission limits: ``"global"``
    (the queue's shared backlog bound) and ``"tenant"`` (one tenant's
    depth bound); ``tenant`` names the tenant for the latter.
    """

    def __init__(self, message: str, *, scope: str = "global", tenant=None):
        super().__init__(message)
        self.scope = scope
        self.tenant = tenant


class TenantError(ReproError):
    """Unknown or misconfigured serving tenant (HTTP layer maps to 404)."""


class WorkerCrashError(ReproError):
    """A fork-pool worker process died mid-shard (killed or crashed)."""


class WireError(ReproError):
    """Malformed cluster wire message (missing field, wrong type...)."""


class WireVersionError(WireError):
    """A cluster wire message carried an unsupported schema version."""


class ClusterError(ReproError):
    """A cluster run could not complete (no live workers left...)."""


class TransportError(ClusterError):
    """An HTTP exchange with a cluster peer failed (connect, timeout,
    non-2xx status, unparseable body).

    Carries a classification the retry layer acts on (docs/faults.md):
    ``status`` is the HTTP status code if the peer answered at all;
    ``transient`` is True for failures worth retrying (refused, reset,
    timeout, 408/429/5xx backpressure) and False for fatal ones (401,
    404, unparseable body) where retrying the same request can only
    fail the same way. When ``transient`` is not given explicitly it is
    derived from ``status``: no status (network-level failure) or a
    status in :data:`TRANSIENT_STATUSES` means transient.
    """

    #: HTTP statuses that signal a retryable condition
    TRANSIENT_STATUSES = frozenset({408, 429, 500, 502, 503, 504})

    def __init__(self, message, *, status=None, transient=None):
        super().__init__(message)
        self.status = status
        if transient is None:
            transient = status is None or status in self.TRANSIENT_STATUSES
        self.transient = transient


class MiningError(ReproError):
    """Problem during pattern mining."""
