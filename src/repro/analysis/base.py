"""The ``Checker`` protocol and the checker registry.

A checker is a small object with a ``name``, the ``codes`` it can
emit, and one method::

    def check(self, project: ProjectModel) -> Iterable[Finding]: ...

Checkers are registered at import time with :func:`register_checker`
and instantiated fresh per run by :func:`all_checkers` — they hold no
cross-run state, so one :class:`~repro.analysis.model.ProjectModel`
can be analyzed repeatedly (the fixture suite does). Writing a new
checker is documented in docs/analysis.md.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Protocol, Type

from repro.analysis.findings import Finding
from repro.analysis.model import ProjectModel
from repro.exceptions import AnalysisError


class Checker(Protocol):
    """What the runner requires of every checker."""

    #: short stable name used in reports and ``Finding.checker``
    name: str
    #: the REPROxxx codes this checker can emit
    codes: Iterable[str]

    def check(self, project: ProjectModel) -> Iterable[Finding]:
        """Yield findings over the parsed project."""
        ...  # pragma: no cover - protocol


_REGISTRY: Dict[str, Type] = {}


def register_checker(cls: Type) -> Type:
    """Class decorator: add a checker class to the default set."""
    name = getattr(cls, "name", None)
    if not name:
        raise AnalysisError(f"checker {cls!r} declares no name")
    if name in _REGISTRY and _REGISTRY[name] is not cls:
        raise AnalysisError(f"duplicate checker name {name!r}")
    _REGISTRY[name] = cls
    return cls


def checker_names() -> List[str]:
    return sorted(_REGISTRY)


def all_checkers() -> List[Checker]:
    """Fresh default-configured instances of every registered checker."""
    # import for side effects: each module registers its checker class
    from repro.analysis import determinism, forksafety, locks, policy  # noqa: F401

    return [_REGISTRY[name]() for name in sorted(_REGISTRY)]


__all__ = ["Checker", "register_checker", "all_checkers", "checker_names"]
