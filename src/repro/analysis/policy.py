"""Exception & wire policy checker (``REPRO4xx``).

docs/api.md promises that every error the library raises derives from
:class:`repro.exceptions.ReproError`, so API callers can catch one
base class, and the cluster fault-tolerance design (docs/
distribution.md) requires every fault path to surface a *typed* error
— a swallowed exception is a straggler the coordinator cannot reap.

``REPRO401`` — a bare ``except:`` or broad ``except Exception /
BaseException`` handler whose body never raises: the error is
swallowed on what may be a fault path. Intentional containment sites
(failure-tolerant warm starts, best-effort snapshot loads) carry a
``# repro: noqa[REPRO401]`` with a justification.

``REPRO402`` — ``raise`` of a builtin exception type
(``ValueError``, ``RuntimeError``, ``KeyError``...). Library errors
must be ``repro.exceptions`` types; where stdlib catch-compat
matters, the typed error dual-inherits (``ValidationError(ReproError,
ValueError)``). ``NotImplementedError`` (abstract methods),
``AssertionError``, ``StopIteration``, ``SystemExit`` (CLI), and
``TimeoutError`` (stdlib timeout contract) are exempt.

``REPRO403`` — wire-schema completeness for ``cluster/wire.py``:
every name in ``MESSAGE_TYPES`` must have an ``encode_<type>`` and
``decode_<type>`` function, a ``DECODERS`` entry, and a frozen golden
fixture ``tests/golden/wire/<type>.json``.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Set, Tuple

from repro.analysis.base import register_checker
from repro.analysis.findings import Finding
from repro.analysis.model import ModuleInfo, ProjectModel

#: builtin exception names whose direct raise violates the policy
FLAGGED_BUILTINS = frozenset(
    {
        "Exception",
        "BaseException",
        "ValueError",
        "TypeError",
        "RuntimeError",
        "KeyError",
        "IndexError",
        "LookupError",
        "AttributeError",
        "OSError",
        "IOError",
        "ArithmeticError",
        "ZeroDivisionError",
        "OverflowError",
        "FileNotFoundError",
        "PermissionError",
        "ConnectionError",
        "EOFError",
        "UnicodeDecodeError",
    }
)

_BROAD_HANDLERS = frozenset({"Exception", "BaseException"})


@register_checker
class ExceptionPolicyChecker:
    """REPRO401 swallowed broad handlers + REPRO402 builtin raises."""

    name = "exceptions"
    codes = ("REPRO401", "REPRO402")

    def check(self, project: ProjectModel) -> Iterable[Finding]:
        findings: List[Finding] = []
        for info in project.modules.values():
            self._visit(info, info.tree.body, 0, "<module>", findings)
        return sorted(set(findings))

    def _visit(
        self,
        info: ModuleInfo,
        body: List[ast.stmt],
        scope_line: int,
        qual: str,
        findings: List[Finding],
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._visit(
                    info, stmt.body, stmt.lineno, stmt.name, findings
                )
                continue
            if isinstance(stmt, ast.ClassDef):
                self._visit(info, stmt.body, scope_line, qual, findings)
                continue
            if isinstance(stmt, ast.Raise):
                self._check_raise(info, stmt, scope_line, qual, findings)
            if isinstance(stmt, ast.Try):
                for handler in stmt.handlers:
                    self._check_handler(
                        info, handler, scope_line, qual, findings
                    )
            for child in self._suites(stmt):
                self._visit(info, child, scope_line, qual, findings)

    @staticmethod
    def _suites(stmt: ast.stmt) -> List[List[ast.stmt]]:
        out: List[List[ast.stmt]] = []
        for name in ("body", "orelse", "finalbody"):
            value = getattr(stmt, name, None)
            if isinstance(value, list) and value and isinstance(
                value[0], ast.stmt
            ):
                out.append(value)
        for handler in getattr(stmt, "handlers", ()) or ():
            out.append(handler.body)
        for case in getattr(stmt, "cases", ()) or ():
            out.append(case.body)
        return out

    # ------------------------------------------------------------------
    def _check_raise(
        self,
        info: ModuleInfo,
        stmt: ast.Raise,
        scope_line: int,
        qual: str,
        findings: List[Finding],
    ) -> None:
        exc = stmt.exc
        if exc is None:  # bare re-raise: always fine
            return
        name: Optional[str] = None
        if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
            name = exc.func.id
        elif isinstance(exc, ast.Name):
            name = exc.id
        if name is None or name not in FLAGGED_BUILTINS:
            return
        findings.append(
            Finding(
                path=info.display_path,
                line=stmt.lineno,
                code="REPRO402",
                symbol=f"{qual}.{name}",
                message=(
                    f"'{qual}' raises builtin {name}; library errors "
                    f"must derive from repro.exceptions.ReproError "
                    f"(dual-inherit the builtin if catch-compat "
                    f"matters, e.g. ValidationError)"
                ),
                checker=self.name,
                scope_line=scope_line,
            )
        )

    def _check_handler(
        self,
        info: ModuleInfo,
        handler: ast.ExceptHandler,
        scope_line: int,
        qual: str,
        findings: List[Finding],
    ) -> None:
        broad = False
        if handler.type is None:
            broad = True
        elif isinstance(handler.type, ast.Name):
            broad = handler.type.id in _BROAD_HANDLERS
        elif isinstance(handler.type, ast.Tuple):
            broad = any(
                isinstance(e, ast.Name) and e.id in _BROAD_HANDLERS
                for e in handler.type.elts
            )
        if not broad:
            return
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return  # re-raised (or converted): not swallowed
        shape = (
            "bare 'except:'"
            if handler.type is None
            else f"'except {ast.unparse(handler.type)}'"
        )
        findings.append(
            Finding(
                path=info.display_path,
                line=handler.lineno,
                code="REPRO401",
                symbol=f"{qual}.except",
                message=(
                    f"{shape} in '{qual}' swallows the error (no raise "
                    f"on the handler path); catch a typed "
                    f"repro.exceptions error or re-raise — justify "
                    f"intentional containment with a noqa"
                ),
                checker=self.name,
                scope_line=scope_line,
            )
        )


@register_checker
class WirePolicyChecker:
    """REPRO403: every wire message type has encode+decode+golden."""

    name = "wire"
    codes = ("REPRO403",)

    def __init__(
        self,
        wire_module: str = "runtime.cluster.wire",
        golden_dir: Optional[Path] = None,
    ) -> None:
        self.wire_module = wire_module
        self.golden_dir = golden_dir

    def check(self, project: ProjectModel) -> Iterable[Finding]:
        info = None
        for relname, module in project.modules.items():
            if relname == self.wire_module or relname.endswith(
                "." + self.wire_module
            ):
                info = module
                break
        if info is None:
            return []  # no wire layer in this project: nothing to check
        golden_dir = self.golden_dir
        if golden_dir is None:
            # <repo>/src/<pkg> -> <repo>/tests/golden/wire
            golden_dir = (
                project.root.parent.parent / "tests" / "golden" / "wire"
            )
        types = self._message_types(info)
        functions = {
            node.name
            for node in ast.walk(info.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        decoder_keys = self._decoder_keys(info)
        findings: List[Finding] = []
        for msg_type, line in types:
            missing: List[str] = []
            for fn in (f"encode_{msg_type}", f"decode_{msg_type}"):
                if fn not in functions:
                    missing.append(f"function {fn}()")
            if decoder_keys is not None and msg_type not in decoder_keys:
                missing.append("a DECODERS entry")
            golden = golden_dir / f"{msg_type}.json"
            if not golden.is_file():
                missing.append(
                    f"golden fixture tests/golden/wire/{msg_type}.json"
                )
            if missing:
                findings.append(
                    Finding(
                        path=info.display_path,
                        line=line,
                        code="REPRO403",
                        symbol=f"wire.{msg_type}",
                        message=(
                            f"wire message type '{msg_type}' is missing "
                            + " and ".join(missing)
                            + " — every type ships encode+decode+golden"
                        ),
                        checker=self.name,
                    )
                )
        return sorted(set(findings))

    @staticmethod
    def _message_types(info: ModuleInfo) -> List[Tuple[str, int]]:
        """(type string, line) from ``MSG_*`` constant assignments."""
        out: List[Tuple[str, int]] = []
        seen: Set[str] = set()
        for stmt in info.tree.body:
            if not isinstance(stmt, ast.Assign):
                continue
            for target in stmt.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id.startswith("MSG_")
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, str)
                    and stmt.value.value not in seen
                ):
                    seen.add(stmt.value.value)
                    out.append((stmt.value.value, stmt.lineno))
        return out

    @staticmethod
    def _decoder_keys(info: ModuleInfo) -> Optional[Set[str]]:
        """String/MSG_* keys of the module-level ``DECODERS`` dict."""
        msg_constants = {}
        for stmt in info.tree.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id.startswith("MSG_")
                        and isinstance(stmt.value, ast.Constant)
                    ):
                        msg_constants[target.id] = stmt.value.value
        for stmt in info.tree.body:
            if not isinstance(stmt, ast.Assign):
                continue
            is_decoders = any(
                isinstance(t, ast.Name) and t.id == "DECODERS"
                for t in stmt.targets
            )
            if not is_decoders or not isinstance(stmt.value, ast.Dict):
                continue
            keys: Set[str] = set()
            for key in stmt.value.keys:
                if isinstance(key, ast.Constant) and isinstance(
                    key.value, str
                ):
                    keys.add(key.value)
                elif isinstance(key, ast.Name) and key.id in msg_constants:
                    keys.add(msg_constants[key.id])
            return keys
        return None


__all__ = [
    "ExceptionPolicyChecker",
    "WirePolicyChecker",
    "FLAGGED_BUILTINS",
]
