"""``repro.analysis`` — the AST-based invariant linter.

A plugin-based static-analysis framework over stdlib :mod:`ast` that
enforces the codebase's runtime contracts at lint time: lock
discipline (``REPRO1xx``), fork/worker-process safety (``REPRO2xx``),
deterministic enumeration (``REPRO3xx``), and the typed-exception /
versioned-wire policy (``REPRO4xx``). ``python -m repro.cli lint``
runs it; docs/analysis.md is the invariant catalogue and authoring
guide.

The package deliberately imports nothing outside the standard library
and :mod:`repro.exceptions`, so it runs in the dependency-free docs
lane and never executes the code it analyzes.
"""

from repro.analysis.base import (
    Checker,
    all_checkers,
    checker_names,
    register_checker,
)
from repro.analysis.determinism import DEFAULT_HOT_PACKAGES, DeterminismChecker
from repro.analysis.findings import CODES, Finding
from repro.analysis.forksafety import DEFAULT_WORKER_ROOTS, ForkSafetyChecker
from repro.analysis.locks import LockDisciplineChecker
from repro.analysis.model import (
    ClassInfo,
    GlobalInfo,
    LockDecl,
    ModuleInfo,
    ProjectModel,
)
from repro.analysis.policy import (
    FLAGGED_BUILTINS,
    ExceptionPolicyChecker,
    WirePolicyChecker,
)
from repro.analysis.runner import (
    REPORT_SCHEMA_VERSION,
    AnalysisReport,
    format_baseline,
    load_baseline,
    run_analysis,
)

__all__ = [
    "AnalysisReport",
    "CODES",
    "Checker",
    "ClassInfo",
    "DEFAULT_HOT_PACKAGES",
    "DEFAULT_WORKER_ROOTS",
    "DeterminismChecker",
    "ExceptionPolicyChecker",
    "FLAGGED_BUILTINS",
    "Finding",
    "ForkSafetyChecker",
    "GlobalInfo",
    "LockDecl",
    "LockDisciplineChecker",
    "ModuleInfo",
    "ProjectModel",
    "REPORT_SCHEMA_VERSION",
    "WirePolicyChecker",
    "all_checkers",
    "checker_names",
    "format_baseline",
    "load_baseline",
    "register_checker",
    "run_analysis",
]
