"""Finding objects and the ``REPROxxx`` code catalogue.

Every checker emits :class:`Finding`s carrying a stable code from
:data:`CODES`. Codes are grouped by the runtime contract they protect
(docs/analysis.md has the full invariant catalogue):

``REPRO1xx``  lock discipline (docs/runtime.md concurrency contracts)
``REPRO2xx``  fork / worker-process safety (fork-safe ``PLAN_CACHE``)
``REPRO3xx``  determinism (bit-identical ``ViewSet`` parity)
``REPRO4xx``  exception & wire policy (typed ``repro.exceptions``,
              versioned ``cluster/wire.py`` schema)

A finding's :attr:`Finding.identity` — ``path::CODE::symbol`` — is its
stable name in ``scripts/analysis_baseline.txt``: ``symbol`` is a
structural anchor (class/function/attribute names), not a line number,
so baselines survive unrelated edits to the same file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

#: code -> (title, one-line invariant it protects)
CODES: Dict[str, str] = {
    "REPRO101": (
        "attribute mutated both inside and outside the declaring "
        "class's lock"
    ),
    "REPRO102": (
        "nested lock acquisition that can deadlock (same non-reentrant "
        "lock re-entered, or a cycle in the cross-lock acquisition order)"
    ),
    "REPRO201": (
        "module-level mutable global mutated on a fork/worker-reachable "
        "code path without a fork-safe guard"
    ),
    "REPRO202": (
        "lock-holding module-level singleton without an os.register_at_fork "
        "reinitialization hook"
    ),
    "REPRO301": (
        "unordered set iteration feeding ordered accumulation in a "
        "determinism-critical package"
    ),
    "REPRO302": (
        "unseeded process-global randomness (random.*/np.random.*) "
        "instead of a seeded Generator"
    ),
    "REPRO303": (
        "identity- or wall-clock-dependent value (id(), time.time()) "
        "used in a cache key or sort key"
    ),
    "REPRO304": (
        "time.time() in deadline/timeout arithmetic; budgets must be "
        "measured on time.monotonic()"
    ),
    "REPRO401": (
        "bare or broad exception handler that swallows the error "
        "(no raise on the handler path)"
    ),
    "REPRO402": (
        "raise of a builtin exception where a typed repro.exceptions "
        "error is the documented contract"
    ),
    "REPRO403": (
        "cluster wire message type without complete encode/decode/golden "
        "coverage"
    ),
}


@dataclass(frozen=True, order=True)
class Finding:
    """One invariant violation at one source location.

    Sort order is (path, line, code) so reports are deterministic.
    ``symbol`` anchors the finding structurally for baseline matching;
    ``message`` is the human explanation.
    """

    path: str  # posix path relative to the analysis root's parent
    line: int
    code: str
    symbol: str = field(compare=False)
    message: str = field(compare=False)
    checker: str = field(compare=False, default="")
    #: line of the enclosing ``def`` (0 = none); a ``# repro: noqa``
    #: placed there suppresses the code for the whole function
    scope_line: int = field(compare=False, default=0)

    @property
    def identity(self) -> str:
        """The baseline key: stable across unrelated line drift."""
        return f"{self.path}::{self.code}::{self.symbol}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "code": self.code,
            "symbol": self.symbol,
            "message": self.message,
            "checker": self.checker,
            "identity": self.identity,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


__all__ = ["Finding", "CODES"]
