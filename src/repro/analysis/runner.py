"""The analysis runner: checkers x project -> report, with two
suppression layers.

1. **Inline** — ``# repro: noqa[REPRO101]`` (or bare ``# repro:
   noqa``) on the finding's line, or on the enclosing ``def`` line to
   cover a whole function. Use for sites whose justification belongs
   next to the code (``_reinit_after_fork`` runs lock-free *by
   design*).
2. **Baseline** — ``scripts/analysis_baseline.txt`` entries of the
   form ``path::CODE::symbol  # one-line justification``. Use for
   accepted debt and intentional exemptions reviewed in one place.
   Entries that no longer match any finding are *stale* and reported
   so the file never rots.

Exit-code contract (``repro.cli lint``): **0** — no unsuppressed
findings; **1** — at least one unsuppressed finding; **2** — the
analysis itself failed (unparseable tree, bad baseline...). Baselined
and noqa'd findings never fail the run; stale baseline entries are
surfaced in the report but do not fail it either (they fail the
fixture suite instead, keeping lint usable mid-refactor).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.base import Checker, all_checkers
from repro.analysis.findings import CODES, Finding
from repro.analysis.model import ProjectModel
from repro.exceptions import AnalysisError

#: report format version for the JSON output
REPORT_SCHEMA_VERSION = 1


@dataclass
class AnalysisReport:
    """Everything one analysis run produced."""

    root: str
    findings: List[Finding] = field(default_factory=list)  # unsuppressed
    baselined: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)  # inline noqa
    stale_baseline: List[str] = field(default_factory=list)
    checkers: List[str] = field(default_factory=list)
    modules: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": REPORT_SCHEMA_VERSION,
            "root": self.root,
            "ok": self.ok,
            "modules": self.modules,
            "checkers": self.checkers,
            "codes": dict(sorted(CODES.items())),
            "counts": {
                "findings": len(self.findings),
                "baselined": len(self.baselined),
                "suppressed": len(self.suppressed),
                "stale_baseline": len(self.stale_baseline),
            },
            "findings": [f.to_dict() for f in self.findings],
            "baselined": [f.to_dict() for f in self.baselined],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "stale_baseline": list(self.stale_baseline),
        }

    def render_text(self) -> str:
        lines: List[str] = []
        for finding in self.findings:
            lines.append(finding.render())
        if self.stale_baseline:
            lines.append("")
            lines.append(
                f"warning: {len(self.stale_baseline)} stale baseline "
                f"entr{'y' if len(self.stale_baseline) == 1 else 'ies'} "
                f"(matched no finding):"
            )
            for identity in self.stale_baseline:
                lines.append(f"  {identity}")
        lines.append("")
        verdict = "clean" if self.ok else "FAILED"
        lines.append(
            f"repro lint: {verdict} — {len(self.findings)} finding(s), "
            f"{len(self.baselined)} baselined, "
            f"{len(self.suppressed)} suppressed inline, "
            f"{self.modules} module(s), "
            f"checkers: {', '.join(self.checkers)}"
        )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# baseline file
# ----------------------------------------------------------------------
def load_baseline(path: Path) -> Dict[str, str]:
    """``identity -> justification`` from a baseline file."""
    entries: Dict[str, str] = {}
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise AnalysisError(f"cannot read baseline {path}: {exc}") from exc
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        identity, _, justification = line.partition("#")
        identity = identity.strip()
        if identity.count("::") != 2:
            raise AnalysisError(
                f"{path}:{lineno}: baseline entries are "
                f"'path::CODE::symbol  # justification', got {line!r}"
            )
        entries[identity] = justification.strip()
    return entries


def format_baseline(findings: Iterable[Finding]) -> str:
    """Render findings as a fresh baseline file (one entry per identity)."""
    header = (
        "# repro.analysis baseline — accepted findings, one per line:\n"
        "#   path::CODE::symbol  # one-line justification\n"
        "# Regenerate candidates with: python -m repro.cli lint "
        "--write-baseline\n"
        "# Every entry needs a justification; stale entries are reported\n"
        "# by the runner and rejected by tests/test_analysis.py.\n"
    )
    seen: Dict[str, Finding] = {}
    for finding in sorted(findings):
        seen.setdefault(finding.identity, finding)
    body = "".join(
        f"{identity}  # TODO: justify\n" for identity in sorted(seen)
    )
    return header + body


# ----------------------------------------------------------------------
# the run
# ----------------------------------------------------------------------
def run_analysis(
    root: Path,
    checkers: Optional[Sequence[Checker]] = None,
    baseline: Optional[Path] = None,
    package: Optional[str] = None,
) -> AnalysisReport:
    """Parse ``root`` once, run every checker, fold in suppressions."""
    project = ProjectModel(root, package=package)
    active = list(checkers) if checkers is not None else all_checkers()
    raw: List[Finding] = []
    for checker in active:
        raw.extend(checker.check(project))
    raw = sorted(set(raw))

    baseline_entries: Dict[str, str] = {}
    if baseline is not None:
        baseline_entries = load_baseline(baseline)

    report = AnalysisReport(
        root=str(project.root),
        checkers=[c.name for c in active],
        modules=len(project.modules),
    )
    matched: set = set()
    for finding in raw:
        if _noqa_hit(project, finding):
            report.suppressed.append(finding)
        elif finding.identity in baseline_entries:
            matched.add(finding.identity)
            report.baselined.append(finding)
        else:
            report.findings.append(finding)
    report.stale_baseline = sorted(set(baseline_entries) - matched)
    return report


def _noqa_hit(project: ProjectModel, finding: Finding) -> bool:
    """True if an inline noqa covers this finding."""
    for info in project.modules.values():
        if info.display_path == finding.path:
            break
    else:
        return False
    for line in (finding.line, finding.scope_line):
        if not line:
            continue
        codes = info.suppressed_codes(line)
        if codes is not None and (not codes or finding.code in codes):
            return True
    return False


__all__ = [
    "AnalysisReport",
    "run_analysis",
    "load_baseline",
    "format_baseline",
    "REPORT_SCHEMA_VERSION",
]
