"""``ProjectModel`` — parse the whole package once, share the facts.

Every checker needs the same substrate: module ASTs, a class/attribute
symbol table (which classes declare ``threading.Lock``s, which
module-level globals are mutable), and the project-internal import
graph (to answer "is this module reachable from the fork/worker entry
points?"). Parsing is stdlib :mod:`ast` only — the analysis package
must run in the dependency-free docs lane, so it never imports the
code under analysis.

Conventions the model encodes (documented in docs/analysis.md):

* a method whose name ends in ``_locked`` is *called with the lock
  held* — its mutations count as guarded;
* ``self.x = threading.Condition(self.y)`` makes holding ``x``
  equivalent to holding ``y``; a bare ``threading.Condition()`` owns
  its own hidden lock;
* ``# repro: noqa[CODE1,CODE2]`` (or bare ``# repro: noqa``) on a
  finding's line suppresses it in place.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.exceptions import AnalysisError

#: inline suppression comment: ``# repro: noqa`` or ``# repro: noqa[REPRO101]``
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_,\s]+)\])?")

#: calls that construct a lock object when attributed to ``threading``
_LOCK_FACTORIES = ("Lock", "RLock")

#: expressions at module level that create a mutable container
_MUTABLE_CALLS = ("dict", "list", "set", "OrderedDict", "defaultdict", "deque")


def _attr_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` -> ("a", "b", "c"); None for non-name chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _is_threading_call(node: ast.AST, names: Iterable[str]) -> Optional[str]:
    """If ``node`` is ``threading.X(...)`` / ``X(...)`` for X in names,
    return X."""
    if not isinstance(node, ast.Call):
        return None
    chain = _attr_chain(node.func)
    if chain is None:
        return None
    if len(chain) == 2 and chain[0] == "threading" and chain[1] in names:
        return chain[1]
    if len(chain) == 1 and chain[0] in names:
        return chain[0]
    return None


@dataclass
class LockDecl:
    """One ``self.<attr> = threading.Lock()/RLock()`` declaration."""

    attr: str
    reentrant: bool
    line: int


@dataclass
class ClassInfo:
    """A class definition plus its lock-relevant facts."""

    module: "ModuleInfo"
    name: str
    node: ast.ClassDef
    #: lock attribute name -> declaration (Lock vs RLock)
    locks: Dict[str, LockDecl] = field(default_factory=dict)
    #: condition attribute -> the lock attribute it wraps (itself if
    #: constructed bare, owning a private lock)
    conditions: Dict[str, str] = field(default_factory=dict)

    @property
    def qualname(self) -> str:
        return f"{self.module.relname}.{self.name}"

    def methods(self) -> List[ast.FunctionDef]:
        out: List[ast.FunctionDef] = []
        for stmt in self.node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                out.append(stmt)
        return out

    def lock_names(self) -> FrozenSet[str]:
        """Attributes whose ``with`` acquisition means "lock held"."""
        return frozenset(self.locks) | frozenset(self.conditions)

    def lock_for(self, attr: str) -> Optional[str]:
        """The canonical lock attr held when ``with self.<attr>:`` runs."""
        if attr in self.locks:
            return attr
        return self.conditions.get(attr)


@dataclass
class GlobalInfo:
    """One module-level assignment worth reasoning about."""

    name: str
    line: int
    #: the assigned value expression
    value: ast.expr
    #: a dict/list/set/... literal or constructor call
    is_mutable_container: bool
    #: simple class name if the value is ``SomeClass(...)``
    class_name: Optional[str] = None


@dataclass
class ModuleInfo:
    """One parsed source module."""

    name: str  # dotted, including the top package: "repro.runtime.plan"
    relname: str  # sans top package: "runtime.plan" ("" for the root)
    path: Path
    tree: ast.Module
    source_lines: List[str]
    classes: List[ClassInfo] = field(default_factory=list)
    globals: Dict[str, GlobalInfo] = field(default_factory=dict)
    #: project-internal imports, as relnames
    imports: Set[str] = field(default_factory=set)
    #: (line -> frozenset of suppressed codes; empty set = all codes)
    noqa: Dict[int, FrozenSet[str]] = field(default_factory=dict)

    @property
    def display_path(self) -> str:
        """Path relative to the package parent, posix separators."""
        return self._display

    _display: str = ""

    def subpackage(self) -> str:
        """First dotted component of ``relname`` ("" for top modules)."""
        return self.relname.split(".", 1)[0] if "." in self.relname else ""

    def suppressed_codes(self, line: int) -> Optional[FrozenSet[str]]:
        """Codes noqa'd at ``line`` (empty frozenset = every code)."""
        return self.noqa.get(line)


class ProjectModel:
    """All modules of one package, parsed once, plus derived indexes."""

    def __init__(self, root: Path, package: Optional[str] = None) -> None:
        self.root = Path(root).resolve()
        if not self.root.is_dir():
            raise AnalysisError(f"analysis root is not a directory: {root}")
        self.package = package or self.root.name
        self.modules: Dict[str, ModuleInfo] = {}  # keyed by relname
        #: simple class name -> every ClassInfo using it
        self.classes_by_name: Dict[str, List[ClassInfo]] = {}
        self._load()
        self._index_imports()

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def _load(self) -> None:
        for path in sorted(self.root.rglob("*.py")):
            rel = path.relative_to(self.root)
            parts = list(rel.parts)
            if parts[-1] == "__init__.py":
                parts = parts[:-1]
            else:
                parts[-1] = parts[-1][:-3]
            relname = ".".join(parts)
            dotted = (
                f"{self.package}.{relname}" if relname else self.package
            )
            try:
                source = path.read_text()
                tree = ast.parse(source, filename=str(path))
            except (OSError, SyntaxError) as exc:
                raise AnalysisError(
                    f"cannot parse {path}: {exc}"
                ) from exc
            info = ModuleInfo(
                name=dotted,
                relname=relname,
                path=path,
                tree=tree,
                source_lines=source.splitlines(),
            )
            info._display = (
                Path(self.package) / rel
            ).as_posix()
            self._scan_noqa(info)
            self._scan_classes(info)
            self._scan_globals(info)
            self.modules[relname] = info
        if not self.modules:
            raise AnalysisError(f"no python modules under {self.root}")

    def _scan_noqa(self, info: ModuleInfo) -> None:
        for i, text in enumerate(info.source_lines, start=1):
            if "#" not in text:
                continue
            m = _NOQA_RE.search(text)
            if m is None:
                continue
            codes = m.group(1)
            if codes is None:
                info.noqa[i] = frozenset()
            else:
                info.noqa[i] = frozenset(
                    c.strip().upper() for c in codes.split(",") if c.strip()
                )

    def _scan_classes(self, info: ModuleInfo) -> None:
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            cls = ClassInfo(module=info, name=node.name, node=node)
            for method in cls.methods():
                for stmt in ast.walk(method):
                    if not isinstance(stmt, ast.Assign):
                        continue
                    for target in stmt.targets:
                        chain = _attr_chain(target)
                        if (
                            chain is None
                            or len(chain) != 2
                            or chain[0] != "self"
                        ):
                            continue
                        attr = chain[1]
                        kind = _is_threading_call(
                            stmt.value, _LOCK_FACTORIES
                        )
                        if kind is not None:
                            cls.locks[attr] = LockDecl(
                                attr=attr,
                                reentrant=kind == "RLock",
                                line=stmt.lineno,
                            )
                            continue
                        if _is_threading_call(stmt.value, ("Condition",)):
                            call = stmt.value
                            wrapped = attr  # bare Condition(): its own lock
                            if isinstance(call, ast.Call) and call.args:
                                arg_chain = _attr_chain(call.args[0])
                                if (
                                    arg_chain is not None
                                    and len(arg_chain) == 2
                                    and arg_chain[0] == "self"
                                ):
                                    wrapped = arg_chain[1]
                            cls.conditions[attr] = wrapped
            info.classes.append(cls)
            self.classes_by_name.setdefault(cls.name, []).append(cls)

    def _scan_globals(self, info: ModuleInfo) -> None:
        for stmt in info.tree.body:
            if isinstance(stmt, ast.Assign):
                targets = [
                    t.id for t in stmt.targets if isinstance(t, ast.Name)
                ]
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                targets = [stmt.target.id]
                value = stmt.value
            else:
                continue
            if value is None:
                continue
            mutable = isinstance(
                value, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                        ast.ListComp, ast.SetComp)
            )
            class_name: Optional[str] = None
            if isinstance(value, ast.Call):
                chain = _attr_chain(value.func)
                if chain is not None:
                    leaf = chain[-1]
                    if leaf in _MUTABLE_CALLS:
                        mutable = True
                    elif leaf[:1].isupper():
                        class_name = leaf
            for name in targets:
                if name == "__all__":
                    continue
                info.globals[name] = GlobalInfo(
                    name=name,
                    line=stmt.lineno,
                    value=value,
                    is_mutable_container=mutable,
                    class_name=class_name,
                )

    # ------------------------------------------------------------------
    # import graph
    # ------------------------------------------------------------------
    def _index_imports(self) -> None:
        for info in self.modules.values():
            for node in ast.walk(info.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        self._add_import(info, alias.name)
                elif isinstance(node, ast.ImportFrom):
                    base = node.module or ""
                    if node.level:
                        # relative import: resolve against this module
                        pkg_parts = info.relname.split(".") if info.relname else []
                        if info.path.name != "__init__.py":
                            pkg_parts = pkg_parts[:-1]
                        drop = node.level - 1
                        if drop:
                            pkg_parts = pkg_parts[: len(pkg_parts) - drop]
                        prefix = ".".join(pkg_parts)
                        base = (
                            f"{self.package}.{prefix}.{base}".rstrip(".")
                            if prefix
                            else f"{self.package}.{base}".rstrip(".")
                        )
                    for alias in node.names:
                        self._add_import(info, f"{base}.{alias.name}")
                        self._add_import(info, base)

    def _add_import(self, info: ModuleInfo, dotted: str) -> None:
        """Record ``dotted`` if it names a module of this project."""
        prefix = self.package + "."
        if dotted == self.package:
            return
        if not dotted.startswith(prefix):
            return
        rel = dotted[len(prefix):]
        # longest known-module prefix of the dotted path wins, so
        # ``from repro.x.y import symbol`` resolves to module x.y
        parts = rel.split(".")
        for end in range(len(parts), 0, -1):
            candidate = ".".join(parts[:end])
            if candidate in self.modules:
                if candidate != info.relname:
                    info.imports.add(candidate)
                return

    def reachable_from(self, roots: Iterable[str]) -> Set[str]:
        """Transitive import closure (relnames), roots included.

        A root may be an exact relname or a suffix of one (so callers
        can say ``runtime.executors`` regardless of package nesting).
        """
        frontier: List[str] = []
        for root in roots:
            for relname in self.modules:
                if relname == root or relname.endswith("." + root):
                    frontier.append(relname)
        seen: Set[str] = set()
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self.modules[current].imports - seen)
        return seen

    # ------------------------------------------------------------------
    def resolve_class(self, name: str) -> List[ClassInfo]:
        """Every project class with this simple name (usually one)."""
        return list(self.classes_by_name.get(name, ()))


__all__ = [
    "ProjectModel",
    "ModuleInfo",
    "ClassInfo",
    "GlobalInfo",
    "LockDecl",
]
