"""Lock-discipline checker (``REPRO1xx``).

Protects the concurrency contracts of docs/runtime.md: state that a
class guards with a ``threading.Lock``/``RLock`` must *always* be
mutated with that lock held, and the project-wide lock acquisition
order must be cycle-free.

``REPRO101`` — an attribute is mutated at least once inside a
``with self.<lock>:`` block of its class (so it is *guarded* state)
and at least once outside one. ``__init__`` is exempt (the instance
is not yet shared), and a method whose name ends in ``_locked`` is
assumed to run with the lock held (the convention
``MatchPlanCache._reset_patterns_locked`` established).

``REPRO102`` — deadlock-shaped acquisitions: re-entering a
non-reentrant ``threading.Lock`` that is already held on the same
path, or a cycle in the directed graph of nested named-lock
acquisitions (lock A held while taking B somewhere, B held while
taking A elsewhere).

A ``# repro: noqa[CODE]`` on the finding's line — or on the enclosing
``def`` line, which suppresses the code for the whole function —
exempts intentional sites (e.g. ``_reinit_after_fork``, which runs in
a freshly forked single-threaded child by design).
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.analysis.base import register_checker
from repro.analysis.findings import Finding
from repro.analysis.model import (
    ClassInfo,
    ModuleInfo,
    ProjectModel,
    _attr_chain,
)

#: method calls that mutate their receiver in place
MUTATOR_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "move_to_end",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "sort",
        "reverse",
        "update",
    }
)

#: (module relname, line, enclosing-def line, symbol)
_Site = Tuple[str, int, int, str]


class _Mutation:
    __slots__ = ("attr", "line", "scope_line", "method", "locked")

    def __init__(
        self, attr: str, line: int, scope_line: int, method: str, locked: bool
    ):
        self.attr = attr
        self.line = line
        self.scope_line = scope_line
        self.method = method
        self.locked = locked


@register_checker
class LockDisciplineChecker:
    """REPRO101 guarded-attribute discipline + REPRO102 lock ordering."""

    name = "locks"
    codes = ("REPRO101", "REPRO102")

    def check(self, project: ProjectModel) -> Iterable[Finding]:
        findings: List[Finding] = []
        #: (outer token, inner token) -> first site
        edges: Dict[Tuple[str, str], _Site] = {}
        #: lock attr name -> classes declaring it (for token resolution)
        owners: Dict[str, List[ClassInfo]] = {}
        for info in project.modules.values():
            for cls in info.classes:
                for attr in cls.locks:
                    owners.setdefault(attr, []).append(cls)
        for info in project.modules.values():
            for cls in info.classes:
                if cls.locks or cls.conditions:
                    findings.extend(self._check_class(info, cls))
            self._scan_orderings(info, owners, edges, findings)
        findings.extend(self._cycle_findings(project, edges))
        return sorted(set(findings))

    # ------------------------------------------------------------------
    # REPRO101
    # ------------------------------------------------------------------
    def _check_class(
        self, info: ModuleInfo, cls: ClassInfo
    ) -> List[Finding]:
        mutations: List[_Mutation] = []
        for method in cls.methods():
            if method.name == "__init__":
                continue
            lock_held_always = method.name.endswith("_locked")
            self._walk_method(
                cls, method, method.body, frozenset(), lock_held_always,
                mutations,
            )
        guarded: Set[str] = {m.attr for m in mutations if m.locked}
        guarded -= set(cls.locks) | set(cls.conditions)
        out: List[Finding] = []
        for m in mutations:
            if m.locked or m.attr not in guarded:
                continue
            out.append(
                Finding(
                    path=info.display_path,
                    line=m.line,
                    code="REPRO101",
                    symbol=f"{cls.name}.{m.method}.{m.attr}",
                    message=(
                        f"'self.{m.attr}' is guarded by "
                        f"'{cls.name}'s lock elsewhere but mutated here "
                        f"without holding it (method '{m.method}')"
                    ),
                    checker=self.name,
                    scope_line=m.scope_line,
                )
            )
        return out

    def _walk_method(
        self,
        cls: ClassInfo,
        method: ast.FunctionDef,
        body: List[ast.stmt],
        held: FrozenSet[str],
        always: bool,
        mutations: List[_Mutation],
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # closures run later; lock state unknowable
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                acquired = set(held)
                for item in stmt.items:
                    lock = self._own_lock(cls, item.context_expr)
                    if lock is not None:
                        acquired.add(lock)
                self._record_stmt_mutations(
                    cls, method, stmt, held, always, mutations, heads_only=True
                )
                self._walk_method(
                    cls, method, stmt.body, frozenset(acquired), always,
                    mutations,
                )
                continue
            self._record_stmt_mutations(
                cls, method, stmt, held, always, mutations
            )
            for child_body in self._nested_bodies(stmt):
                self._walk_method(
                    cls, method, child_body, held, always, mutations
                )

    @staticmethod
    def _nested_bodies(stmt: ast.stmt) -> List[List[ast.stmt]]:
        out: List[List[ast.stmt]] = []
        for field_name in ("body", "orelse", "finalbody"):
            value = getattr(stmt, field_name, None)
            if isinstance(value, list) and value and isinstance(
                value[0], ast.stmt
            ):
                out.append(value)
        for handler in getattr(stmt, "handlers", ()) or ():
            out.append(handler.body)
        for case in getattr(stmt, "cases", ()) or ():
            out.append(case.body)
        return out

    def _record_stmt_mutations(
        self,
        cls: ClassInfo,
        method: ast.FunctionDef,
        stmt: ast.stmt,
        held: FrozenSet[str],
        always: bool,
        mutations: List[_Mutation],
        heads_only: bool = False,
    ) -> None:
        """Collect ``self.<attr>`` mutations in one statement.

        ``heads_only`` restricts the scan to the statement's own
        expressions (used for ``with`` headers, whose bodies are walked
        with the updated lock set).
        """
        locked = always or bool(held)

        def emit(attr: str, line: int) -> None:
            mutations.append(
                _Mutation(attr, line, method.lineno, method.name, locked)
            )

        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            targets = [stmt.target]
        for target in targets:
            for attr in self._self_attrs(target):
                emit(attr, stmt.lineno)
        # mutating method calls in the statement's *own* expressions;
        # nested suites re-enter via _walk_method with the correct lock
        # state, so the scan must never descend into child statements
        for root in self._head_exprs(stmt, heads_only):
            for node in ast.walk(root):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in MUTATOR_METHODS
                ):
                    chain = _attr_chain(func.value)
                    if chain and len(chain) >= 2 and chain[0] == "self":
                        emit(chain[1], node.lineno)

    @staticmethod
    def _head_exprs(stmt: ast.stmt, heads_only: bool) -> List[ast.AST]:
        """The statement's own expressions, excluding child suites."""
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return [item.context_expr for item in stmt.items]
        if isinstance(stmt, (ast.If, ast.While)):
            return [stmt.test]
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return [stmt.iter]
        if hasattr(stmt, "body") or hasattr(stmt, "cases"):
            return []  # other compound statements: suites re-enter later
        return [stmt]  # simple statement: no nested suites to avoid

    @staticmethod
    def _self_attrs(target: ast.expr) -> List[str]:
        """The ``X`` of every ``self.X...`` assignment/deletion target."""
        node = target
        if isinstance(node, (ast.Subscript, ast.Starred)):
            node = node.value
        chain = _attr_chain(node)
        if chain and len(chain) >= 2 and chain[0] == "self":
            return [chain[1]]
        out: List[str] = []
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                out.extend(LockDisciplineChecker._self_attrs(element))
        return out

    def _own_lock(
        self, cls: ClassInfo, expr: ast.expr
    ) -> Optional[str]:
        """Canonical lock attr acquired by ``with <expr>:`` on self."""
        chain = _attr_chain(expr)
        if chain and len(chain) == 2 and chain[0] == "self":
            return cls.lock_for(chain[1])
        return None

    # ------------------------------------------------------------------
    # REPRO102
    # ------------------------------------------------------------------
    def _scan_orderings(
        self,
        info: ModuleInfo,
        owners: Dict[str, List[ClassInfo]],
        edges: Dict[Tuple[str, str], _Site],
        findings: List[Finding],
    ) -> None:
        for func, cls in self._functions(info):
            self._walk_order(
                info, cls, func, func.body, [], owners, edges, findings
            )

    @staticmethod
    def _functions(
        info: ModuleInfo,
    ) -> List[Tuple[ast.FunctionDef, Optional[ClassInfo]]]:
        out: List[Tuple[ast.FunctionDef, Optional[ClassInfo]]] = []
        for cls in info.classes:
            for method in cls.methods():
                out.append((method, cls))
        for stmt in info.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                out.append((stmt, None))
        return out

    def _lock_token(
        self,
        cls: Optional[ClassInfo],
        expr: ast.expr,
        owners: Dict[str, List[ClassInfo]],
    ) -> Optional[Tuple[str, Optional[bool]]]:
        """(token, reentrant?) for a ``with`` context expression.

        Only expressions that name a known lock attribute produce a
        token; ``reentrant`` is None when the declaring class is
        ambiguous.
        """
        chain = _attr_chain(expr)
        if chain is None:
            return None
        attr = chain[-1]
        if cls is not None and len(chain) == 2 and chain[0] == "self":
            canonical = cls.lock_for(chain[1])
            if canonical is not None:
                decl = cls.locks.get(canonical)
                return (
                    f"{cls.name}.{canonical}",
                    decl.reentrant if decl else True,  # Condition: RLock
                )
            return None
        declaring = owners.get(attr, [])
        if len(declaring) == 1:
            decl = declaring[0].locks[attr]
            return (f"{declaring[0].name}.{attr}", decl.reentrant)
        if declaring:
            # ambiguous owner: the expression text is the token
            return (ast.unparse(expr), None)
        return None

    def _walk_order(
        self,
        info: ModuleInfo,
        cls: Optional[ClassInfo],
        func: ast.FunctionDef,
        body: List[ast.stmt],
        held: List[Tuple[str, Optional[bool]]],
        owners: Dict[str, List[ClassInfo]],
        edges: Dict[Tuple[str, str], _Site],
        findings: List[Finding],
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                new_held = list(held)
                for item in stmt.items:
                    token = self._lock_token(cls, item.context_expr, owners)
                    if token is None:
                        continue
                    name, reentrant = token
                    held_names = [t[0] for t in new_held]
                    if name in held_names and reentrant is False:
                        qual = (
                            f"{cls.name}.{func.name}" if cls else func.name
                        )
                        findings.append(
                            Finding(
                                path=info.display_path,
                                line=stmt.lineno,
                                code="REPRO102",
                                symbol=f"{qual}.{name}",
                                message=(
                                    f"non-reentrant lock '{name}' is "
                                    f"acquired again while already held "
                                    f"on this path (deadlock)"
                                ),
                                checker=self.name,
                                scope_line=func.lineno,
                            )
                        )
                    for outer_name, _ in new_held:
                        if outer_name != name:
                            edges.setdefault(
                                (outer_name, name),
                                (
                                    info.relname,
                                    stmt.lineno,
                                    func.lineno,
                                    f"{cls.name}.{func.name}"
                                    if cls
                                    else func.name,
                                ),
                            )
                    new_held.append((name, reentrant))
                self._walk_order(
                    info, cls, func, stmt.body, new_held, owners, edges,
                    findings,
                )
                continue
            for child_body in self._nested_bodies(stmt):
                self._walk_order(
                    info, cls, func, child_body, held, owners, edges,
                    findings,
                )

    def _cycle_findings(
        self,
        project: ProjectModel,
        edges: Dict[Tuple[str, str], _Site],
    ) -> List[Finding]:
        """Report every acquisition edge that participates in a cycle."""
        graph: Dict[str, Set[str]] = {}
        for outer, inner in edges:
            graph.setdefault(outer, set()).add(inner)
            graph.setdefault(inner, set())
        # iterative DFS reachability: edge (a, b) is cyclic iff a is
        # reachable from b
        reach: Dict[str, Set[str]] = {}
        for start in graph:
            seen: Set[str] = set()
            stack = [start]
            while stack:
                node = stack.pop()
                for nxt in graph.get(node, ()):
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append(nxt)
            reach[start] = seen
        out: List[Finding] = []
        for (outer, inner), (relname, line, scope_line, qual) in edges.items():
            if outer in reach.get(inner, ()):  # b ->* a: cycle through (a,b)
                info = project.modules[relname]
                out.append(
                    Finding(
                        path=info.display_path,
                        line=line,
                        code="REPRO102",
                        symbol=f"{qual}.{outer}->{inner}",
                        message=(
                            f"lock '{inner}' is acquired while holding "
                            f"'{outer}', but the opposite order also "
                            f"exists in the project (deadlock cycle)"
                        ),
                        checker=self.name,
                        scope_line=scope_line,
                    )
                )
        return out


__all__ = ["LockDisciplineChecker", "MUTATOR_METHODS"]
