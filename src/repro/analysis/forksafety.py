"""Fork / worker-process safety checker (``REPRO2xx``).

The fork-pool and cluster workers (``runtime/executors.py``,
``runtime/cluster/worker.py``) fork or run library code in
long-lived worker processes. Module-level mutable state crossing that
boundary is the classic source of silent parity breaks: a forked
child inherits a snapshot (possibly mid-mutation, possibly with a
held lock), and divergent per-process caches can change enumeration
behavior. The codebase's sanctioned pattern is the fork-safe
``PLAN_CACHE``: a lock-guarded singleton whose module registers an
``os.register_at_fork`` hook to reinitialize it in the child
(docs/matching.md).

``REPRO201`` — a module-level mutable container (dict/list/set
literal or constructor) defined in a module reachable from the
fork/worker entry points is *mutated* by code in that module
(subscript assignment, ``global`` rebinding, or an in-place mutator
call). Read-only tables are fine; mutation is what diverges across
processes.

``REPRO202`` — a module-level singleton of a lock-declaring class,
in a worker-reachable module, whose defining module never calls
``os.register_at_fork``: the forked child can inherit a held lock and
deadlock, or inherit torn state. ``PLAN_CACHE`` is the compliant
exemplar.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Sequence, Set, Tuple

from repro.analysis.base import register_checker
from repro.analysis.findings import Finding
from repro.analysis.locks import MUTATOR_METHODS
from repro.analysis.model import ModuleInfo, ProjectModel, _attr_chain

#: default fork/worker entry modules (relname suffixes)
DEFAULT_WORKER_ROOTS: Tuple[str, ...] = (
    "runtime.executors",
    "runtime.cluster.worker",
)


@register_checker
class ForkSafetyChecker:
    """REPRO201 mutable-global mutation + REPRO202 missing at-fork hook."""

    name = "forksafety"
    codes = ("REPRO201", "REPRO202")

    def __init__(
        self, worker_roots: Sequence[str] = DEFAULT_WORKER_ROOTS
    ) -> None:
        self.worker_roots = tuple(worker_roots)

    def check(self, project: ProjectModel) -> Iterable[Finding]:
        reachable = project.reachable_from(self.worker_roots)
        findings: List[Finding] = []
        for relname in sorted(reachable):
            info = project.modules[relname]
            findings.extend(self._check_module(project, info))
        return sorted(set(findings))

    # ------------------------------------------------------------------
    def _check_module(
        self, project: ProjectModel, info: ModuleInfo
    ) -> List[Finding]:
        out: List[Finding] = []
        mutable_names = {
            name
            for name, g in info.globals.items()
            if g.is_mutable_container
        }
        at_fork_registered = self._at_fork_names(info)
        # REPRO202: lock-holding singletons need an at-fork hook
        for name, g in info.globals.items():
            if g.class_name is None:
                continue
            declaring = [
                cls
                for cls in project.resolve_class(g.class_name)
                if cls.locks or cls.conditions
            ]
            if not declaring:
                continue
            if name not in at_fork_registered:
                out.append(
                    Finding(
                        path=info.display_path,
                        line=g.line,
                        code="REPRO202",
                        symbol=f"{info.relname}.{name}",
                        message=(
                            f"module-level singleton '{name}' of "
                            f"lock-declaring class '{g.class_name}' is "
                            f"reachable from fork/worker code but its "
                            f"module registers no os.register_at_fork "
                            f"reinitialization hook"
                        ),
                        checker=self.name,
                    )
                )
        if not mutable_names:
            return out
        # REPRO201: mutation sites of module-level mutable containers,
        # attributed to their innermost enclosing function
        self._visit_scope(
            info, info.tree.body, mutable_names, 0, "<module>", out
        )
        return out

    def _visit_scope(
        self,
        info: ModuleInfo,
        body: List[ast.stmt],
        mutable_names: Set[str],
        scope_line: int,
        qual: str,
        out: List[Finding],
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._visit_scope(
                    info, stmt.body, mutable_names, stmt.lineno,
                    stmt.name, out,
                )
                continue
            if isinstance(stmt, ast.ClassDef):
                self._visit_scope(
                    info, stmt.body, mutable_names, scope_line, qual, out
                )
                continue
            for node in ast.walk(stmt):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    # only reachable via expression-nested defs; the
                    # statement-level cases recursed above
                    continue
                out.extend(
                    self._mutations_in(
                        info, node, mutable_names, scope_line, qual
                    )
                )

    @staticmethod
    def _at_fork_names(info: ModuleInfo) -> Set[str]:
        """Global names referenced in ``os.register_at_fork(...)`` calls."""
        names: Set[str] = set()
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if chain is None or chain[-1] != "register_at_fork":
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                for sub in ast.walk(arg):
                    if isinstance(sub, ast.Name):
                        names.add(sub.id)
                    elif isinstance(sub, ast.Attribute):
                        sub_chain = _attr_chain(sub)
                        if sub_chain:
                            names.add(sub_chain[0])
        return names

    def _mutations_in(
        self,
        info: ModuleInfo,
        node: ast.AST,
        mutable_names: Set[str],
        scope_line: int,
        qual: str,
    ) -> List[Finding]:
        out: List[Finding] = []

        def emit(name: str, line: int, how: str) -> None:
            out.append(
                Finding(
                    path=info.display_path,
                    line=line,
                    code="REPRO201",
                    symbol=f"{qual}.{name}",
                    message=(
                        f"module-level mutable global '{name}' is "
                        f"{how} in '{qual}', which runs on a "
                        f"fork/worker-reachable path; route through a "
                        f"fork-safe guarded API (see PLAN_CACHE) or "
                        f"justify with a noqa/baseline entry"
                    ),
                    checker=self.name,
                    scope_line=scope_line,
                )
            )

        if isinstance(node, ast.Global):
            for name in node.names:
                if name in mutable_names:
                    emit(name, node.lineno, "rebound via 'global'")
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                base = target
                if isinstance(base, ast.Subscript):
                    base = base.value
                if isinstance(base, ast.Name) and base.id in mutable_names:
                    if isinstance(target, ast.Subscript):
                        emit(base.id, node.lineno, "written by subscript")
                    # plain module-level re-assignment is the definition
                    # itself; function-level shadowing without ``global``
                    # creates a local and is not a mutation
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                base = target
                if isinstance(base, ast.Subscript):
                    base = base.value
                if isinstance(base, ast.Name) and base.id in mutable_names:
                    emit(base.id, node.lineno, "deleted from")
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in MUTATOR_METHODS
                and isinstance(func.value, ast.Name)
                and func.value.id in mutable_names
            ):
                emit(
                    func.value.id,
                    node.lineno,
                    f"mutated in place via .{func.attr}()",
                )
        return out


__all__ = ["ForkSafetyChecker", "DEFAULT_WORKER_ROOTS"]
