"""Determinism checker (``REPRO3xx``).

The system's headline guarantee is bit-identical ``ViewSet``s across
Serial/ForkPool/Sharded/Distributed executors and across the
reference/fast matching backends. Three syntactic patterns break that
guarantee silently:

``REPRO301`` — iterating an unordered ``set``/``frozenset`` expression
while appending to (or yielding into) an ordered accumulator, in a
determinism-critical package (``matching``, ``core``, ``mining``,
``query``, ``graphs``, ``runtime`` by default). Set iteration order
varies across processes (hash randomization) — exactly the executors'
fork boundary. Wrap the iterable in ``sorted(...)`` or iterate an
ordered structure.

``REPRO302`` — process-global randomness: calls through the module
state of :mod:`random` or ``numpy.random`` (``random.choice``,
``np.random.rand``, ``np.random.seed``...). Every sanctioned use goes
through a seeded ``np.random.default_rng(seed)`` / ``Generator``
passed explicitly.

``REPRO303`` — ``id(...)`` or ``time.time()`` flowing into a cache
key or sort key: a dict subscript/``get``/``setdefault``/``pop``
argument, a ``key=`` callable of ``sorted``/``min``/``max``/``sort``,
or an assignment to a ``*key*``-named variable. ``id()`` values are
reused after GC and differ across processes; wall-clock keys are
never reproducible. Content-defined keys (``graph_content_key``,
WL keys) are the sanctioned alternative (docs/matching.md).

``REPRO304`` — ``time.time()`` flowing into deadline or timeout
arithmetic: added to / subtracted from a ``timeout``/``deadline``/
``expires``/``budget``-named operand, compared against one, or
assigned to one. Wall clocks jump under NTP slew and DST, silently
corrupting the budget; every budget in the runtime is measured on
``time.monotonic()`` (``repro.runtime.deadline.Deadline``). Fires in
every package, not just the hot ones — a wall-clock deadline is
wrong anywhere.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.base import register_checker
from repro.analysis.findings import Finding
from repro.analysis.model import ModuleInfo, ProjectModel, _attr_chain

#: subpackages whose enumeration order feeds the parity contracts
DEFAULT_HOT_PACKAGES: Tuple[str, ...] = (
    "matching",
    "core",
    "mining",
    "query",
    "graphs",
    "runtime",
)

#: ``np.random`` attributes that are explicitly seeded constructors
_SEEDED_NP_RANDOM = frozenset({"default_rng", "Generator", "SeedSequence"})

#: module-state functions of the stdlib ``random`` module
_GLOBAL_RANDOM_FNS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "sample",
        "shuffle",
        "uniform",
        "gauss",
        "seed",
        "getrandbits",
    }
)

_DICT_KEY_METHODS = frozenset({"get", "setdefault", "pop"})

#: name fragments that mark an operand as deadline/timeout arithmetic
_DEADLINE_TOKENS = ("timeout", "deadline", "expire", "expiry", "budget")


def _is_wall_clock(node: ast.AST) -> bool:
    """True for a ``time.time()`` call (any alias chain ending there)."""
    hit = _volatile_call(node)
    return hit == "time.time"


def _contains_wall_clock(root: ast.AST) -> bool:
    return any(_is_wall_clock(node) for node in ast.walk(root))


def _deadline_named(root: ast.AST) -> bool:
    """Any Name/Attribute under ``root`` carrying a deadline token."""
    for node in ast.walk(root):
        if isinstance(node, ast.Name):
            label = node.id.lower()
        elif isinstance(node, ast.Attribute):
            label = node.attr.lower()
        else:
            continue
        if any(token in label for token in _DEADLINE_TOKENS):
            return True
    return False


def _is_set_expr(node: ast.expr) -> bool:
    """Syntactically certain to evaluate to an unordered set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


def _volatile_call(node: ast.AST) -> Optional[str]:
    """"id" / "time.time" if node is such a call, else None."""
    if not isinstance(node, ast.Call):
        return None
    chain = _attr_chain(node.func)
    if chain == ("id",) and len(node.args) == 1:
        return "id"
    if chain is not None and chain[-2:] == ("time", "time"):
        return "time.time"
    if chain == ("time",) and not node.args:
        return "time.time"
    return None


def _find_volatile(root: ast.AST) -> Optional[Tuple[str, int]]:
    for node in ast.walk(root):
        kind = _volatile_call(node)
        if kind is not None:
            return kind, node.lineno
    return None


@register_checker
class DeterminismChecker:
    """REPRO301 set-order leaks, REPRO302 global RNG, REPRO303 id/time
    keys, REPRO304 wall-clock deadline arithmetic."""

    name = "determinism"
    codes = ("REPRO301", "REPRO302", "REPRO303", "REPRO304")

    def __init__(
        self, hot_packages: Sequence[str] = DEFAULT_HOT_PACKAGES
    ) -> None:
        self.hot_packages = tuple(hot_packages)

    def check(self, project: ProjectModel) -> Iterable[Finding]:
        findings: List[Finding] = []
        for info in project.modules.values():
            hot = info.subpackage() in self.hot_packages or (
                info.relname.split(".")[0] in self.hot_packages
            )
            scope_stack: List[Tuple[int, str]] = []
            self._visit(info, info.tree.body, hot, scope_stack, findings)
        return sorted(set(findings))

    # ------------------------------------------------------------------
    def _visit(
        self,
        info: ModuleInfo,
        body: List[ast.stmt],
        hot: bool,
        scope_stack: List[Tuple[int, str]],
        findings: List[Finding],
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scope_stack.append((stmt.lineno, stmt.name))
                self._visit(info, stmt.body, hot, scope_stack, findings)
                scope_stack.pop()
                continue
            if isinstance(stmt, ast.ClassDef):
                self._visit(info, stmt.body, hot, scope_stack, findings)
                continue
            scope_line = scope_stack[-1][0] if scope_stack else 0
            qual = scope_stack[-1][1] if scope_stack else "<module>"
            if hot and isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._check_set_loop(
                    info, stmt, scope_line, qual, findings
                )
            for node in ast.walk(stmt):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                self._check_expr(
                    info, node, hot, scope_line, qual, findings
                )
            for child in self._suites(stmt):
                self._visit(info, child, hot, scope_stack, findings)

    @staticmethod
    def _suites(stmt: ast.stmt) -> List[List[ast.stmt]]:
        out: List[List[ast.stmt]] = []
        for name in ("body", "orelse", "finalbody"):
            value = getattr(stmt, name, None)
            if isinstance(value, list) and value and isinstance(
                value[0], ast.stmt
            ):
                out.append(value)
        for handler in getattr(stmt, "handlers", ()) or ():
            out.append(handler.body)
        for case in getattr(stmt, "cases", ()) or ():
            out.append(case.body)
        return out

    # ------------------------------------------------------------------
    # REPRO301
    # ------------------------------------------------------------------
    def _check_set_loop(
        self,
        info: ModuleInfo,
        stmt: ast.stmt,
        scope_line: int,
        qual: str,
        findings: List[Finding],
    ) -> None:
        if not _is_set_expr(stmt.iter):
            return
        accumulates = False
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                accumulates = True
                break
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("append", "extend", "insert")
            ):
                accumulates = True
                break
        if accumulates:
            findings.append(
                Finding(
                    path=info.display_path,
                    line=stmt.lineno,
                    code="REPRO301",
                    symbol=f"{qual}.set-iter",
                    message=(
                        "iteration over an unordered set feeds an "
                        "ordered accumulator; wrap the iterable in "
                        "sorted(...) to keep enumeration deterministic"
                    ),
                    checker=self.name,
                    scope_line=scope_line,
                )
            )

    # ------------------------------------------------------------------
    # REPRO302 / REPRO303
    # ------------------------------------------------------------------
    def _check_expr(
        self,
        info: ModuleInfo,
        node: ast.AST,
        hot: bool,
        scope_line: int,
        qual: str,
        findings: List[Finding],
    ) -> None:
        def emit(code: str, line: int, symbol: str, message: str) -> None:
            findings.append(
                Finding(
                    path=info.display_path,
                    line=line,
                    code=code,
                    symbol=symbol,
                    message=message,
                    checker=self.name,
                    scope_line=scope_line,
                )
            )

        # listcomp over a set expression: same leak as the for-loop form
        if hot and isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            for gen in node.generators:
                if _is_set_expr(gen.iter):
                    emit(
                        "REPRO301",
                        node.lineno,
                        f"{qual}.set-comp",
                        "comprehension over an unordered set builds an "
                        "ordered sequence; wrap the iterable in "
                        "sorted(...)",
                    )
        if isinstance(node, ast.Call):
            chain = _attr_chain(node.func)
            if chain is not None:
                self._check_randomness(emit, node, chain, qual)
                self._check_key_contexts(emit, node, chain, qual)
        # d[id(x)] — a subscript key built from a volatile value
        if isinstance(node, ast.Subscript):
            hit = _find_volatile(node.slice)
            if hit is not None:
                kind, line = hit
                emit(
                    "REPRO303",
                    line,
                    f"{qual}.dictkey.{kind}",
                    f"'{kind}()' used as a subscript key; id() values "
                    f"are recycled after GC and never stable across "
                    f"processes — key on content instead",
                )
        # ``key = id(obj)`` / ``cache_key = (time.time(), ...)``
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            named_key = any(
                isinstance(t, ast.Name) and "key" in t.id.lower()
                for t in targets
            )
            if named_key and node.value is not None:
                hit = _find_volatile(node.value)
                if hit is not None:
                    kind, line = hit
                    emit(
                        "REPRO303",
                        line,
                        f"{qual}.{kind}",
                        f"'{kind}()' flows into a key-named variable; "
                        f"id() values are recycled after GC and differ "
                        f"across processes — use a content-defined key",
                    )
            # ``deadline = time.time() + budget`` — a wall-clock budget
            named_deadline = any(_deadline_named(t) for t in targets)
            if (
                named_deadline
                and node.value is not None
                and _contains_wall_clock(node.value)
            ):
                emit(
                    "REPRO304",
                    node.value.lineno,
                    f"{qual}.wallclock-deadline",
                    "'time.time()' assigned to a deadline/timeout "
                    "variable; wall clocks jump under NTP slew — "
                    "measure budgets on time.monotonic() "
                    "(repro.runtime.deadline.Deadline)",
                )
        # ``time.time() + timeout`` / ``time.time() > deadline``
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Add, ast.Sub)
        ):
            sides = (node.left, node.right)
            if any(_contains_wall_clock(s) for s in sides) and any(
                _deadline_named(s) for s in sides
            ):
                emit(
                    "REPRO304",
                    node.lineno,
                    f"{qual}.wallclock-deadline",
                    "'time.time()' in deadline/timeout arithmetic; "
                    "wall clocks jump under NTP slew — measure "
                    "budgets on time.monotonic() "
                    "(repro.runtime.deadline.Deadline)",
                )
        if isinstance(node, ast.Compare):
            sides = [node.left, *node.comparators]
            if any(_contains_wall_clock(s) for s in sides) and any(
                _deadline_named(s) for s in sides
            ):
                emit(
                    "REPRO304",
                    node.lineno,
                    f"{qual}.wallclock-deadline",
                    "'time.time()' compared against a deadline/timeout "
                    "value; wall clocks jump under NTP slew — measure "
                    "budgets on time.monotonic() "
                    "(repro.runtime.deadline.Deadline)",
                )

    def _check_randomness(self, emit, node: ast.Call, chain, qual) -> None:
        # numpy.random.<fn> / np.random.<fn> except the seeded constructors
        if (
            len(chain) >= 3
            and chain[-2] == "random"
            and chain[0] in ("np", "numpy")
            and chain[-1] not in _SEEDED_NP_RANDOM
        ):
            emit(
                "REPRO302",
                node.lineno,
                f"{qual}.np.random.{chain[-1]}",
                f"'np.random.{chain[-1]}' uses numpy's process-global "
                f"RNG; pass a seeded np.random.default_rng(seed) "
                f"Generator instead",
            )
        # stdlib random module state: random.<fn>(...)
        if (
            len(chain) == 2
            and chain[0] == "random"
            and chain[1] in _GLOBAL_RANDOM_FNS
        ):
            emit(
                "REPRO302",
                node.lineno,
                f"{qual}.random.{chain[1]}",
                f"'random.{chain[1]}' draws from the process-global "
                f"RNG; use a seeded random.Random(seed) or numpy "
                f"Generator instead",
            )

    def _check_key_contexts(self, emit, node: ast.Call, chain, qual) -> None:
        # sorted(..., key=lambda ...: id(...)) and friends
        if chain[-1] in ("sorted", "min", "max", "sort"):
            for kw in node.keywords:
                if kw.arg != "key":
                    continue
                hit = _find_volatile(kw.value)
                if hit is not None:
                    kind, line = hit
                    emit(
                        "REPRO303",
                        line,
                        f"{qual}.sortkey.{kind}",
                        f"'{kind}()' inside a sort key makes the order "
                        f"process-dependent; sort by content instead",
                    )
        # d.get(id(x)) / d.setdefault(id(x), ...) / d.pop(id(x))
        if chain[-1] in _DICT_KEY_METHODS and node.args:
            hit = _find_volatile(node.args[0])
            if hit is not None:
                kind, line = hit
                emit(
                    "REPRO303",
                    line,
                    f"{qual}.dictkey.{kind}",
                    f"'{kind}()' used as a mapping key; id() values are "
                    f"recycled after GC and never stable across "
                    f"processes — key on content instead",
                )


__all__ = ["DeterminismChecker", "DEFAULT_HOT_PACKAGES"]
