"""repro — reproduction of GVEX: View-based Explanations for GNNs.

**The supported public surface is** :mod:`repro.api` (see
``docs/api.md``): the :class:`~repro.api.ExplanationService` facade,
the explainer registry, the composable query DSL, and the HTTP layer.
``ExplanationService`` and ``Q`` are re-exported here lazily for
convenience.

Internals, for the curious:

* :class:`repro.graphs.Graph`, :class:`repro.graphs.GraphDatabase` —
  attributed graph data model.
* :class:`repro.gnn.GnnClassifier` — from-scratch numpy GNN classifier.
* :class:`repro.config.GvexConfig` — the paper's configuration
  ``C = (θ, r, {[b_l, u_l]})`` plus γ and operating modes.
* :func:`repro.core.explain_database` / :class:`repro.core.ApproxGvex` /
  :class:`repro.core.StreamGvex` — the GVEX algorithms.
* :mod:`repro.explainers` — baselines (GNNExplainer, SubgraphX, GStarX,
  GCFExplainer) behind a common interface.
* :mod:`repro.datasets` — synthetic analogues of the paper's datasets.
* :mod:`repro.metrics` — Fidelity±, Sparsity, Compression, Edge loss.
"""

from repro.config import CoverageConstraint, GvexConfig
from repro.graphs import (
    ExplanationSubgraph,
    ExplanationView,
    Graph,
    GraphDatabase,
    Pattern,
    ViewSet,
)

__version__ = "0.2.0"

#: facade symbols resolved lazily so ``import repro`` stays light
_API_EXPORTS = ("ExplanationService", "Q", "build_explainer", "register_explainer")


def __getattr__(name: str):
    if name in _API_EXPORTS:
        from repro import api

        return getattr(api, name)
    raise AttributeError(  # repro: noqa[REPRO402] - __getattr__ protocol
        f"module 'repro' has no attribute {name!r}"
    )


def __dir__():
    return sorted(list(globals()) + list(_API_EXPORTS))


__all__ = [
    "Graph",
    "GraphDatabase",
    "Pattern",
    "ExplanationSubgraph",
    "ExplanationView",
    "ViewSet",
    "GvexConfig",
    "CoverageConstraint",
    "ExplanationService",
    "Q",
    "build_explainer",
    "register_explainer",
    "__version__",
]
