"""repro — reproduction of GVEX: View-based Explanations for GNNs.

Public API (SIGMOD 2024, Chen et al.):

* :class:`repro.graphs.Graph`, :class:`repro.graphs.GraphDatabase` —
  attributed graph data model.
* :class:`repro.gnn.GnnClassifier` — from-scratch numpy GNN classifier.
* :class:`repro.config.GvexConfig` — the paper's configuration
  ``C = (θ, r, {[b_l, u_l]})`` plus γ and operating modes.
* :func:`repro.core.explain_database` / :class:`repro.core.ApproxGvex` /
  :class:`repro.core.StreamGvex` — the GVEX algorithms.
* :mod:`repro.explainers` — baselines (GNNExplainer, SubgraphX, GStarX,
  GCFExplainer) behind a common interface.
* :mod:`repro.datasets` — synthetic analogues of the paper's datasets.
* :mod:`repro.metrics` — Fidelity±, Sparsity, Compression, Edge loss.
"""

from repro.config import CoverageConstraint, GvexConfig
from repro.graphs import (
    ExplanationSubgraph,
    ExplanationView,
    Graph,
    GraphDatabase,
    Pattern,
    ViewSet,
)

__version__ = "0.1.0"

__all__ = [
    "Graph",
    "GraphDatabase",
    "Pattern",
    "ExplanationSubgraph",
    "ExplanationView",
    "ViewSet",
    "GvexConfig",
    "CoverageConstraint",
    "__version__",
]
