"""Benchmark harness: experiment drivers and result reporting."""

from repro.bench.harness import (
    METHOD_ORDER,
    SweepResult,
    TimedRun,
    bench_config,
    fidelity_sweep,
    label_group_indices,
    majority_label,
    make_explainers,
    timed_explain,
)
from repro.bench.reporting import render_series, render_table, results_dir, save_result

__all__ = [
    "METHOD_ORDER",
    "bench_config",
    "make_explainers",
    "label_group_indices",
    "majority_label",
    "SweepResult",
    "fidelity_sweep",
    "TimedRun",
    "timed_explain",
    "render_table",
    "render_series",
    "save_result",
    "results_dir",
]
