"""Experiment harness shared by the per-figure benchmarks.

Centralizes: explainer construction with bench-friendly budgets, label
group selection, fidelity/sparsity sweeps over the ``u_l`` knob, and
timed runs with a soft timeout (the paper marks competitors ">24h" on
workloads they cannot finish; we do the same with a much smaller
budget).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.api.registry import build_explainer
from repro.config import GvexConfig
from repro.datasets.zoo import TrainedClassifier
from repro.explainers.base import Explainer
from repro.graphs.view import ExplanationSubgraph
from repro.metrics.conciseness import sparsity
from repro.metrics.fidelity import fidelity_scores

#: canonical method order used across all figures
METHOD_ORDER = ("AG", "SG", "GE", "SX", "GX", "GCF")

#: per-dataset (theta, radius, gamma) from grid search — §6.1: "The
#: parameter setting is optimized by grid search" (the paper reports
#: (0.08, 0.25), gamma=0.5 for MUT; multi-class ENZ wants a higher
#: influence threshold so selections concentrate on class evidence)
TUNED_PARAMS: Dict[str, Tuple[float, float, float]] = {
    "mutagenicity": (0.08, 0.25, 0.5),
    "enzymes": (0.15, 0.4, 0.5),
}
DEFAULT_PARAMS: Tuple[float, float, float] = (0.08, 0.3, 0.5)


def tuned_params(dataset: str) -> Tuple[float, float, float]:
    """Grid-searched (theta, radius, gamma) for a dataset."""
    return TUNED_PARAMS.get(dataset, DEFAULT_PARAMS)


def bench_config(
    upper: int = 8,
    theta: float = 0.08,
    radius: float = 0.3,
    gamma: float = 0.5,
    dataset: Optional[str] = None,
) -> GvexConfig:
    """The default GVEX configuration for benches (per-graph scope).

    Passing ``dataset`` applies its grid-searched parameters instead of
    the explicit ``theta``/``radius``/``gamma``.
    """
    if dataset is not None:
        theta, radius, gamma = tuned_params(dataset)
    return GvexConfig(theta=theta, radius=radius, gamma=gamma).with_bounds(0, upper)


#: bench-scale budget overrides, applied uniformly through the registry
BENCH_BUDGETS: Dict[str, Dict[str, int]] = {
    "GE": dict(epochs=50),
    "SX": dict(rollouts=15, shapley_samples=4),
    "GX": dict(coalition_samples=16),
}


def make_explainers(
    trained: TrainedClassifier,
    methods: Sequence[str] = METHOD_ORDER,
    config: Optional[GvexConfig] = None,
    seed: int = 0,
) -> Dict[str, Explainer]:
    """Build the requested explainers with bench-scale budgets.

    Every method — GVEX and baselines alike — is constructed through
    the :mod:`repro.api.registry`, so the sweep and a production
    service build identical explainers.
    """
    config = config if config is not None else bench_config()
    return {
        m: build_explainer(
            m, trained.model, config=config, seed=seed, **BENCH_BUDGETS.get(m, {})
        )
        for m in methods
    }


def group_plan(
    trained: TrainedClassifier,
    method: str,
    label: int,
    indices: Sequence[int],
    config: GvexConfig,
    seed: int = 0,
    shard_size: Optional[int] = None,
):
    """An :class:`~repro.runtime.ExplainPlan` restricted to one group.

    The harness schedules every sweep through :mod:`repro.runtime`
    like the facade/CLI/HTTP entry points do — same shard geometry,
    same warm :class:`~repro.runtime.WorkerState`, with bench-scale
    budget overrides from :data:`BENCH_BUDGETS`.
    """
    from repro.runtime import build_plan

    predicted: List[Optional[int]] = [None] * len(trained.db)
    for i in indices:
        predicted[i] = label
    return build_plan(
        trained.db,
        trained.model,
        config,
        labels=[label],
        predicted=predicted,
        method=method,
        seed=seed,
        explainer_kwargs=BENCH_BUDGETS.get(method, {}),
        shard_size=shard_size,
    )


def explain_group(
    trained: TrainedClassifier,
    method: str,
    label: int,
    indices: Sequence[int],
    config: GvexConfig,
    seed: int = 0,
    processes: int = 1,
) -> Dict[int, ExplanationSubgraph]:
    """Explain one label group through the runtime scheduler.

    Returns ``{graph_index: explanation}`` like
    ``Explainer.explain_database`` did, so the fidelity metrics
    consume it unchanged.
    """
    from repro.runtime import run_tasks

    plan = group_plan(trained, method, label, indices, config, seed=seed)
    return {
        index: subgraph
        for index, _, subgraph, _ in run_tasks(plan, processes=processes)
        if subgraph is not None
    }


def label_group_indices(
    trained: TrainedClassifier, label: int, limit: Optional[int] = None
) -> List[int]:
    """Indices of graphs the model assigns ``label`` (the group G^l)."""
    from repro.core.approx import database_predictions

    out = []
    for i, pred in enumerate(database_predictions(trained.model, trained.db)):
        if pred == label:
            out.append(i)
        if limit is not None and len(out) >= limit:
            break
    return out


def majority_label(trained: TrainedClassifier) -> int:
    """The most common predicted label (the 'label of interest')."""
    from repro.core.approx import database_predictions

    counts: Dict[int, int] = {}
    for pred in database_predictions(trained.model, trained.db):
        if pred is not None:
            counts[pred] = counts.get(pred, 0) + 1
    return max(counts, key=lambda l: (counts[l], -l))


@dataclass
class SweepResult:
    """Fidelity/sparsity of one method across the u_l sweep."""

    method: str
    fidelity_plus: List[float] = field(default_factory=list)
    fidelity_minus: List[float] = field(default_factory=list)
    sparsity: List[float] = field(default_factory=list)
    seconds: List[float] = field(default_factory=list)


def fidelity_sweep(
    trained: TrainedClassifier,
    methods: Sequence[str],
    upper_bounds: Sequence[int],
    label: Optional[int] = None,
    graphs_per_method: int = 6,
    seed: int = 0,
) -> Dict[str, SweepResult]:
    """Figures 5-6 core loop: fidelity vs ``u_l`` per method."""
    label = label if label is not None else majority_label(trained)
    indices = label_group_indices(trained, label, limit=graphs_per_method)
    results: Dict[str, SweepResult] = {m: SweepResult(m) for m in methods}
    for upper in upper_bounds:
        config = bench_config(upper=upper, dataset=trained.dataset)
        for method in methods:
            start = time.perf_counter()
            expls = explain_group(
                trained, method, label, indices, config, seed=seed
            )
            elapsed = time.perf_counter() - start
            plus, minus = fidelity_scores(trained.model, trained.db, expls)
            results[method].fidelity_plus.append(plus)
            results[method].fidelity_minus.append(minus)
            results[method].sparsity.append(sparsity(trained.db, expls))
            results[method].seconds.append(elapsed)
    return results


@dataclass
class TimedRun:
    """Outcome of one timed method run (Fig. 9)."""

    method: str
    seconds: float
    timed_out: bool
    explanations: int


def timed_explain(
    trained: TrainedClassifier,
    method: str,
    upper: int = 8,
    label: Optional[int] = None,
    graphs: Optional[int] = None,
    budget_seconds: float = 120.0,
    seed: int = 0,
) -> TimedRun:
    """Run one method over a label group with a per-graph soft timeout.

    The budget is checked between graphs (Python cannot preempt a
    single explanation call), mirroring how the paper reports ">24h"
    for methods that cannot finish a workload.
    """
    from repro.runtime import WorkerState

    label = label if label is not None else majority_label(trained)
    indices = label_group_indices(trained, label, limit=graphs)
    # shard_size=1 keeps the soft timeout checkable between graphs
    # while still scheduling through the runtime's warm worker state
    plan = group_plan(
        trained, method, label, indices, bench_config(upper=upper),
        seed=seed, shard_size=1,
    )
    state = WorkerState.from_plan(plan)
    state.explainer  # construction stays outside the timed region
    start = time.perf_counter()
    produced = 0
    timed_out = False
    for shard in plan.shards:
        if time.perf_counter() - start > budget_seconds:
            timed_out = True
            break
        for _, _, expl, _ in state.run_shard(shard):
            produced += expl is not None
    return TimedRun(
        method=method,
        seconds=time.perf_counter() - start,
        timed_out=timed_out,
        explanations=produced,
    )


__all__ = [
    "METHOD_ORDER",
    "BENCH_BUDGETS",
    "bench_config",
    "make_explainers",
    "group_plan",
    "explain_group",
    "label_group_indices",
    "majority_label",
    "SweepResult",
    "fidelity_sweep",
    "TimedRun",
    "timed_explain",
]
