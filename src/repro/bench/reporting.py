"""Result rendering and persistence for the benchmark harness.

Every experiment writes its table(s) to ``results/<experiment>.txt`` so
EXPERIMENTS.md can cite concrete numbers, and returns the rendered text
for assertions.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

Cell = Union[str, float, int]


def results_dir() -> Path:
    path = Path(os.environ.get("REPRO_RESULTS_DIR", "results"))
    path.mkdir(parents=True, exist_ok=True)
    return path


def format_cell(cell: Cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def render_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence[Cell]]
) -> str:
    """Fixed-width ASCII table."""
    text_rows = [[format_cell(c) for c in row] for row in rows]
    all_rows = [list(headers)] + text_rows
    widths = [max(len(r[i]) for r in all_rows) for i in range(len(headers))]
    lines = [title, "=" * len(title)]
    for i, row in enumerate(all_rows):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if i == 0:
            lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    return "\n".join(lines)


def render_series(
    title: str,
    x_label: str,
    x_values: Sequence[Cell],
    series: Mapping[str, Sequence[Cell]],
) -> str:
    """A figure rendered as one row per line (x on the header row)."""
    headers = [x_label] + [format_cell(x) for x in x_values]
    rows = [[name] + list(values) for name, values in series.items()]
    return render_table(title, headers, rows)


def save_result(experiment: str, text: str) -> Path:
    """Persist a rendered experiment to ``results/<experiment>.txt``."""
    path = results_dir() / f"{experiment}.txt"
    path.write_text(text + "\n")
    return path


__all__ = ["render_table", "render_series", "save_result", "results_dir"]
