"""Composable view-query DSL (the paper's §1 analyst queries as algebra).

Queries are small boolean expression trees over *pattern occurrences*
``(label, graph_index)``, built from three atoms and combined with
``&`` (and), ``|`` (or), and ``~`` (not)::

    from repro.query import Q

    Q.pattern(no2) & Q.label(1)                       # toxicophores in mutagens
    Q.pattern(p22) & Q.label(0) & Q.in_scope("graphs")  # non-mutagen graphs with P22
    Q.pattern(p) & ~Q.pattern(q)                      # p-but-not-q explanations

A query is *executed* by :meth:`repro.query.ViewIndex.select`, which
resolves every :func:`Q.pattern` atom against its precomputed inverted
occurrence index (canonical-pattern-key -> posting lists), so boolean
composition costs set intersections/unions instead of per-call
isomorphism scans.

Scope (``"explanations"``, the two-tier view's lower tier, vs
``"graphs"``, the raw database) is a query-level property: it may only
appear in positive conjunctive position, and one query may use only one
scope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterator, Tuple

from repro.exceptions import QueryError
from repro.graphs.pattern import Pattern

#: match against explanation subgraphs (the default)
SCOPE_EXPLANATIONS = "explanations"
#: match against full source graphs (requires a database)
SCOPE_GRAPHS = "graphs"

QUERY_SCOPES = (SCOPE_EXPLANATIONS, SCOPE_GRAPHS)


class Query:
    """Base class for query expression nodes."""

    __slots__ = ()

    def __and__(self, other: "Query") -> "Query":
        return And(self, _check_query(other))

    def __or__(self, other: "Query") -> "Query":
        return Or(self, _check_query(other))

    def __invert__(self) -> "Query":
        return Not(self)

    # ------------------------------------------------------------------
    def scope(self) -> str:
        """The single scope this query runs in (default: explanations)."""
        found = {s for s in self._scopes(positive=True)}
        if len(found) > 1:
            raise QueryError(f"query mixes scopes {sorted(found)}")
        return found.pop() if found else SCOPE_EXPLANATIONS

    def _scopes(self, positive: bool) -> Iterator[str]:
        """Yield scope atoms, checking they sit in positive conjunctions."""
        return iter(())


def _check_query(obj: object) -> "Query":
    if not isinstance(obj, Query):
        raise QueryError(f"cannot combine a query with {type(obj).__name__}")
    return obj


@dataclass(frozen=True)
class PatternTerm(Query):
    """Occurrences whose host contains ``pattern`` (induced semantics)."""

    pattern: Pattern


@dataclass(frozen=True)
class LabelTerm(Query):
    """Occurrences belonging to one class label's group."""

    label: Hashable


@dataclass(frozen=True)
class ScopeTerm(Query):
    """Select the tier queried: explanation subgraphs or full graphs."""

    value: str

    def __post_init__(self) -> None:
        if self.value not in QUERY_SCOPES:
            raise QueryError(
                f"scope must be one of {QUERY_SCOPES}, got {self.value!r}"
            )

    def _scopes(self, positive: bool) -> Iterator[str]:
        if not positive:
            raise QueryError("scope may not appear under ~ or |")
        yield self.value


@dataclass(frozen=True)
class And(Query):
    left: Query
    right: Query

    def _scopes(self, positive: bool) -> Iterator[str]:
        yield from self.left._scopes(positive)
        yield from self.right._scopes(positive)


@dataclass(frozen=True)
class Or(Query):
    left: Query
    right: Query

    def _scopes(self, positive: bool) -> Iterator[str]:
        yield from self.left._scopes(False)
        yield from self.right._scopes(False)


@dataclass(frozen=True)
class Not(Query):
    operand: Query

    def _scopes(self, positive: bool) -> Iterator[str]:
        yield from self.operand._scopes(False)


class Q:
    """Atom factory — the DSL's public entry point."""

    @staticmethod
    def pattern(pattern: Pattern) -> Query:
        """Occurrences containing ``pattern`` (subgraph isomorphism)."""
        if not isinstance(pattern, Pattern):
            raise QueryError(
                f"Q.pattern expects a Pattern, got {type(pattern).__name__}"
            )
        return PatternTerm(pattern)

    @staticmethod
    def label(label: Hashable) -> Query:
        """Occurrences in class ``label``'s group."""
        return LabelTerm(label)

    @staticmethod
    def in_scope(scope: str) -> Query:
        """Pick the tier: ``"explanations"`` (default) or ``"graphs"``."""
        return ScopeTerm(scope)

    @staticmethod
    def any(*queries: Query) -> Query:
        """Disjunction of one or more queries."""
        return _fold(Or, queries)

    @staticmethod
    def all(*queries: Query) -> Query:
        """Conjunction of one or more queries."""
        return _fold(And, queries)


def _fold(op, queries: Tuple[Query, ...]) -> Query:
    if not queries:
        raise QueryError("Q.any/Q.all need at least one sub-query")
    out = _check_query(queries[0])
    for q in queries[1:]:
        out = op(out, _check_query(q))
    return out


__all__ = [
    "Q",
    "Query",
    "PatternTerm",
    "LabelTerm",
    "ScopeTerm",
    "And",
    "Or",
    "Not",
    "SCOPE_EXPLANATIONS",
    "SCOPE_GRAPHS",
    "QUERY_SCOPES",
]
