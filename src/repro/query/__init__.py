"""Query layer: explanation views as queryable artifacts.

Two surfaces over the same inverted occurrence index:

* the legacy :class:`ViewIndex` methods (``explanations_containing``,
  ``graphs_containing``, ...), kept as thin equivalence-tested wrappers;
* the composable DSL — ``index.select(Q.pattern(p) & Q.label(1))`` —
  in :mod:`repro.query.dsl`.
"""

from repro.query.dsl import (
    Q,
    Query,
    QUERY_SCOPES,
    SCOPE_EXPLANATIONS,
    SCOPE_GRAPHS,
)
from repro.query.index import PatternOccurrence, ViewIndex

__all__ = [
    "ViewIndex",
    "PatternOccurrence",
    "Q",
    "Query",
    "QUERY_SCOPES",
    "SCOPE_EXPLANATIONS",
    "SCOPE_GRAPHS",
]
