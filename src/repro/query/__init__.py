"""Query layer: explanation views as queryable artifacts."""

from repro.query.index import PatternOccurrence, ViewIndex

__all__ = ["ViewIndex", "PatternOccurrence"]
