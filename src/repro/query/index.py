"""Query engine over explanation views — the paper's "queryable" property.

§1 motivates GVEX with analyst queries like *"which toxicophores occur
in mutagens?"* and *"which nonmutagens contain the toxicophore P22?"*.
A :class:`ViewIndex` makes a generated (or JSON-loaded)
:class:`~repro.graphs.view.ViewSet` directly queryable:

* pattern -> labels / explanation subgraphs / source graphs containing it,
* label -> its patterns, with occurrence statistics,
* discriminative patterns: in one label's view but matching no graph of
  another label,
* free-form matching of user-supplied patterns against either the
  explanation tier or the raw database.

Matches are cached per (pattern, host) via the same canonical-pattern
machinery the matcher uses, so repeated analyst queries stay cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.graphs.database import GraphDatabase
from repro.graphs.graph import Graph
from repro.graphs.pattern import Pattern
from repro.graphs.view import ExplanationView, ViewSet
from repro.matching.canonical import pattern_identity
from repro.matching.isomorphism import is_subgraph_isomorphic


@dataclass(frozen=True)
class PatternOccurrence:
    """One place a pattern occurs."""

    label: Hashable
    graph_index: int
    in_explanation: bool  # matched the explanation subgraph (vs full graph)


class ViewIndex:
    """Queryable index over a set of explanation views.

    Parameters
    ----------
    views:
        The explanation views (one per label).
    db:
        Optional source database; enables queries against the *full*
        graphs (e.g. "which nonmutagens contain pattern P?"), not just
        the explanation tier.
    """

    def __init__(self, views: ViewSet, db: Optional[GraphDatabase] = None) -> None:
        self.views = views
        self.db = db
        self._identity: Dict[str, List[Pattern]] = {}
        self._match_cache: Dict[Tuple[int, int], bool] = {}
        # register every view pattern so isomorphic duplicates unify
        for view in views:
            for p in view.patterns:
                pattern_identity(p, self._identity)

    # ------------------------------------------------------------------
    # label-centric queries
    # ------------------------------------------------------------------
    def labels(self) -> List[Hashable]:
        return self.views.labels

    def patterns_for_label(self, label: Hashable) -> List[Pattern]:
        """The higher-tier patterns of one label's view."""
        return list(self.views[label].patterns)

    def subgraphs_for_label(self, label: Hashable):
        return list(self.views[label].subgraphs)

    # ------------------------------------------------------------------
    # pattern-centric queries
    # ------------------------------------------------------------------
    def labels_with_pattern(self, pattern: Pattern) -> List[Hashable]:
        """Labels whose view contains a pattern isomorphic to ``pattern``."""
        canon = self._canon(pattern)
        out = []
        for view in self.views:
            if any(self._canon(p) is canon for p in view.patterns):
                out.append(view.label)
        return out

    def explanations_containing(
        self, pattern: Pattern, label: Optional[Hashable] = None
    ) -> List[PatternOccurrence]:
        """Explanation subgraphs the pattern matches (induced semantics).

        This is the paper's "which toxicophores occur in mutagens?"
        query: pass the toxicophore pattern and ``label='mutagen'``.
        """
        out: List[PatternOccurrence] = []
        for view in self.views:
            if label is not None and view.label != label:
                continue
            for sub in view.subgraphs:
                if self._matches(pattern, sub.subgraph):
                    out.append(
                        PatternOccurrence(view.label, sub.graph_index, True)
                    )
        return out

    def graphs_containing(
        self, pattern: Pattern, label: Optional[Hashable] = None
    ) -> List[PatternOccurrence]:
        """Source graphs the pattern matches (needs ``db``).

        This is the paper's "which nonmutagens contain pattern P22?"
        query — it runs against whole graphs, not explanations, so it
        also finds occurrences the explainer did not select.
        """
        if self.db is None:
            raise ValueError("graphs_containing requires a source database")
        group_of: Dict[int, Hashable] = {}
        for view in self.views:
            for sub in view.subgraphs:
                group_of[sub.graph_index] = view.label
        out: List[PatternOccurrence] = []
        for idx, graph in enumerate(self.db.graphs):
            g_label = group_of.get(idx)
            if label is not None and g_label != label:
                continue
            if self._matches(pattern, graph):
                out.append(PatternOccurrence(g_label, idx, False))
        return out

    # ------------------------------------------------------------------
    # cross-label analysis
    # ------------------------------------------------------------------
    def discriminative_patterns(
        self, target: Hashable, against: Hashable
    ) -> List[Pattern]:
        """Patterns of ``target``'s view matching no explanation of
        ``against`` — the paper's "representative substructures that
        distinguish mutagens from nonmutagens" (P12 in Example 1.1)."""
        other_subs = [s.subgraph for s in self.views[against].subgraphs]
        out = []
        for p in self.views[target].patterns:
            if not any(self._matches(p, host) for host in other_subs):
                out.append(p)
        return out

    def pattern_statistics(self, pattern: Pattern) -> Dict[Hashable, int]:
        """How many explanations per label contain the pattern."""
        stats: Dict[Hashable, int] = {}
        for view in self.views:
            count = sum(
                1
                for sub in view.subgraphs
                if self._matches(pattern, sub.subgraph)
            )
            stats[view.label] = count
        return stats

    # ------------------------------------------------------------------
    def _canon(self, pattern: Pattern) -> Pattern:
        return pattern_identity(pattern, self._identity)

    def _matches(self, pattern: Pattern, host: Graph) -> bool:
        canon = self._canon(pattern)
        key = (id(canon), id(host))
        if key not in self._match_cache:
            self._match_cache[key] = is_subgraph_isomorphic(canon, host)
        return self._match_cache[key]


__all__ = ["ViewIndex", "PatternOccurrence"]
