"""Query engine over explanation views — the paper's "queryable" property.

§1 motivates GVEX with analyst queries like *"which toxicophores occur
in mutagens?"* and *"which nonmutagens contain the toxicophore P22?"*.
A :class:`ViewIndex` makes a generated (or JSON-loaded)
:class:`~repro.graphs.view.ViewSet` directly queryable.

Architecture
------------
At build time the index canonicalizes every view pattern (WL key +
exact-isomorphism disambiguation) and precomputes an **inverted
occurrence index**: canonical-pattern-key -> posting lists of
``(label, graph_index)`` per tier. Queries — both the legacy methods
(:meth:`explanations_containing`, :meth:`graphs_containing`,
:meth:`discriminative_patterns`, :meth:`pattern_statistics`) and the
composable DSL executed by :meth:`select` — then reduce to posting-list
lookups and set algebra instead of per-call ``O(views × subgraphs)``
isomorphism scans.

Patterns never seen before (free-form analyst input) are matched once,
and their posting lists are memoized under the pattern's canonical key,
so repeated queries stay cheap. Database-tier posting lists are built
lazily per pattern because full graphs are much larger than
explanation subgraphs.

Match results are cached under ``(canonical pattern key, stable host
key)`` — *not* ``id()`` pairs, which the allocator may reuse after GC.
Explanation-tier host keys are *content-defined* (graph index +
selected nodes), so cached matches also survive **incremental
maintenance**: :meth:`ViewIndex.add_view` / :meth:`remove_view` /
:meth:`patch_views` patch the posting lists per admitted view instead
of rebuilding — the warm-replica serving path (docs/runtime.md).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.config import MATCH_REFERENCE
from repro.exceptions import QueryError, ValidationError
from repro.graphs.database import GraphDatabase
from repro.graphs.graph import Graph
from repro.graphs.pattern import Pattern
from repro.graphs.view import ExplanationView, ViewSet
from repro.matching.canonical import pattern_identity
from repro.matching.context import graph_content_key
from repro.matching.isomorphism import is_subgraph_isomorphic, resolve_backend
from repro.matching.plan_cache import PLAN_CACHE
from repro.query.dsl import (
    SCOPE_EXPLANATIONS,
    SCOPE_GRAPHS,
    And,
    LabelTerm,
    Not,
    Or,
    PatternTerm,
    Query,
    ScopeTerm,
)

from dataclasses import dataclass

#: (WL key, position in the key's exact-isomorphism bucket) — unique
#: and stable per canonical pattern for the index's lifetime, unlike
#: ``id()`` which can be recycled.
CanonKey = Tuple[str, int]

#: current index snapshot format (``export_snapshot``); bump on
#: incompatible change — unknown versions are rejected on warm-start
INDEX_SNAPSHOT_SCHEMA_VERSION = 1

#: stable host identity: ("expl", graph_index, selected nodes) for an
#: explanation subgraph — content-defining (an induced subgraph is
#: determined by its source graph and node set), so cached match
#: results survive incremental view patches — or ("db", index) for a
#: full source graph
HostKey = Tuple


def _host_key(sub) -> HostKey:
    return ("expl", sub.graph_index, sub.nodes)


@dataclass(frozen=True)
class PatternOccurrence:
    """One place a pattern occurs."""

    label: Hashable
    graph_index: int
    in_explanation: bool  # matched the explanation subgraph (vs full graph)


class ViewIndex:
    """Queryable inverted index over a set of explanation views.

    Parameters
    ----------
    views:
        The explanation views (one per label).
    db:
        Optional source database; enables queries against the *full*
        graphs (e.g. "which nonmutagens contain pattern P?"), not just
        the explanation tier.
    backend:
        Matching backend for posting builds (process default when
        ``None``). Under ``"fast"``, first-time (pattern, host) probes
        additionally consult the process-wide match-plan cache, so an
        index built after a Psum run re-pays nothing for the pairs
        Psum already matched.
    """

    def __init__(
        self,
        views: ViewSet,
        db: Optional[GraphDatabase] = None,
        backend: Optional[str] = None,
        snapshot: Optional[Dict] = None,
    ) -> None:
        self.views = views
        self.db = db
        self.backend = resolve_backend(backend)
        self._identity: Dict[str, List[Pattern]] = {}
        self._match_cache: Dict[Tuple[CanonKey, HostKey], bool] = {}
        #: canonical key -> labels whose *pattern tier* contains it
        self._pattern_labels: Dict[CanonKey, Set[Hashable]] = {}
        #: canonical key -> {label: [graph_index, ...]} over explanation
        #: subgraphs (posting lists in view/subgraph order)
        self._expl_postings: Dict[CanonKey, Dict[Hashable, List[int]]] = {}
        #: canonical key -> [(label-or-None, db index), ...] in db order
        self._graph_postings: Dict[CanonKey, List[Tuple[Optional[Hashable], int]]] = {}
        #: db index -> label of the view whose explanation covers it
        self._group_of: Dict[int, Hashable] = {}
        for view in views:
            for sub in view.subgraphs:
                self._group_of.setdefault(sub.graph_index, view.label)

        # an exported snapshot (the cluster warm tier) pre-fills the
        # match cache *before* the eager posting build below, so a
        # fresh replica's build pays zero isomorphism work for pairs
        # the exporter already matched
        if snapshot is not None:
            self.warm_matches(snapshot)

        # register every view pattern so isomorphic duplicates unify,
        # then build the explanation-tier posting lists eagerly: this is
        # a one-time patterns × subgraphs matching pass, after which
        # every query is a dict lookup.
        build_order: List[Tuple[Pattern, CanonKey]] = []
        for view in views:
            for p in view.patterns:
                canon, key = self._canon(p)
                self._pattern_labels.setdefault(key, set()).add(view.label)
                if key not in self._expl_postings:
                    self._expl_postings[key] = {}  # placeholder keeps order
                    build_order.append((canon, key))
        for canon, key in build_order:
            self._expl_postings[key] = self._scan_explanations(canon, key)

    # ------------------------------------------------------------------
    # label-centric queries
    # ------------------------------------------------------------------
    def labels(self) -> List[Hashable]:
        return self.views.labels

    def patterns_for_label(self, label: Hashable) -> List[Pattern]:
        """The higher-tier patterns of one label's view."""
        return list(self.views[label].patterns)

    def subgraphs_for_label(self, label: Hashable):
        return list(self.views[label].subgraphs)

    # ------------------------------------------------------------------
    # pattern-centric queries (thin wrappers over the inverted index)
    # ------------------------------------------------------------------
    def labels_with_pattern(self, pattern: Pattern) -> List[Hashable]:
        """Labels whose view contains a pattern isomorphic to ``pattern``."""
        _, key = self._canon(pattern)
        members = self._pattern_labels.get(key, set())
        return [view.label for view in self.views if view.label in members]

    def explanations_containing(
        self, pattern: Pattern, label: Optional[Hashable] = None
    ) -> List[PatternOccurrence]:
        """Explanation subgraphs the pattern matches (induced semantics).

        This is the paper's "which toxicophores occur in mutagens?"
        query: pass the toxicophore pattern and ``label='mutagen'``.
        """
        postings = self._expl_postings_for(pattern)
        out: List[PatternOccurrence] = []
        for view in self.views:
            if label is not None and view.label != label:
                continue
            for gidx in postings.get(view.label, ()):
                out.append(PatternOccurrence(view.label, gidx, True))
        return out

    def graphs_containing(
        self, pattern: Pattern, label: Optional[Hashable] = None
    ) -> List[PatternOccurrence]:
        """Source graphs the pattern matches (needs ``db``).

        This is the paper's "which nonmutagens contain pattern P22?"
        query — it runs against whole graphs, not explanations, so it
        also finds occurrences the explainer did not select.
        """
        postings = self._graph_postings_for(pattern)
        return [
            PatternOccurrence(g_label, idx, False)
            for g_label, idx in postings
            if label is None or g_label == label
        ]

    # ------------------------------------------------------------------
    # cross-label analysis
    # ------------------------------------------------------------------
    def discriminative_patterns(
        self, target: Hashable, against: Hashable
    ) -> List[Pattern]:
        """Patterns of ``target``'s view matching no explanation of
        ``against`` — the paper's "representative substructures that
        distinguish mutagens from nonmutagens" (P12 in Example 1.1)."""
        self.views[against]  # unknown labels raise KeyError, not match-all
        out = []
        for p in self.views[target].patterns:
            if not self._expl_postings_for(p).get(against):
                out.append(p)
        return out

    def pattern_statistics(self, pattern: Pattern) -> Dict[Hashable, int]:
        """How many explanations per label contain the pattern."""
        postings = self._expl_postings_for(pattern)
        return {
            view.label: len(postings.get(view.label, ()))
            for view in self.views
        }

    # ------------------------------------------------------------------
    # composable query execution (repro.query.dsl)
    # ------------------------------------------------------------------
    def select(self, query: Query) -> List[PatternOccurrence]:
        """Execute a :class:`~repro.query.dsl.Query` expression.

        Pattern atoms resolve to posting lists from the inverted index;
        ``&``/``|``/``~`` become set algebra over ``(label,
        graph_index)`` occurrence keys. Results are ordered like the
        legacy methods: view/subgraph order for the explanation tier,
        database order for the graph tier.
        """
        if not isinstance(query, Query):
            raise QueryError(f"select expects a Query, got {type(query).__name__}")
        scope = query.scope()
        universe = self._universe(scope)
        universe_set = set(universe)
        keys = self._evaluate(query, scope, universe_set)
        in_expl = scope == SCOPE_EXPLANATIONS
        return [
            PatternOccurrence(label, gidx, in_expl)
            for label, gidx in universe
            if (label, gidx) in keys
        ]

    def count(self, query: Query) -> int:
        """Number of occurrences matching ``query``."""
        return len(self.select(query))

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _canon(self, pattern: Pattern) -> Tuple[Pattern, CanonKey]:
        """Canonical representative + stable canonical key."""
        canon = pattern_identity(pattern, self._identity, backend=self.backend)
        wl_key = canon.key()
        bucket = self._identity[wl_key]
        for pos, candidate in enumerate(bucket):
            if candidate is canon:
                return canon, (wl_key, pos)
        raise AssertionError("canonical pattern missing from its bucket")

    def _matches(
        self, canon: Pattern, key: CanonKey, host: Graph, host_key: HostKey
    ) -> bool:
        cache_key = (key, host_key)
        cached = self._match_cache.get(cache_key)
        if cached is None:
            if self.backend == MATCH_REFERENCE:
                cached = is_subgraph_isomorphic(canon, host, backend=self.backend)
            else:
                # the process-wide plan cache keys by graph *content*,
                # so pairs Psum / verify_view already matched hit here
                cached = PLAN_CACHE.contains(canon, host)
            self._match_cache[cache_key] = cached
        return cached

    def _matches_group(
        self, canon: Pattern, key: CanonKey, hosts: List[Graph],
        host_keys: List[HostKey], columnar=None,
    ) -> List[bool]:
        """Batched :meth:`_matches` over one pattern's host group.

        Locally-cached answers are reused; the rest go through the plan
        cache's database-batched probe (one identity/plan resolution,
        one lock round for the whole group) under the fast backend —
        with ``columnar`` (the source database's columnar mirror, whose
        graph indices are the positions in ``hosts``) routing cache-miss
        context builds through the shared CSR arrays.
        """
        out: List[Optional[bool]] = [
            self._match_cache.get((key, hk)) for hk in host_keys
        ]
        todo = [i for i, flag in enumerate(out) if flag is None]
        if todo:
            if self.backend == MATCH_REFERENCE:
                fresh = [
                    is_subgraph_isomorphic(canon, hosts[i], backend=self.backend)
                    for i in todo
                ]
            else:
                fresh = PLAN_CACHE.contains_many(
                    canon,
                    [hosts[i] for i in todo],
                    columnar=columnar,
                    indices=todo,
                )
            for i, flag in zip(todo, fresh):
                self._match_cache[(key, host_keys[i])] = flag
                out[i] = flag
        return [bool(flag) for flag in out]

    def _scan_explanations(
        self, canon: Pattern, key: CanonKey
    ) -> Dict[Hashable, List[int]]:
        """Posting lists over the explanation tier, in view order.

        One database-batched probe per pattern: every view subgraph in
        one :meth:`_matches_group` call.
        """
        subs = [sub for view in self.views for sub in view.subgraphs]
        flags = self._matches_group(
            canon, key,
            [sub.subgraph for sub in subs],
            [_host_key(sub) for sub in subs],
        )
        hits = {id(sub) for sub, flag in zip(subs, flags) if flag}
        out: Dict[Hashable, List[int]] = {}
        for view in self.views:
            out[view.label] = [
                sub.graph_index
                for sub in view.subgraphs
                if id(sub) in hits
            ]
        return out

    def _expl_postings_for(self, pattern: Pattern) -> Dict[Hashable, List[int]]:
        canon, key = self._canon(pattern)
        postings = self._expl_postings.get(key)
        if postings is None:
            postings = self._scan_explanations(canon, key)
            self._expl_postings[key] = postings
        return postings

    def _graph_postings_for(
        self, pattern: Pattern
    ) -> List[Tuple[Optional[Hashable], int]]:
        if self.db is None:
            raise ValidationError("graph-scope queries require a source database")
        canon, key = self._canon(pattern)
        postings = self._graph_postings.get(key)
        if postings is None:
            flags = self._matches_group(
                canon, key,
                list(self.db.graphs),
                [("db", idx) for idx in range(len(self.db.graphs))],
                columnar=self.db.columnar,
            )
            postings = [
                (self._group_of.get(idx), idx)
                for idx, flag in enumerate(flags)
                if flag
            ]
            self._graph_postings[key] = postings
        return postings

    def _universe(self, scope: str) -> List[Tuple[Optional[Hashable], int]]:
        if scope == SCOPE_EXPLANATIONS:
            return [
                (view.label, sub.graph_index)
                for view in self.views
                for sub in view.subgraphs
            ]
        if self.db is None:
            raise ValidationError("graph-scope queries require a source database")
        return [(self._group_of.get(idx), idx) for idx in range(len(self.db.graphs))]

    def _evaluate(
        self, node: Query, scope: str, universe: Set[Tuple[Optional[Hashable], int]]
    ) -> Set[Tuple[Optional[Hashable], int]]:
        if isinstance(node, PatternTerm):
            if scope == SCOPE_EXPLANATIONS:
                postings = self._expl_postings_for(node.pattern)
                return {
                    (label, gidx)
                    for label, gidxs in postings.items()
                    for gidx in gidxs
                }
            return set(self._graph_postings_for(node.pattern))
        if isinstance(node, LabelTerm):
            return {key for key in universe if key[0] == node.label}
        if isinstance(node, ScopeTerm):
            return set(universe)  # scope was handled at query level
        if isinstance(node, And):
            return self._evaluate(node.left, scope, universe) & self._evaluate(
                node.right, scope, universe
            )
        if isinstance(node, Or):
            return self._evaluate(node.left, scope, universe) | self._evaluate(
                node.right, scope, universe
            )
        if isinstance(node, Not):
            return universe - self._evaluate(node.operand, scope, universe)
        raise QueryError(f"unsupported query node {type(node).__name__}")

    # ------------------------------------------------------------------
    # incremental maintenance (warm serve replicas patch, not rebuild)
    # ------------------------------------------------------------------
    def add_view(self, view: ExplanationView) -> None:
        """Admit one view incrementally, patching the posting lists.

        Every existing canonical key gains a posting list for the new
        label (match results for previously seen (pattern, host) pairs
        come from the cache); the view's own patterns register new keys
        where needed. Raises :class:`QueryError` when the label already
        has a view — replace via :meth:`remove_view` or
        :meth:`patch_views`.
        """
        if view.label in self.views:
            raise QueryError(
                f"label {view.label!r} already has a view; remove it first"
            )
        self.views.add(view)
        self._rebuild_group_of()
        self._admit_view(view)
        self._refresh_graph_posting_labels()

    def remove_view(self, label: Hashable) -> ExplanationView:
        """Remove one label's view, dropping its posting-list entries.

        Memoized free-form patterns and the match cache survive — the
        cost of re-admitting a similar view later stays incremental.
        """
        if label not in self.views:
            raise QueryError(f"no view for label {label!r}")
        removed = self.views.views.pop(label)
        self._rebuild_group_of()
        self._drop_label(label)
        self._refresh_graph_posting_labels()
        return removed

    def patch_views(self, new_views: ViewSet) -> None:
        """Adopt a new view set by patching instead of rebuilding.

        Per label: unchanged view *objects* keep their postings;
        removed labels are dropped; added or replaced views are
        re-admitted incrementally. The canonical-pattern identity map
        and the match cache are preserved, so repeated serve explains
        only pay isomorphism checks for genuinely new (pattern, host)
        pairs. Equivalent to ``ViewIndex(new_views, db)`` for every
        query (``tests/test_view_index_incremental.py``).
        """
        old = {label: self.views.views[label] for label in self.views.labels}
        self.views = new_views
        self._rebuild_group_of()
        for label, old_view in old.items():
            if new_views.get(label) is not old_view:
                self._drop_label(label)
        for label in new_views.labels:
            view = new_views[label]
            if old.get(label) is not view:
                self._admit_view(view)
        self._refresh_graph_posting_labels()

    def patched_copy(self, new_views: ViewSet) -> "ViewIndex":
        """A new index adopting ``new_views``, reusing this one's caches.

        The threaded serving path must never mutate an index that
        concurrent readers hold (readers also memoize into the posting
        dicts). This clones the container dicts — contents are shared;
        canonical bucket order is preserved so :data:`CanonKey`
        positions stay valid — patches the clone incrementally, and
        returns it for an atomic swap. Readers keep a
        stale-but-consistent snapshot, exactly like the old
        invalidate-and-rebuild behavior, at patch cost.
        """
        clone = object.__new__(ViewIndex)
        clone.views = self.views
        clone.db = self.db
        clone.backend = self.backend
        clone._identity = {k: list(v) for k, v in self._identity.items()}
        clone._match_cache = dict(self._match_cache)
        clone._pattern_labels = {
            k: set(v) for k, v in self._pattern_labels.items()
        }
        clone._expl_postings = {
            k: dict(v) for k, v in self._expl_postings.items()
        }
        clone._graph_postings = dict(self._graph_postings)
        clone._group_of = dict(self._group_of)
        clone.patch_views(new_views)
        return clone

    # -- internals of the patch path -----------------------------------
    def _rebuild_group_of(self) -> None:
        self._group_of = {}
        for view in self.views:
            for sub in view.subgraphs:
                self._group_of.setdefault(sub.graph_index, view.label)

    def _drop_label(self, label: Hashable) -> None:
        for postings in self._expl_postings.values():
            postings.pop(label, None)
        for members in self._pattern_labels.values():
            members.discard(label)

    def _admit_view(self, view: ExplanationView) -> None:
        # the view's pattern tier may introduce new canonical keys;
        # those need a full posting scan (nothing is cached for them)
        fresh: List[Tuple[Pattern, CanonKey]] = []
        for p in view.patterns:
            canon, key = self._canon(p)
            self._pattern_labels.setdefault(key, set()).add(view.label)
            if key not in self._expl_postings:
                self._expl_postings[key] = {}
                fresh.append((canon, key))
        fresh_keys = {key for _, key in fresh}
        # every pre-existing key needs this label's posting list: scan
        # only the admitted view's subgraphs (cache-assisted)
        for key, postings in self._expl_postings.items():
            if key in fresh_keys:
                continue
            canon = self._identity[key[0]][key[1]]
            postings[view.label] = [
                sub.graph_index
                for sub in view.subgraphs
                if self._matches(canon, key, sub.subgraph, _host_key(sub))
            ]
        for canon, key in fresh:
            self._expl_postings[key] = self._scan_explanations(canon, key)

    def extend_db(
        self,
        graphs: Sequence[Graph],
        labels: Optional[Sequence[Hashable]] = None,
    ) -> range:
        """Admit new database graphs (a stream chunk), patching postings.

        The database axis of incremental maintenance: growing the
        source database used to mean lazily-built graph postings went
        stale for every cached pattern. Instead of invalidating the
        whole db tier, this appends the graphs to ``db`` and matches
        each *cached* pattern against only the new suffix, keeping
        every posting list identical to a from-scratch rebuild
        (``tests/test_view_index_incremental.py``). Patterns never
        queried at graph scope stay lazy and pay nothing.

        Returns the new graphs' database indices.
        """
        if self.db is None:
            raise QueryError("extend_db requires a source database")
        new_indices = self.db.extend(graphs, labels)
        for key, postings in self._graph_postings.items():
            canon = self._identity[key[0]][key[1]]
            additions = [
                (self._group_of.get(idx), idx)
                for idx in new_indices
                if self._matches(canon, key, self.db.graphs[idx], ("db", idx))
            ]
            if additions:
                self._graph_postings[key] = postings + additions
        return new_indices

    def _refresh_graph_posting_labels(self) -> None:
        """Re-label cached db-tier postings after ``_group_of`` changed.

        The expensive part — pattern-vs-full-graph isomorphism — is
        unaffected by view changes (the database is fixed), so only the
        group labels are rewritten.
        """
        for key, postings in self._graph_postings.items():
            self._graph_postings[key] = [
                (self._group_of.get(idx), idx) for _, idx in postings
            ]

    # ------------------------------------------------------------------
    # snapshots: the cross-process warm tier (docs/distribution.md)
    # ------------------------------------------------------------------
    def export_snapshot(self) -> Dict:
        """Portable warm state: match results keyed on content keys.

        Patterns ship as full graphs keyed by their content key; every
        cached (pattern, host) match result ships as ``[pattern content
        key, JSON host key, bool]``. Host keys are content-defined
        (``("expl", graph_index, nodes)`` / ``("db", index)``), so a
        *different process* building an index over the same views
        resolves them identically — that is what makes the export a
        warm tier rather than a process-local cache dump.
        """
        content_of: Dict[CanonKey, str] = {}
        patterns: Dict[str, Dict] = {}
        from repro.graphs.io import graph_to_dict

        for wl_key, bucket in self._identity.items():
            for pos, pattern in enumerate(bucket):
                content = graph_content_key(pattern.graph)
                content_of[(wl_key, pos)] = content
                patterns[content] = graph_to_dict(pattern.graph)
        matches = []
        for (key, host_key), flag in self._match_cache.items():
            content = content_of.get(key)
            if content is None:  # pragma: no cover - defensive
                continue
            if host_key and host_key[0] == "expl":
                json_key = ["expl", host_key[1], list(host_key[2])]
            else:
                json_key = [str(host_key[0]), host_key[1]]
            matches.append([content, json_key, bool(flag)])
        return {
            "schema": INDEX_SNAPSHOT_SCHEMA_VERSION,
            "patterns": patterns,
            "matches": matches,
        }

    def warm_matches(self, snapshot: Dict) -> int:
        """Pre-fill the match cache from :meth:`export_snapshot` output.

        Unknown snapshot versions raise :class:`QueryError`; stale
        entries — a pattern whose graph no longer hashes to its
        recorded content key, a malformed host key — are dropped, not
        applied. Existing local entries are never overwritten. Returns
        the number of match results adopted.
        """
        from repro.graphs.io import graph_from_dict

        if not isinstance(snapshot, dict):
            raise QueryError("index snapshot must be a JSON object")
        schema = snapshot.get("schema")
        if schema != INDEX_SNAPSHOT_SCHEMA_VERSION:
            raise QueryError(
                f"unsupported index snapshot schema {schema!r}; this "
                f"build reads version {INDEX_SNAPSHOT_SCHEMA_VERSION}"
            )
        key_of: Dict[str, CanonKey] = {}
        for content, graph_dict in dict(snapshot.get("patterns") or {}).items():
            try:
                pattern = Pattern(graph_from_dict(graph_dict))
            except Exception:  # repro: noqa[REPRO401] - warm row is best-effort
                continue  # malformed: drop
            if graph_content_key(pattern.graph) != content:
                continue  # stale content key: drop, don't apply
            _, key = self._canon(pattern)
            key_of[content] = key
        loaded = 0
        for row in list(snapshot.get("matches") or []):
            try:
                content, json_key, flag = row
                key = key_of[content]
                if json_key[0] == "expl":
                    host_key: HostKey = (
                        "expl",
                        int(json_key[1]),
                        tuple(int(v) for v in json_key[2]),
                    )
                elif json_key[0] == "db":
                    host_key = ("db", int(json_key[1]))
                else:
                    raise ValidationError(json_key)
                flag = bool(flag)
            except (KeyError, IndexError, TypeError, ValueError):
                continue  # malformed row: drop
            if (key, host_key) not in self._match_cache:
                self._match_cache[(key, host_key)] = flag
                loaded += 1
        return loaded

    # ------------------------------------------------------------------
    def index_stats(self) -> Dict[str, int]:
        """Size of the inverted index (for /health and diagnostics)."""
        return {
            "patterns": len(self._expl_postings),
            "explanation_postings": sum(
                len(gidxs)
                for postings in self._expl_postings.values()
                for gidxs in postings.values()
            ),
            "graph_postings": sum(len(p) for p in self._graph_postings.values()),
            "match_cache": len(self._match_cache),
        }


__all__ = ["ViewIndex", "PatternOccurrence", "CanonKey"]
