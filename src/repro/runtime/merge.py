"""Merging partial explanation views (the paper's distributed future work).

The enabler for sharded/distributed view generation is a *merge*
operation on explanation views: each replica explains its slice of the
label group independently (per-graph explanation phases don't
interact), and partial views merge by unioning their subgraphs and
re-running the Psum summarize step on the union — node coverage is
preserved, and the pattern tier stays near-optimal because Psum's
weighted-set-cover greedy sees the merged subgraph set.

These functions are the parent-side contract of
:class:`~repro.runtime.executors.ShardedExecutor`; they moved here
from the since-removed ``repro.core.distributed`` wrapper.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Sequence

from repro.config import GvexConfig
from repro.core.psum import summarize
from repro.graphs.view import ExplanationView, ViewSet
from repro.exceptions import ValidationError


def merge_views(
    views: Sequence[ExplanationView], config: GvexConfig
) -> ExplanationView:
    """Merge partial views of the *same* label into one.

    Subgraphs are unioned (later shards win on duplicate graph
    indices, which cannot happen under disjoint sharding); patterns are
    re-summarized over the union so coverage and edge loss stay valid.
    """
    if not views:
        raise ValidationError("merge_views needs at least one view")
    label = views[0].label
    if any(v.label != label for v in views):
        raise ValidationError("cannot merge views of different labels")

    by_graph: Dict[int, object] = {}
    for view in views:
        for sub in view.subgraphs:
            by_graph[sub.graph_index] = sub
    merged = ExplanationView(label=label)
    merged.subgraphs = [by_graph[i] for i in sorted(by_graph)]
    psum = summarize([s.subgraph for s in merged.subgraphs], config)
    merged.patterns = psum.patterns
    merged.edge_loss = psum.edge_loss
    merged.score = sum(s.score for s in merged.subgraphs)
    return merged


def merge_view_sets(
    parts: Sequence[ViewSet],
    config: GvexConfig,
    labels: Optional[Sequence[Hashable]] = None,
) -> ViewSet:
    """Merge shard-level view sets label by label.

    ``labels`` fixes the output's label order (an executor passes the
    plan's labels so empty groups still yield empty views, matching
    the serial reference bit for bit); by default every label present
    in any part is merged.
    """
    if labels is None:
        labels = sorted({l for part in parts for l in part.labels}, key=repr)
    out = ViewSet()
    for label in labels:
        partials = [part[label] for part in parts if label in part]
        if not partials:
            partials = [ExplanationView(label=label)]
        out.add(merge_views(partials, config))
    return out


__all__ = ["merge_views", "merge_view_sets"]
