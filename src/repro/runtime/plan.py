"""Explain plans: how a database is partitioned into schedulable work.

The scheduling layer's unit of planning is the :class:`ExplainPlan` —
an immutable description of *what* to explain (database, model,
config, registry method) and *how the work is cut*: each label group
``G^l`` is partitioned into :class:`Shard`\\ s, contiguous runs of the
group's graph indices. Executors (``repro.runtime.executors``) only
ever see shards, so every entry point — the facade, the CLI, the bench
harness, the HTTP layer — schedules identical work the same way.

Shard sizing follows the batched verifier's cache geometry: one graph's
greedy round evaluates a frontier of ``O(n)`` candidate subsets as
stacked ``(B, k, k)`` tensors, bounded by
``BatchedGnnVerifier.BATCH_ELEMENT_BUDGET`` elements per launch
(``repro.core.verifiers``). A shard is sized so the whole shard's
working set — about ``n_widest² · u_l`` elements per member graph —
stays within one budget's worth of warm tensors, and so every worker
of a fork pool gets at least one shard. A worker then runs its shard
as one in-process loop: the model weights, config, built explainer,
and the verifier's stacked scratch stay warm across the shard's tasks
instead of being re-pickled per task.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.config import GvexConfig
from repro.core.psum import summarize
from repro.exceptions import ConfigurationError, RegistryError
from repro.runtime.deadline import Deadline
from repro.gnn.model import GnnClassifier
from repro.graphs.database import GraphDatabase
from repro.graphs.view import ExplanationSubgraph, ExplanationView, ViewSet

#: registry name whose tasks run the core ApproxGVEX kernel directly
APPROX_METHOD = "gvex-approx"


@dataclass(frozen=True)
class Shard:
    """A contiguous slice of one label group's explain tasks."""

    label: int
    #: database indices of this shard's graphs, ascending
    indices: Tuple[int, ...]

    def __len__(self) -> int:
        return len(self.indices)


@dataclass(frozen=True)
class ExplainPlan:
    """Everything an executor needs to run one explain workload.

    Built by :func:`build_plan`; executors treat it as read-only. The
    plan's shards preserve each label group's ascending index order, so
    concatenating a label's shard results reproduces the serial
    per-group iteration exactly (the bit-parity contract of
    ``tests/test_runtime.py``).
    """

    db: GraphDatabase
    model: GnnClassifier
    config: GvexConfig
    method: str = APPROX_METHOD
    seed: int = 0
    explainer_kwargs: Mapping = field(default_factory=dict)
    #: sorted labels of interest (the view set's labels, even if empty)
    labels: Tuple[int, ...] = ()
    shards: Tuple[Shard, ...] = ()
    #: optional monotonic deadline every executor honours between
    #: shards (``Deadline.require`` -> typed 504; docs/api.md)
    deadline: Optional["Deadline"] = None

    @property
    def n_tasks(self) -> int:
        return sum(len(s) for s in self.shards)

    def shards_for(self, label: int) -> List[Shard]:
        return [s for s in self.shards if s.label == label]

    def group_indices(self, label: int) -> List[int]:
        return [i for s in self.shards_for(label) for i in s.indices]


def observed_shard_size(stats: Mapping) -> Optional[int]:
    """Best-throughput shard size from observed wall-clock stats.

    ``stats`` is the (parsed) ``results/runtime_scaling.json`` format:
    its ``"shard_size"`` sweep lists per-configuration wall-clock
    entries ``{"shard_size", "shards", "seconds", "views_per_sec"}``.
    Returns the integer shard size with the highest observed
    views/sec (ties break toward the smaller size — cheaper to
    rebalance), or ``None`` when the stats carry no usable sweep
    (missing key, only ``"auto"`` entries, zero-duration runs).
    """
    best: Optional[Tuple[float, int]] = None
    for entry in stats.get("shard_size", []) or []:
        size = entry.get("shard_size")
        if not isinstance(size, int) or size < 1:
            continue  # "auto" rows describe this heuristic, not a size
        vps = entry.get("views_per_sec")
        if vps is None:
            seconds = entry.get("seconds") or 0
            tasks = entry.get("tasks")
            if not seconds or not tasks:
                continue
            vps = tasks / seconds
        if vps <= 0:
            continue
        key = (float(vps), -size)
        if best is None or key > best:
            best = key
    return -best[1] if best is not None else None


def shard_size_for(
    db: GraphDatabase,
    indices: Sequence[int],
    config: GvexConfig,
    label: int,
    processes: int = 1,
    stats: Optional[Mapping] = None,
) -> int:
    """Shard size for one label group, sized to verifier cache geometry.

    Two forces, take the minimum:

    * **cache budget** — each member graph's batched verification
      frontier gathers roughly ``n² · u_l`` float64 elements (stacked
      subset tensors over an ``n``-node graph bounded by the coverage
      upper ``u_l``); the shard is capped so its total stays within one
      :data:`~repro.core.verifiers.BatchedGnnVerifier.BATCH_ELEMENT_BUDGET`,
      keeping a worker's stacked tensors inside the same warm working
      set a single batched launch uses;
    * **balance** — at least one shard per worker
      (``ceil(group / processes)``), so a fork pool is never idle while
      another worker drains a mega-shard.

    ``stats`` feeds back *observed* per-shard wall-clock (the
    ``results/runtime_scaling.json`` format, CLI ``--shard-stats``):
    the measured best-throughput shard size replaces the cache-budget
    guess, rescaled per label group by how much heavier the group's
    graphs are than the database average (the same ``n² · u_l`` cost
    proxy), so skewed label groups get proportionally smaller shards
    and their per-shard wall-clock evens out. The balance bound always
    still applies.
    """
    from repro.core.verifiers import BatchedGnnVerifier

    if not indices:
        return 1
    widest = max(db[i].n_nodes for i in indices)
    upper = config.coverage_for(label).upper
    per_graph = max(1, widest * widest * max(1, upper))
    by_budget = max(1, BatchedGnnVerifier.BATCH_ELEMENT_BUDGET // per_graph)
    balanced = math.ceil(len(indices) / max(1, processes))

    observed = observed_shard_size(stats) if stats else None
    if observed is not None:
        # the observed optimum was measured over the whole database;
        # rebalance skewed groups by relative mean per-graph cost so
        # heavy groups cut smaller shards (similar per-shard wall-clock)
        db_widths = [g.n_nodes for g in db if g.n_nodes]
        group_widths = [db[i].n_nodes for i in indices if db[i].n_nodes]
        if db_widths and group_widths:
            db_cost = sum(w * w for w in db_widths) / len(db_widths)
            group_cost = sum(w * w for w in group_widths) / len(group_widths)
            skew = db_cost / max(group_cost, 1.0)
        else:
            skew = 1.0
        adjusted = max(1, int(round(observed * min(skew, float(len(indices))))))
        return max(1, min(adjusted, balanced))
    return max(1, min(by_budget, balanced))


def build_plan(
    db: GraphDatabase,
    model: GnnClassifier,
    config: Optional[GvexConfig] = None,
    *,
    labels: Optional[Iterable[int]] = None,
    predicted: Optional[Sequence[Optional[int]]] = None,
    method: str = APPROX_METHOD,
    seed: int = 0,
    explainer_kwargs: Optional[Mapping] = None,
    processes: int = 1,
    shard_size: Optional[int] = None,
    shard_stats: Optional[Mapping] = None,
    deadline: Optional[Deadline] = None,
) -> ExplainPlan:
    """Partition a database into label-group shards.

    ``predicted`` may carry ``None`` entries to exclude graphs (the
    sharded executor and restricted bench sweeps use this); by default
    the model's predictions group the database. ``shard_size``
    overrides :func:`shard_size_for` uniformly; ``shard_stats`` feeds
    observed wall-clock back into it (adaptive sizing; see
    :func:`observed_shard_size`). ``method`` is resolved through the
    explainer registry, so aliases work everywhere plans are built.
    ``deadline`` attaches a monotonic budget that every executor (and
    the cluster dispatch path) re-checks between shards.
    """
    from repro.api.registry import get_spec

    config = config if config is not None else GvexConfig()
    method = get_spec(method).name
    explainer_kwargs = dict(explainer_kwargs or {})
    if method == APPROX_METHOD and explainer_kwargs:
        raise RegistryError(
            "the gvex-approx runtime takes its configuration from "
            f"GvexConfig, not constructor overrides {sorted(explainer_kwargs)}"
        )
    if predicted is None:
        from repro.core.approx import database_predictions

        predicted = database_predictions(model, db)

    groups: Dict[int, List[int]] = {}
    for i, l in enumerate(predicted):
        if l is None:
            continue
        groups.setdefault(int(l), []).append(i)
    wanted = sorted(groups) if labels is None else sorted(set(labels))

    shards: List[Shard] = []
    for label in wanted:
        members = groups.get(label, [])
        if not members:
            continue
        size = shard_size
        if size is None:
            size = shard_size_for(
                db, members, config, label, processes=processes, stats=shard_stats
            )
        if size < 1:
            raise ConfigurationError(f"shard_size must be >= 1, got {size}")
        for start in range(0, len(members), size):
            shards.append(Shard(label, tuple(members[start : start + size])))

    return ExplainPlan(
        db=db,
        model=model,
        config=config,
        method=method,
        seed=seed,
        explainer_kwargs=explainer_kwargs,
        labels=tuple(wanted),
        shards=tuple(shards),
        deadline=deadline,
    )


def assemble_views(
    subgraphs: Mapping[int, List[ExplanationSubgraph]],
    config: GvexConfig,
    labels: Sequence[int],
) -> ViewSet:
    """Parent-side tail of every executor: Psum over each label group.

    Subgraphs are ordered by source graph index (the serial iteration
    order), patterns are mined/summarized over the whole group, and the
    Eq. 2 scores aggregate — identical to the serial
    ``ApproxGvex.explain_label_group`` assembly, which is what makes
    executor outputs bit-comparable.
    """
    views = ViewSet()
    for label in labels:
        subs = sorted(subgraphs.get(label, []), key=lambda s: s.graph_index)
        view = ExplanationView(label=label, subgraphs=subs)
        psum = summarize([s.subgraph for s in subs], config)
        view.patterns = psum.patterns
        view.edge_loss = psum.edge_loss
        view.score = sum(s.score for s in subs)
        views.add(view)
    return views


__all__ = [
    "APPROX_METHOD",
    "Shard",
    "ExplainPlan",
    "build_plan",
    "shard_size_for",
    "observed_shard_size",
    "assemble_views",
]
