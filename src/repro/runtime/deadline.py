"""Monotonic deadline budgets threaded through the whole stack.

A :class:`Deadline` is an absolute ``time.monotonic()`` instant by
which a unit of work must finish. It is created once at the edge (an
``/explain`` request's ``deadline_seconds`` budget, a CLI flag) and
passed *down* — queue admission, :class:`~repro.runtime.plan.ExplainPlan`
execution, cluster dispatch — so every layer can refuse work whose
budget is already spent instead of silently occupying a slot:

* :meth:`Deadline.remaining` is what gets encoded on the wire (a
  relative budget in seconds — monotonic clocks are per-process, so
  absolute instants never cross a socket);
* :meth:`Deadline.require` raises the typed
  :class:`~repro.exceptions.DeadlineExpiredError` the HTTP layer maps
  to ``504`` (docs/api.md deadline contract).

Always ``time.monotonic()``, never ``time.time()``: wall clocks jump
(NTP, suspend) and are flagged by the ``REPRO304`` invariant checker
(docs/analysis.md).
"""

from __future__ import annotations

import time
from typing import Optional

from repro.exceptions import DeadlineExpiredError, ValidationError


class Deadline:
    """An absolute monotonic instant a unit of work must beat."""

    __slots__ = ("expires_at",)

    def __init__(self, expires_at: float) -> None:
        self.expires_at = float(expires_at)

    @classmethod
    def after(cls, budget_seconds: float) -> "Deadline":
        """A deadline ``budget_seconds`` from now (must be > 0)."""
        budget = float(budget_seconds)
        if budget <= 0:
            raise ValidationError(
                f"deadline budget must be > 0 seconds, got {budget_seconds!r}"
            )
        return cls(time.monotonic() + budget)

    @classmethod
    def from_budget(
        cls, budget_seconds: Optional[float]
    ) -> Optional["Deadline"]:
        """:meth:`after` for optional budgets (``None`` -> no deadline)."""
        if budget_seconds is None:
            return None
        return cls.after(budget_seconds)

    def remaining(self) -> float:
        """Seconds of budget left (clamped at 0.0)."""
        return max(0.0, self.expires_at - time.monotonic())

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def require(self, what: str = "work") -> None:
        """Raise :class:`DeadlineExpiredError` if the budget is spent."""
        if self.expired:
            raise DeadlineExpiredError(
                f"deadline expired: budget exhausted before {what}"
            )

    def __repr__(self) -> str:
        return f"<Deadline remaining={self.remaining():.3f}s>"


__all__ = ["Deadline"]
