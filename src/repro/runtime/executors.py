"""Executors: the one way explanation work is scheduled.

Every entry point — :class:`~repro.api.service.ExplanationService`,
``repro.cli explain``, the bench harness, ``repro.cli serve`` — builds
an :class:`~repro.runtime.plan.ExplainPlan` and hands it to one of
three executors:

* :class:`SerialExecutor` — runs the plan's shards in-process, in
  order. The reference for the parity contract.
* :class:`ForkPoolExecutor` — forks a worker pool; each worker holds an
  explicit :class:`WorkerState` (model, config, database, built
  explainer) initialized once, and drains whole shards as in-process
  loops, so the state — including the batched verifier's stacked
  scratch — stays warm across a shard's tasks. One pickled shard per
  task replaces the old one-pickled-graph-index-per-task protocol of
  ``repro.core.parallel``.
* :class:`ShardedExecutor` — the distributed simulation (absorbing
  ``repro.core.distributed``): the database is round-robin partitioned
  into replica shards, each replica runs its own restricted plan
  through an inner executor, and the partial view sets merge through
  ``repro.runtime.merge`` (union of subgraphs + parent-side Psum
  re-summarization), exactly the contract a multi-machine deployment
  would ship over the wire.

All three produce **bit-identical** view sets for deterministic
methods (``tests/test_runtime.py`` asserts this across the dataset
zoo); they differ only in scheduling.
"""

from __future__ import annotations

import multiprocessing as mp
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.config import SCOPE_PER_GROUP, GvexConfig
from repro.exceptions import ValidationError, WorkerCrashError
from repro.core.approx import ApproxGvex, database_predictions, explain_graph
from repro.gnn.model import GnnClassifier
from repro.graphs.database import GraphDatabase
from repro.graphs.view import ExplanationSubgraph, ViewSet
from repro.runtime.plan import (
    APPROX_METHOD,
    ExplainPlan,
    Shard,
    assemble_views,
    build_plan,
)

#: (graph index, label, explanation or None, inference calls)
TaskResult = Tuple[int, int, Optional[ExplanationSubgraph], int]


@dataclass
class WorkerState:
    """Everything one worker keeps warm while draining shards.

    Replaces ``repro.core.parallel``'s module-level worker globals with
    an explicit object: the (copy-on-write-shared) model weights, the
    config, the database, and — for registry methods other than the
    core ApproxGVEX kernel — the explainer, built exactly once per
    worker. ``inference_calls`` accumulates the approx path's
    forward-pass launches across every shard the worker runs.
    """

    model: GnnClassifier
    config: GvexConfig
    db: GraphDatabase
    method: str = APPROX_METHOD
    seed: int = 0
    explainer_kwargs: Mapping = field(default_factory=dict)
    inference_calls: int = 0
    _explainer: Optional[object] = field(default=None, repr=False)

    @classmethod
    def from_plan(cls, plan: ExplainPlan) -> "WorkerState":
        return cls(
            model=plan.model,
            config=plan.config,
            db=plan.db,
            method=plan.method,
            seed=plan.seed,
            explainer_kwargs=dict(plan.explainer_kwargs),
        )

    @property
    def explainer(self):
        """The built explainer (non-approx methods), cached per worker."""
        if self.method == APPROX_METHOD:
            return None
        if self._explainer is None:
            from repro.api.registry import build_explainer

            self._explainer = build_explainer(
                self.method,
                self.model,
                config=self.config,
                seed=self.seed,
                **dict(self.explainer_kwargs),
            )
        return self._explainer

    # ------------------------------------------------------------------
    def run_shard(self, shard: Shard) -> List[TaskResult]:
        """Explain every task of one shard as a single warm loop."""
        out: List[TaskResult] = []
        if self.method == APPROX_METHOD:
            # one stacked forward over the shard (fed from the
            # database's columnar CSR mirror) replaces the per-graph
            # M(G) pass each verifier launch used to pay; predictions
            # are the model's own, bit-identical to per-graph predict
            predictions = database_predictions(
                self.model, self.db, indices=list(shard.indices)
            )
            for index, prediction in zip(shard.indices, predictions):
                result = explain_graph(
                    self.model,
                    self.db[index],
                    shard.label,
                    self.config,
                    graph_index=index,
                    predicted=prediction,
                )
                self.inference_calls += result.inference_calls
                out.append(
                    (index, shard.label, result.subgraph, result.inference_calls)
                )
            return out
        explainer = self.explainer
        upper = self.config.coverage_for(shard.label).upper
        for index in shard.indices:
            subgraph = explainer.explain_graph(
                self.db[index],
                label=shard.label,
                max_nodes=upper or None,
                graph_index=index,
            )
            out.append((index, shard.label, subgraph, 0))
        return out


def _collect(
    results: Sequence[TaskResult], labels: Sequence[int]
) -> Tuple[Dict[int, List[ExplanationSubgraph]], int]:
    subgraphs: Dict[int, List[ExplanationSubgraph]] = {l: [] for l in labels}
    calls = 0
    for _, label, subgraph, task_calls in results:
        calls += task_calls
        if subgraph is not None:
            subgraphs[label].append(subgraph)
    return subgraphs, calls


def _require_budget(plan: ExplainPlan, what: str) -> None:
    """Refuse further work when the plan's deadline budget is spent."""
    if plan.deadline is not None:
        plan.deadline.require(what)


def _plan_predicted(plan: ExplainPlan) -> List[Optional[int]]:
    """Per-index predicted labels implied by the plan's shards."""
    predicted: List[Optional[int]] = [None] * len(plan.db)
    for shard in plan.shards:
        for index in shard.indices:
            predicted[index] = shard.label
    return predicted


def _native_non_approx(plan: ExplainPlan) -> bool:
    """Whether the plan's method owns its own whole-group pipeline.

    StreamGVEX (and any future ``native_views`` registration other
    than the core kernel) cannot be task-decomposed without changing
    its pattern-tier semantics; the fork-pool and sharded executors
    route such plans to the serial path instead of silently producing
    different views (fork) or duplicating full runs per replica
    (sharded).
    """
    if plan.method == APPROX_METHOD:
        return False
    from repro.api.registry import get_spec

    return get_spec(plan.method).native_views


class Executor:
    """Base scheduling policy: plan in, views (+ stats) out."""

    name = "base"

    def run(self, plan: ExplainPlan) -> Tuple[ViewSet, Dict[str, int]]:
        raise NotImplementedError


class SerialExecutor(Executor):
    """In-process execution, shard after shard — the parity reference.

    Two cases route around the shard loop to preserve semantics the
    task decomposition cannot express: the per-*group* coverage scope
    (its node budget threads sequentially through a label group) and
    native-view methods other than the core kernel (StreamGVEX's
    Algorithm 3 owns its own pattern pipeline). Both delegate to the
    method's own ``explain``/``explain_views``, exactly like the old
    serial fallback. Note that ``explain_views`` re-derives its label
    groups from model predictions, so a plan restricted via
    ``predicted`` is honored only by the shard-decomposable paths —
    the fork-pool and sharded executors therefore never decompose
    native-view methods (see :func:`_native_non_approx`).
    """

    name = "serial"

    def run(self, plan: ExplainPlan) -> Tuple[ViewSet, Dict[str, int]]:
        _require_budget(plan, "serial execution")
        if plan.method == APPROX_METHOD:
            if plan.config.coverage_scope == SCOPE_PER_GROUP:
                algo = ApproxGvex(plan.model, plan.config, labels=plan.labels)
                views = algo.explain(plan.db, predicted=_plan_predicted(plan))
                return views, {"inference_calls": algo.total_inference_calls}
            state = WorkerState.from_plan(plan)
            results: List[TaskResult] = []
            for shard in plan.shards:
                _require_budget(plan, "the next shard")
                results.extend(state.run_shard(shard))
            subgraphs, calls = _collect(results, plan.labels)
            return (
                assemble_views(subgraphs, plan.config, plan.labels),
                {"inference_calls": calls},
            )

        from repro.api.registry import get_spec

        state = WorkerState.from_plan(plan)
        if get_spec(plan.method).native_views:
            views = state.explainer.explain_views(
                plan.db, labels=plan.labels, config=plan.config
            )
            return views, {"inference_calls": 0}
        results = []
        for shard in plan.shards:
            _require_budget(plan, "the next shard")
            results.extend(state.run_shard(shard))
        subgraphs, _ = _collect(results, plan.labels)
        return (
            assemble_views(subgraphs, plan.config, plan.labels),
            {"inference_calls": 0},
        )


# ----------------------------------------------------------------------
# fork-pool execution
# ----------------------------------------------------------------------
_WORKER_STATE: Optional[WorkerState] = None


def _init_worker(
    model: GnnClassifier,
    config: GvexConfig,
    db: GraphDatabase,
    method: str,
    seed: int,
    explainer_kwargs: Mapping,
) -> None:
    global _WORKER_STATE
    _WORKER_STATE = WorkerState(
        model=model,
        config=config,
        db=db,
        method=method,
        seed=seed,
        explainer_kwargs=dict(explainer_kwargs),
    )
    # non-approx explainers are built eagerly so a bad constructor
    # override fails at pool startup, not mid-shard
    _WORKER_STATE.explainer


def _run_shard(shard: Shard) -> List[TaskResult]:
    assert _WORKER_STATE is not None
    return _WORKER_STATE.run_shard(shard)


def _fork_map(plan: ExplainPlan, processes: int) -> List[TaskResult]:
    """Run a plan's shards over a fork pool; crash-safe, order-preserving.

    Uses :class:`concurrent.futures.ProcessPoolExecutor` (fork context)
    rather than ``multiprocessing.Pool``: when a worker process dies
    mid-shard (OOM-killed, ``SIGKILL``, segfault), the executor raises
    ``BrokenProcessPool`` promptly instead of hanging ``pool.map``
    forever — the serve path turns that into a clean 5xx with its queue
    slot reclaimed. Task exceptions re-raise unchanged, and ``map``
    preserves shard order, so results stay bit-identical to the serial
    schedule.
    """
    ctx = mp.get_context("fork")
    results: List[TaskResult] = []
    try:
        with ProcessPoolExecutor(
            max_workers=processes,
            mp_context=ctx,
            initializer=_init_worker,
            initargs=(
                plan.model,
                plan.config,
                plan.db,
                plan.method,
                plan.seed,
                dict(plan.explainer_kwargs),
            ),
        ) as pool:
            for shard_results in pool.map(_run_shard, plan.shards):
                results.extend(shard_results)
    except BrokenProcessPool as exc:
        raise WorkerCrashError(
            "a fork-pool worker died mid-shard (killed or crashed); "
            "partial results discarded"
        ) from exc
    return results


class ForkPoolExecutor(Executor):
    """Fork a pool; each worker drains whole shards with warm state.

    Falls back to :class:`SerialExecutor` when ``processes <= 1`` or
    the platform cannot fork. Only the explanation phase is
    distributed; the Psum summarize tail runs in the parent (it needs
    the whole label group's subgraphs).
    """

    name = "fork-pool"

    def __init__(self, processes: int = 2):
        self.processes = processes

    def run(self, plan: ExplainPlan) -> Tuple[ViewSet, Dict[str, int]]:
        if self.processes <= 1:
            return SerialExecutor().run(plan)
        if plan.method == APPROX_METHOD and (
            plan.config.coverage_scope == SCOPE_PER_GROUP
        ):
            return SerialExecutor().run(plan)
        if _native_non_approx(plan):
            # distributing per-graph explain_graph would change the
            # method's own pattern pipeline: keep the serial semantics
            return SerialExecutor().run(plan)
        try:
            mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            return SerialExecutor().run(plan)

        _require_budget(plan, "forking the worker pool")
        results = _fork_map(plan, self.processes)
        subgraphs, calls = _collect(results, plan.labels)
        return (
            assemble_views(subgraphs, plan.config, plan.labels),
            {"inference_calls": calls},
        )


class ShardedExecutor(Executor):
    """Replica sharding: partition the database, explain, merge.

    Each replica gets every ``n_shards``-th graph (global indices are
    preserved), runs its own restricted plan through ``inner`` — any
    executor — and produces a *partial* view set with its own Psum
    tier. Partials merge by unioning subgraphs and re-summarizing over
    the union (``repro.runtime.merge``), so node coverage is preserved
    and the pattern tier stays near-optimal. The wire-level deployment
    of this contract — replicas on different machines shipping partial
    views to a coordinator over HTTP, with heartbeats and shard
    re-dispatch — is :mod:`repro.runtime.cluster`
    (:class:`~repro.runtime.cluster.DistributedExecutor`); this class
    remains the single-process simulation the cluster's bit-parity
    tests compare against.
    """

    name = "sharded"

    def __init__(self, n_shards: int = 2, inner: Optional[Executor] = None):
        if n_shards < 1:
            raise ValidationError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = n_shards
        self.inner = inner if inner is not None else SerialExecutor()

    def run(self, plan: ExplainPlan) -> Tuple[ViewSet, Dict[str, int]]:
        from repro.runtime.merge import merge_view_sets

        if _native_non_approx(plan):
            # each replica would re-run the whole-group pipeline over
            # the full database (explain_views re-derives its groups)
            # and the merge would only deduplicate identical results:
            # run it once instead
            return self.inner.run(plan)
        predicted = _plan_predicted(plan)
        parts: List[ViewSet] = []
        calls = 0
        for replica in range(self.n_shards):
            _require_budget(plan, f"replica {replica}")
            replica_predicted: List[Optional[int]] = [
                p if i % self.n_shards == replica else None
                for i, p in enumerate(predicted)
            ]
            replica_plan = build_plan(
                plan.db,
                plan.model,
                plan.config,
                labels=plan.labels,
                predicted=replica_predicted,
                method=plan.method,
                seed=plan.seed,
                explainer_kwargs=plan.explainer_kwargs,
                deadline=plan.deadline,
            )
            views, stats = self.inner.run(replica_plan)
            calls += stats.get("inference_calls", 0)
            parts.append(views)
        merged = merge_view_sets(parts, plan.config, labels=plan.labels)
        return merged, {"inference_calls": calls}


def run_tasks(plan: ExplainPlan, processes: int = 1) -> List[TaskResult]:
    """Run a plan's shards and return raw per-task results (no Psum tail).

    The bench harness uses this to drive per-graph sweeps through the
    same scheduling layer as full view generation: warm
    :class:`WorkerState`, shard-at-a-time dispatch, optional fork pool.
    """
    if processes > 1:
        try:
            mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            pass
        else:
            return _fork_map(plan, processes)
    state = WorkerState.from_plan(plan)
    return [r for shard in plan.shards for r in state.run_shard(shard)]


def make_executor(
    processes: int = 1, n_shards: int = 1
) -> Executor:
    """The executor for a (processes, n_shards) request.

    ``n_shards > 1`` wraps the pool/serial choice in a
    :class:`ShardedExecutor`; ``processes > 1`` selects the fork pool.
    """
    if n_shards < 1:
        raise ValidationError(f"n_shards must be >= 1, got {n_shards}")
    inner: Executor
    inner = ForkPoolExecutor(processes) if processes > 1 else SerialExecutor()
    if n_shards > 1:
        return ShardedExecutor(n_shards, inner=inner)
    return inner


def run_plan(
    plan: ExplainPlan,
    *,
    processes: int = 1,
    n_shards: int = 1,
    return_stats: bool = False,
):
    """One-call execution: pick an executor, run, unwrap."""
    views, stats = make_executor(processes, n_shards).run(plan)
    if return_stats:
        return views, stats
    return views


__all__ = [
    "TaskResult",
    "WorkerState",
    "Executor",
    "SerialExecutor",
    "ForkPoolExecutor",
    "ShardedExecutor",
    "make_executor",
    "run_plan",
    "run_tasks",
]
