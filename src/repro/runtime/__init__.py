"""``repro.runtime`` — one execution engine for all explanation work.

Historically four call sites scheduled explanation four different ways
(the facade's serial loop, ``core.parallel``'s fork pool,
``core.distributed``'s shard-and-merge, and the HTTP server's global
lock). This package is now the *only* scheduling layer:

* :func:`build_plan` partitions a database into label-group
  :class:`Shard`\\ s sized to the batched verifier's cache geometry
  (``repro.runtime.plan``);
* :class:`SerialExecutor` / :class:`ForkPoolExecutor` /
  :class:`ShardedExecutor` run a plan with identical results and
  different scheduling (``repro.runtime.executors``), fork workers
  holding an explicit warm :class:`WorkerState`;
* :func:`merge_views` / :func:`merge_view_sets` combine replica-level
  partial views (``repro.runtime.merge``);
* :class:`BoundedWorkQueue` gives the serving layer admission control
  and backpressure (``repro.runtime.workqueue``).

The deprecated ``repro.core.parallel`` and ``repro.core.distributed``
wrappers have been removed after their deprecation cycle — build a
plan and pick an executor instead (docs/runtime.md has the migration
table). The architecture is documented in ``docs/runtime.md``; the
exported surface is snapshotted by ``scripts/check_api_surface.py``.
"""

from repro.runtime.deadline import Deadline
from repro.runtime.executors import (
    Executor,
    ForkPoolExecutor,
    SerialExecutor,
    ShardedExecutor,
    WorkerState,
    make_executor,
    run_plan,
    run_tasks,
)
from repro.runtime.faults import FAULT_KINDS, FaultPlan, FaultSpec
from repro.runtime.merge import merge_view_sets, merge_views
from repro.runtime.plan import (
    APPROX_METHOD,
    ExplainPlan,
    Shard,
    assemble_views,
    build_plan,
    observed_shard_size,
    shard_size_for,
)
from repro.runtime.workqueue import (
    DEFAULT_CAPACITY,
    DEFAULT_TENANT,
    BoundedWorkQueue,
    WorkItem,
)

__all__ = [
    # plan
    "APPROX_METHOD",
    "ExplainPlan",
    "Shard",
    "build_plan",
    "shard_size_for",
    "observed_shard_size",
    "assemble_views",
    # executors
    "Executor",
    "SerialExecutor",
    "ForkPoolExecutor",
    "ShardedExecutor",
    "WorkerState",
    "make_executor",
    "run_plan",
    "run_tasks",
    # merge
    "merge_views",
    "merge_view_sets",
    # work queue
    "BoundedWorkQueue",
    "WorkItem",
    "DEFAULT_CAPACITY",
    "DEFAULT_TENANT",
    # fault discipline
    "Deadline",
    "FaultPlan",
    "FaultSpec",
    "FAULT_KINDS",
]
