"""Bounded work queue with backpressure for the serving layer.

``repro.cli serve`` used to serialize ``/explain`` requests under one
global lock: every concurrent explain blocked inside the HTTP handler
with no depth bound and no visibility. The queue replaces that with an
explicit admission policy:

* a fixed **capacity**: submissions beyond it are rejected immediately
  (:class:`~repro.exceptions.QueueFullError`), which the HTTP layer
  maps to ``503 Service Unavailable`` — callers get backpressure
  instead of unbounded queueing;
* one worker thread drains jobs in FIFO order, preserving the
  serve path's one-explain-at-a-time invariant (the model must never
  be trained twice concurrently);
* counters — depth, in-flight, submitted/completed/rejected/failed
  totals, wait and run latency — surfaced on ``/health``.

The queue is deliberately scheduler-agnostic: a job is any callable,
so the server submits facade calls that themselves run through the
plan/executor runtime.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Callable, Dict, Optional

from repro.exceptions import QueueFullError

DEFAULT_CAPACITY = 8


class WorkItem:
    """A submitted job: wait for it, then read ``result`` or re-raise."""

    def __init__(self, fn: Callable[[], Any]):
        self._fn = fn
        self._done = threading.Event()
        self._result: Any = None
        self._error: Optional[BaseException] = None
        self.submitted_at = time.perf_counter()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    def run(self) -> None:
        self.started_at = time.perf_counter()
        try:
            self._result = self._fn()
        except BaseException as exc:  # noqa: BLE001 - re-raised in result()
            self._error = exc
        finally:
            self.finished_at = time.perf_counter()
            self._done.set()

    def result(self, timeout: Optional[float] = None) -> Any:
        if not self._done.wait(timeout):
            raise TimeoutError("work item did not complete in time")
        if self._error is not None:
            raise self._error
        return self._result

    @property
    def failed(self) -> bool:
        return self._error is not None


class BoundedWorkQueue:
    """FIFO queue with a hard depth bound and latency counters."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._queue: "queue.Queue[Optional[WorkItem]]" = queue.Queue(
            maxsize=capacity
        )
        self._lock = threading.Lock()
        self._in_flight = 0
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._rejected = 0
        self._wait_seconds = 0.0
        self._run_seconds = 0.0
        self._last_latency = 0.0
        self._closed = False
        self._worker = threading.Thread(
            target=self._drain, name="repro-work-queue", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------------
    def submit(self, fn: Callable[[], Any]) -> WorkItem:
        """Admit a job or raise :class:`QueueFullError` immediately."""
        item = WorkItem(fn)
        with self._lock:
            if self._closed:
                raise QueueFullError("work queue is closed")
            try:
                self._queue.put_nowait(item)
            except queue.Full:
                self._rejected += 1
                raise QueueFullError(
                    f"work queue at capacity ({self.capacity} pending)"
                ) from None
            self._submitted += 1
        return item

    def run(self, fn: Callable[[], Any], timeout: Optional[float] = None) -> Any:
        """Submit and block for the result (the HTTP handler's path)."""
        return self.submit(fn).result(timeout)

    # ------------------------------------------------------------------
    def _drain(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:  # close sentinel
                return
            with self._lock:
                self._in_flight += 1
            item.run()
            with self._lock:
                self._in_flight -= 1
                assert item.started_at is not None
                assert item.finished_at is not None
                self._wait_seconds += item.started_at - item.submitted_at
                self._run_seconds += item.finished_at - item.started_at
                self._last_latency = item.finished_at - item.submitted_at
                if item.failed:
                    self._failed += 1
                else:
                    self._completed += 1

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Jobs admitted but not yet finished (queued + in flight)."""
        with self._lock:
            return self._queue.qsize() + self._in_flight

    def stats(self) -> Dict[str, Any]:
        """Counters for ``/health`` and diagnostics."""
        with self._lock:
            finished = self._completed + self._failed
            return {
                "capacity": self.capacity,
                "depth": self._queue.qsize() + self._in_flight,
                "in_flight": self._in_flight,
                "submitted": self._submitted,
                "completed": self._completed,
                "failed": self._failed,
                "rejected": self._rejected,
                "avg_wait_seconds": (
                    self._wait_seconds / finished if finished else 0.0
                ),
                "avg_run_seconds": (
                    self._run_seconds / finished if finished else 0.0
                ),
                "last_latency_seconds": self._last_latency,
            }

    def close(self) -> None:
        """Stop admitting work and let the worker exit after the backlog."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._queue.put(None)


__all__ = ["BoundedWorkQueue", "WorkItem", "DEFAULT_CAPACITY"]
