"""Bounded multi-consumer work queue with tenant-aware backpressure.

``repro.cli serve`` used to serialize ``/explain`` requests under one
global lock: every concurrent explain blocked inside the HTTP handler
with no depth bound and no visibility. The queue replaces that with an
explicit admission policy:

* a fixed **capacity**: submissions beyond the queued backlog are
  rejected immediately (:class:`~repro.exceptions.QueueFullError`),
  which the HTTP layer maps to ``503 Service Unavailable`` — callers
  get backpressure instead of unbounded queueing;
* a pool of **worker threads** (``workers``, default 1) drains jobs in
  FIFO admission order. With one worker this preserves the historical
  one-explain-at-a-time invariant; with several, queued explains run
  concurrently (per-tenant mutual exclusion is the submitting layer's
  contract — :class:`~repro.api.service.ExplanationService` serializes
  its own ``explain`` calls, so only *distinct* tenants overlap);
* optional **per-tenant depth bounds** (``tenant_capacity``): one hot
  tenant saturating the replica is rejected at its own limit while
  other tenants keep being admitted;
* counters — global and per-tenant depth, in-flight,
  submitted/completed/rejected/failed totals, wait and run latency —
  updated atomically under one lock and surfaced on ``/health``, so
  they stay exact under concurrent submission, drain, and failure.

The queue is deliberately scheduler-agnostic: a job is any callable,
so the server submits facade calls that themselves run through the
plan/executor runtime.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Callable, Dict, Optional

from repro.exceptions import (
    DeadlineExpiredError,
    QueueFullError,
    ValidationError,
)
from repro.runtime.deadline import Deadline

DEFAULT_CAPACITY = 8
#: tenant key used when a submission names no tenant
DEFAULT_TENANT = "default"


class WorkItem:
    """A submitted job: wait for it, then read ``result`` or re-raise."""

    def __init__(
        self,
        fn: Callable[[], Any],
        tenant: str = DEFAULT_TENANT,
        deadline: Optional[Deadline] = None,
    ):
        self._fn = fn
        self.tenant = tenant
        self.deadline = deadline
        self._done = threading.Event()
        self._result: Any = None
        self._error: Optional[BaseException] = None
        self.submitted_at = time.perf_counter()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    def run(self) -> None:
        self.started_at = time.perf_counter()
        try:
            # a job whose budget died in the backlog is never started —
            # running it would hold a worker slot for an answer nobody
            # is waiting on (docs/api.md deadline contract)
            if self.deadline is not None:
                self.deadline.require("leaving the work queue")
            self._result = self._fn()
        except BaseException as exc:  # repro: noqa[REPRO401] - re-raised in result()
            self._error = exc
        finally:
            self.finished_at = time.perf_counter()
            self._done.set()

    def result(self, timeout: Optional[float] = None) -> Any:
        if not self._done.wait(timeout):
            raise TimeoutError("work item did not complete in time")
        if self._error is not None:
            raise self._error
        return self._result

    @property
    def failed(self) -> bool:
        return self._error is not None


class _TenantCounters:
    """Per-tenant admission/drain accounting (mutated under the queue lock)."""

    __slots__ = (
        "queued",
        "in_flight",
        "submitted",
        "completed",
        "failed",
        "rejected",
        "expired",
    )

    def __init__(self) -> None:
        self.queued = 0
        self.in_flight = 0
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.rejected = 0
        self.expired = 0

    @property
    def depth(self) -> int:
        return self.queued + self.in_flight

    def snapshot(self) -> Dict[str, int]:
        return {
            "depth": self.depth,
            "queued": self.queued,
            "in_flight": self.in_flight,
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "expired": self.expired,
        }


class BoundedWorkQueue:
    """FIFO queue with hard depth bounds and exact latency counters.

    ``capacity`` bounds the *queued backlog* (jobs admitted but not yet
    picked up by a worker) — the historical contract, so a queue with
    ``capacity=c`` and ``workers=w`` holds at most ``c + w`` admitted
    jobs. ``tenant_capacity`` additionally bounds one tenant's *depth*
    (queued **plus** in-flight), so a single tenant can never occupy
    more than ``tenant_capacity`` slots of the replica at once.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        workers: int = 1,
        tenant_capacity: Optional[int] = None,
    ):
        if capacity < 1:
            raise ValidationError(f"queue capacity must be >= 1, got {capacity}")
        if workers < 1:
            raise ValidationError(f"queue workers must be >= 1, got {workers}")
        if tenant_capacity is not None and tenant_capacity < 1:
            raise ValidationError(
                f"tenant_capacity must be >= 1 or None, got {tenant_capacity}"
            )
        self.capacity = capacity
        self.workers = workers
        self.tenant_capacity = tenant_capacity
        # admission is enforced via the counters below (one lock makes
        # the global check, the per-tenant check, and the counter bumps
        # one atomic step); the underlying queue is unbounded
        self._queue: "queue.Queue[Optional[WorkItem]]" = queue.Queue()
        self._lock = threading.Lock()
        self._queued = 0
        self._in_flight = 0
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._rejected = 0
        self._expired = 0
        self._wait_seconds = 0.0
        self._run_seconds = 0.0
        self._last_latency = 0.0
        self._tenants: Dict[str, _TenantCounters] = {}
        self._closed = False
        self._threads = [
            threading.Thread(
                target=self._drain, name=f"repro-work-queue-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    def submit(
        self,
        fn: Callable[[], Any],
        tenant: str = DEFAULT_TENANT,
        deadline: Optional[Deadline] = None,
    ) -> WorkItem:
        """Admit a job or raise :class:`QueueFullError` immediately.

        Admission, rejection, and every counter update happen under one
        lock acquisition, so ``stats()`` can never observe a submission
        that is neither queued, in flight, finished, nor rejected.

        A ``deadline`` that is already spent is refused at admission
        (:class:`DeadlineExpiredError`, counted under ``expired``);
        one that dies in the backlog fails at drain time *without
        running* — either way zero depth leaks.
        """
        item = WorkItem(fn, tenant=tenant, deadline=deadline)
        with self._lock:
            if self._closed:
                raise QueueFullError("work queue is closed")
            counters = self._tenants.setdefault(tenant, _TenantCounters())
            if deadline is not None and deadline.expired:
                counters.expired += 1
                self._expired += 1
                raise DeadlineExpiredError(
                    "deadline expired: budget exhausted before the work "
                    "queue could admit the request"
                )
            if (
                self.tenant_capacity is not None
                and counters.depth >= self.tenant_capacity
            ):
                counters.rejected += 1
                self._rejected += 1
                raise QueueFullError(
                    f"tenant {tenant!r} at capacity "
                    f"({self.tenant_capacity} in flight or pending)",
                    scope="tenant",
                    tenant=tenant,
                )
            if self._queued >= self.capacity:
                counters.rejected += 1
                self._rejected += 1
                raise QueueFullError(
                    f"work queue at capacity ({self.capacity} pending)"
                )
            self._queued += 1
            self._submitted += 1
            counters.queued += 1
            counters.submitted += 1
            self._queue.put_nowait(item)
        return item

    def run(
        self,
        fn: Callable[[], Any],
        timeout: Optional[float] = None,
        tenant: str = DEFAULT_TENANT,
        deadline: Optional[Deadline] = None,
    ) -> Any:
        """Submit and block for the result (the HTTP handler's path)."""
        return self.submit(fn, tenant=tenant, deadline=deadline).result(timeout)

    # ------------------------------------------------------------------
    def _drain(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:  # close sentinel (one per worker)
                return
            with self._lock:
                counters = self._tenants.setdefault(
                    item.tenant, _TenantCounters()
                )
                self._queued -= 1
                self._in_flight += 1
                counters.queued -= 1
                counters.in_flight += 1
            item.run()
            with self._lock:
                self._in_flight -= 1
                counters.in_flight -= 1
                assert item.started_at is not None
                assert item.finished_at is not None
                self._wait_seconds += item.started_at - item.submitted_at
                self._run_seconds += item.finished_at - item.started_at
                self._last_latency = item.finished_at - item.submitted_at
                if item.failed:
                    if isinstance(item._error, DeadlineExpiredError):
                        self._expired += 1
                        counters.expired += 1
                    else:
                        self._failed += 1
                        counters.failed += 1
                else:
                    self._completed += 1
                    counters.completed += 1

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Jobs admitted but not yet finished (queued + in flight)."""
        with self._lock:
            return self._queued + self._in_flight

    def depth_for(self, tenant: str) -> int:
        """One tenant's admitted-but-unfinished job count."""
        with self._lock:
            counters = self._tenants.get(tenant)
            return counters.depth if counters is not None else 0

    def stats(self) -> Dict[str, Any]:
        """Counters for ``/health`` and diagnostics (one atomic snapshot)."""
        with self._lock:
            finished = self._completed + self._failed
            return {
                "capacity": self.capacity,
                "workers": self.workers,
                "tenant_capacity": self.tenant_capacity,
                "depth": self._queued + self._in_flight,
                "in_flight": self._in_flight,
                "submitted": self._submitted,
                "completed": self._completed,
                "failed": self._failed,
                "rejected": self._rejected,
                "expired": self._expired,
                "avg_wait_seconds": (
                    self._wait_seconds / finished if finished else 0.0
                ),
                "avg_run_seconds": (
                    self._run_seconds / finished if finished else 0.0
                ),
                "last_latency_seconds": self._last_latency,
                "tenants": {
                    name: counters.snapshot()
                    for name, counters in sorted(self._tenants.items())
                },
            }

    def close(self) -> None:
        """Stop admitting work and let the workers exit after the backlog."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._threads:
            self._queue.put(None)


__all__ = ["BoundedWorkQueue", "WorkItem", "DEFAULT_CAPACITY", "DEFAULT_TENANT"]
