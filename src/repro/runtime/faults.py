"""Deterministic fault injection for transport and journal I/O.

``tests/test_cluster_faults.py`` used to induce failures ad hoc —
monkeypatched methods, hand-rolled rogue servers. This module replaces
that with a *plan*: a :class:`FaultPlan` decides, purely as a function
of its seed (or an explicit spec list), which call index at which
named **site** suffers which fault. The transport layer
(:func:`repro.runtime.cluster.transport.post_json` and friends) and
the shard journal (:class:`repro.runtime.cluster.journal.ShardJournal`)
consult the plan before touching the socket or the file, so a whole
cluster run's fault sequence is reproducible from one integer.

Fault kinds (:data:`FAULT_KINDS`):

``drop``       connection refused before the request is sent (transient)
``reset``      connection reset mid-exchange (transient)
``timeout``    the request times out (transient)
``http_503``   the peer answers ``503 Service Unavailable`` (transient)
``http_401``   the peer answers ``401 Unauthorized`` (fatal)
``delay``      the exchange is slowed by ``spec.delay`` seconds (no error)
``torn_write`` a journal append persists only a prefix of its record

Determinism contract: :meth:`FaultPlan.seeded` derives its entire
schedule from ``(seed, sites, kinds, rate, horizon)`` with a private
``random.Random(seed)`` — two plans built with the same arguments have
equal :meth:`schedule`\\ s, so re-running a chaos soak with a seed
reproduces the identical fault sequence (docs/faults.md). Call-index
counters are kept per site under a lock, so concurrent dispatcher
threads see one consistent numbering.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import ValidationError

#: every injectable fault kind
FAULT_KINDS: Tuple[str, ...] = (
    "drop",
    "reset",
    "timeout",
    "http_503",
    "http_401",
    "delay",
    "torn_write",
)

#: kinds that make sense at a transport site (everything but torn_write)
TRANSPORT_KINDS: Tuple[str, ...] = (
    "drop",
    "reset",
    "timeout",
    "http_503",
    "delay",
)

#: the canonical site names the runtime consults
SITE_DISPATCH = "dispatch"
SITE_HEARTBEAT = "heartbeat"
SITE_REGISTER = "register"
SITE_JOURNAL = "journal.append"


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: at ``site``'s ``index``-th call, do ``kind``."""

    site: str
    index: int
    kind: str
    #: seconds slept for ``delay`` faults (ignored otherwise)
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValidationError(
                f"unknown fault kind {self.kind!r} "
                f"(choose from {list(FAULT_KINDS)})"
            )
        if self.index < 0:
            raise ValidationError(
                f"fault call index must be >= 0, got {self.index}"
            )


class FaultPlan:
    """A seeded, reproducible schedule of injected faults.

    Thread-safe: per-site call counters advance under one lock, and the
    :attr:`injected` log records every fault actually fired (in firing
    order) for post-run assertions.
    """

    def __init__(self, specs: Iterable[FaultSpec] = (), seed: int = 0) -> None:
        self.seed = int(seed)
        self._specs: Dict[Tuple[str, int], FaultSpec] = {}
        for spec in specs:
            key = (spec.site, spec.index)
            if key in self._specs:
                raise ValidationError(
                    f"duplicate fault spec for site {spec.site!r} "
                    f"index {spec.index}"
                )
            self._specs[key] = spec
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        #: faults actually fired, in firing order
        self.injected: List[FaultSpec] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def seeded(
        cls,
        seed: int,
        sites: Sequence[str] = (SITE_DISPATCH,),
        kinds: Optional[Sequence[str]] = None,
        rate: float = 0.25,
        horizon: int = 64,
        delay: float = 0.02,
    ) -> "FaultPlan":
        """A randomized-but-reproducible plan.

        For each site and each call index below ``horizon``, an
        injection fires with probability ``rate``, drawing its kind
        uniformly from ``kinds`` (default: the transport kinds for
        transport sites, ``torn_write`` for journal sites). The whole
        schedule is a pure function of the arguments: equal arguments
        give equal :meth:`schedule`\\ s.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValidationError(f"fault rate must be in [0, 1], got {rate}")
        if horizon < 0:
            raise ValidationError(f"horizon must be >= 0, got {horizon}")
        rng = random.Random(int(seed))
        specs: List[FaultSpec] = []
        for site in sites:
            site_kinds = tuple(kinds) if kinds is not None else (
                ("torn_write",)
                if site.startswith("journal")
                else TRANSPORT_KINDS
            )
            for index in range(horizon):
                if rng.random() < rate:
                    kind = site_kinds[rng.randrange(len(site_kinds))]
                    specs.append(
                        FaultSpec(site=site, index=index, kind=kind, delay=delay)
                    )
        return cls(specs, seed=seed)

    def schedule(self) -> Tuple[FaultSpec, ...]:
        """The full planned schedule, sorted (site, index) — pure data."""
        return tuple(
            self._specs[key] for key in sorted(self._specs)
        )

    # ------------------------------------------------------------------
    # consumption
    # ------------------------------------------------------------------
    def _take(self, site: str) -> Optional[FaultSpec]:
        """Advance ``site``'s call counter; return the fault due, if any."""
        with self._lock:
            index = self._counters.get(site, 0)
            self._counters[site] = index + 1
            spec = self._specs.get((site, index))
            if spec is not None:
                self.injected.append(spec)
            return spec

    def before_request(self, site: str) -> None:
        """Transport hook: raise/delay per the schedule.

        Called by ``transport.post_json``/``get_json`` before the
        exchange. Raised errors are :class:`TransportError`\\ s carrying
        the same transient/fatal classification a real failure would,
        so the retry policy and circuit breaker exercise their real
        code paths.
        """
        spec = self._take(site)
        if spec is None:
            return
        if spec.kind == "delay":
            time.sleep(spec.delay)
            return
        from repro.exceptions import TransportError

        if spec.kind == "drop":
            raise TransportError(
                f"[injected:{site}#{spec.index}] connection refused"
            )
        if spec.kind == "reset":
            raise TransportError(
                f"[injected:{site}#{spec.index}] connection reset by peer"
            )
        if spec.kind == "timeout":
            raise TransportError(
                f"[injected:{site}#{spec.index}] timed out"
            )
        if spec.kind == "http_503":
            raise TransportError(
                f"[injected:{site}#{spec.index}] answered HTTP 503",
                status=503,
            )
        if spec.kind == "http_401":
            raise TransportError(
                f"[injected:{site}#{spec.index}] answered HTTP 401",
                status=401,
            )
        raise ValidationError(  # pragma: no cover - kinds validated above
            f"fault kind {spec.kind!r} cannot fire at transport site {site!r}"
        )

    def torn_write(self, site: str = SITE_JOURNAL) -> bool:
        """Journal hook: True if this append must tear (persist a prefix)."""
        spec = self._take(site)
        return spec is not None and spec.kind == "torn_write"

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "planned": len(self._specs),
                "injected": len(self.injected),
                **{
                    f"calls[{site}]": count
                    for site, count in sorted(self._counters.items())
                },
            }

    def __repr__(self) -> str:
        return (
            f"<FaultPlan seed={self.seed} planned={len(self._specs)} "
            f"injected={len(self.injected)}>"
        )


__all__ = [
    "FAULT_KINDS",
    "TRANSPORT_KINDS",
    "SITE_DISPATCH",
    "SITE_HEARTBEAT",
    "SITE_REGISTER",
    "SITE_JOURNAL",
    "FaultSpec",
    "FaultPlan",
]
