"""HTTP client plumbing for cluster peers (stdlib ``urllib`` only).

Two calls — POST a JSON object, GET a JSON object — with bearer auth
and a hard timeout. Every failure mode collapses into one typed
exception, :class:`~repro.exceptions.TransportError`, but failures are
no longer equal: each error carries a **classification** (``status``,
``transient``) that :class:`RetryPolicy` acts on:

* transient — connection refused/reset, timeout, and backpressure
  statuses (:data:`TRANSIENT_STATUSES`: 408, 429, 500, 502, 503, 504)
  → worth retrying with backoff;
* fatal — 401/404 and unparseable bodies → retrying the identical
  request can only fail identically, so the policy raises immediately.

Wire-schema validation stays out of this module — callers decode the
returned object with ``cluster.wire`` (a :class:`WireError` is always
fatal).

Both entry points accept an optional
:class:`~repro.runtime.faults.FaultPlan` plus a ``site`` name; the plan
is consulted *before* the socket is touched, so chaos tests inject
drops/resets/503s deterministically through the same retry/breaker
code paths real failures take (docs/faults.md).
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, TypeVar
from urllib.error import HTTPError, URLError
from urllib.request import Request, urlopen

from repro.exceptions import TransportError, ValidationError
from repro.runtime.deadline import Deadline

#: default per-request timeout; dispatch calls override this with the
#: coordinator's configured request timeout (``--transport-timeout``)
DEFAULT_TIMEOUT = 30.0

#: HTTP statuses classified as transient (re-exported from the
#: exception class so retry code can import everything from here)
TRANSIENT_STATUSES = TransportError.TRANSIENT_STATUSES

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Budget-capped exponential backoff with deterministic jitter.

    ``delay(attempt, salt)`` is a pure function of the policy's fields
    — the jitter comes from ``random.Random(f"{seed}:{salt}:{attempt}")``,
    not shared global state — so a cluster run's retry timing is
    reproducible from its seed and thread-safe without locks.

    :meth:`call` retries **only transient** :class:`TransportError`\\ s
    (fatal ones re-raise immediately) and never sleeps past the
    caller's :class:`~repro.runtime.deadline.Deadline`: when the budget
    cannot cover the next backoff, the last transient error is raised
    so the caller sees why the work could not complete in time.
    """

    attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValidationError(
                f"retry attempts must be >= 1, got {self.attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValidationError("retry delays must be >= 0")

    def delay(self, attempt: int, salt: str = "") -> float:
        """Backoff before retry ``attempt`` (0-based): exponential,
        capped at ``max_delay``, jittered into [50%, 100%]."""
        raw = min(self.max_delay, self.base_delay * (2.0 ** attempt))
        jitter = random.Random(f"{self.seed}:{salt}:{attempt}").random()
        return raw * (0.5 + 0.5 * jitter)

    def call(
        self,
        fn: Callable[[], T],
        *,
        salt: str = "",
        deadline: Optional[Deadline] = None,
    ) -> T:
        """Run ``fn`` with up to ``attempts`` tries."""
        last: Optional[TransportError] = None
        for attempt in range(self.attempts):
            if deadline is not None:
                deadline.require("transport attempt")
            try:
                return fn()
            except TransportError as exc:
                if not exc.transient:
                    raise
                last = exc
                if attempt + 1 >= self.attempts:
                    break
                pause = self.delay(attempt, salt)
                if deadline is not None and deadline.remaining() < pause:
                    break
                if pause > 0:
                    time.sleep(pause)
        assert last is not None
        raise last


def _headers(token: Optional[str]) -> Dict[str, str]:
    headers = {"Content-Type": "application/json"}
    if token is not None:
        headers["Authorization"] = f"Bearer {token}"
    return headers


def _exchange(request: Request, timeout: float) -> Dict[str, Any]:
    try:
        with urlopen(request, timeout=timeout) as response:
            raw = response.read()
    except HTTPError as exc:
        detail = ""
        try:
            body = json.loads(exc.read().decode("utf-8"))
            detail = f": {body.get('error', body)}"
        except Exception:  # repro: noqa[REPRO401] - best-effort detail
            pass
        raise TransportError(
            f"{request.full_url} answered HTTP {exc.code}{detail}",
            status=exc.code,
        ) from exc
    except (URLError, OSError, TimeoutError) as exc:
        raise TransportError(
            f"{request.full_url} unreachable: {exc}", transient=True
        ) from exc
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise TransportError(
            f"{request.full_url} returned a non-JSON body", transient=False
        ) from exc
    if not isinstance(payload, dict):
        raise TransportError(
            f"{request.full_url} returned a non-object JSON body",
            transient=False,
        )
    return payload


def post_json(
    url: str,
    payload: Dict[str, Any],
    *,
    token: Optional[str] = None,
    timeout: float = DEFAULT_TIMEOUT,
    faults: Optional[Any] = None,
    site: str = "",
) -> Dict[str, Any]:
    """POST a JSON object; return the (JSON object) response body."""
    if faults is not None:
        faults.before_request(site or url)
    body = json.dumps(payload).encode("utf-8")
    return _exchange(
        Request(url, data=body, headers=_headers(token), method="POST"),
        timeout,
    )


def get_json(
    url: str,
    *,
    token: Optional[str] = None,
    timeout: float = DEFAULT_TIMEOUT,
    faults: Optional[Any] = None,
    site: str = "",
) -> Dict[str, Any]:
    """GET a URL; return the (JSON object) response body."""
    if faults is not None:
        faults.before_request(site or url)
    return _exchange(
        Request(url, headers=_headers(token), method="GET"), timeout
    )


__all__ = [
    "DEFAULT_TIMEOUT",
    "TRANSIENT_STATUSES",
    "RetryPolicy",
    "post_json",
    "get_json",
]
