"""HTTP client plumbing for cluster peers (stdlib ``urllib`` only).

Two calls — POST a JSON object, GET a JSON object — with bearer auth
and a hard timeout. Every failure mode a distributed caller must react
to (connection refused, reset, timeout, non-2xx status, body that is
not JSON) collapses into one typed exception,
:class:`~repro.exceptions.TransportError`, because they all mean the
same thing to the coordinator: *this peer cannot be trusted with
in-flight work right now*. Wire-schema validation stays out of this
module — callers decode the returned object with ``cluster.wire``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional
from urllib.error import HTTPError, URLError
from urllib.request import Request, urlopen

from repro.exceptions import TransportError

#: default per-request timeout; dispatch calls override this with the
#: coordinator's configured request timeout
DEFAULT_TIMEOUT = 30.0


def _headers(token: Optional[str]) -> Dict[str, str]:
    headers = {"Content-Type": "application/json"}
    if token is not None:
        headers["Authorization"] = f"Bearer {token}"
    return headers


def _exchange(request: Request, timeout: float) -> Dict[str, Any]:
    try:
        with urlopen(request, timeout=timeout) as response:
            raw = response.read()
    except HTTPError as exc:
        detail = ""
        try:
            body = json.loads(exc.read().decode("utf-8"))
            detail = f": {body.get('error', body)}"
        except Exception:  # repro: noqa[REPRO401] - best-effort detail
            pass
        raise TransportError(
            f"{request.full_url} answered HTTP {exc.code}{detail}"
        ) from exc
    except (URLError, OSError, TimeoutError) as exc:
        raise TransportError(f"{request.full_url} unreachable: {exc}") from exc
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise TransportError(
            f"{request.full_url} returned a non-JSON body"
        ) from exc
    if not isinstance(payload, dict):
        raise TransportError(
            f"{request.full_url} returned a non-object JSON body"
        )
    return payload


def post_json(
    url: str,
    payload: Dict[str, Any],
    *,
    token: Optional[str] = None,
    timeout: float = DEFAULT_TIMEOUT,
) -> Dict[str, Any]:
    """POST a JSON object; return the (JSON object) response body."""
    body = json.dumps(payload).encode("utf-8")
    return _exchange(
        Request(url, data=body, headers=_headers(token), method="POST"),
        timeout,
    )


def get_json(
    url: str,
    *,
    token: Optional[str] = None,
    timeout: float = DEFAULT_TIMEOUT,
) -> Dict[str, Any]:
    """GET a URL; return the (JSON object) response body."""
    return _exchange(
        Request(url, headers=_headers(token), method="GET"), timeout
    )


__all__ = ["DEFAULT_TIMEOUT", "post_json", "get_json"]
