"""Crash-resumable shard-result journal (fsync'd, content-keyed).

A coordinator run used to live entirely in memory: a crash forfeited
every completed shard. :class:`ShardJournal` makes partial progress a
first-class, durable artifact — each completed shard's wire-schema
``result`` envelope is appended as one line and fsync'd before the
coordinator acknowledges it, so a run restarted with ``--resume``
replays the journal, skips every shard it proves complete, and merges
a bit-identical ``ViewSet`` (shard work is deterministic; the journal
stores the *exact* envelope the worker produced).

File format (line-delimited JSON, docs/distribution.md):

* line 1 — header: ``{"journal": 1, "plan_key": "<sha256>"}``;
* each further line — ``{"shard_id": N, "sha256": "<digest of the
  result envelope's canonical bytes>", "result": {...envelope...}}``.

The ``plan_key`` is :func:`plan_content_key` — a sha256 over the
plan's method, seed, config, labels, and shard layout — so a journal
can never seed a resume of a *different* plan: a mismatch raises the
typed :class:`~repro.exceptions.JournalError` instead of silently
merging stale views.

Torn-write tolerance: a crash (or an injected ``torn_write`` fault,
docs/faults.md) can leave a trailing partial line. The loader skips
any line that fails to parse, fails its sha256 self-check, or fails
wire-schema validation — those shards simply re-execute. Re-opening a
torn journal self-heals: the next append first terminates the dangling
fragment with a newline so the fragment stays one (skippable) corrupt
line instead of corrupting the new record.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from typing import Any, Dict, Mapping, Optional

from repro.exceptions import JournalError
from repro.runtime.cluster import wire
from repro.runtime.plan import ExplainPlan

#: journal file-format version; bump on incompatible change
JOURNAL_VERSION = 1


def plan_content_key(plan: ExplainPlan) -> str:
    """A sha256 content key identifying what a plan will compute.

    Covers everything that determines shard results — method, seed,
    config, explainer kwargs, labels, and the exact shard layout — but
    not *where* the plan runs, so a resumed coordinator on a different
    host accepts the journal as long as the work is the same.
    """
    payload = {
        "method": plan.method,
        "seed": int(plan.seed),
        "config": plan.config.to_dict(),
        "explainer_kwargs": dict(plan.explainer_kwargs),
        "labels": [int(label) for label in plan.labels],
        "shards": [
            [int(shard.label), [int(i) for i in shard.indices]]
            for shard in plan.shards
        ],
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _compact(obj: Mapping[str, Any]) -> bytes:
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


class ShardJournal:
    """Append-only, fsync'd record of completed shards for one plan.

    Opening an existing file *is* the resume path: the header's
    ``plan_key`` is checked against ``plan_key`` (mismatch →
    :class:`JournalError`) and every valid record loads into
    :attr:`completed` (first entry per shard wins — duplicates from a
    straggler re-dispatch are bit-identical anyway). Appends are
    serialized under a lock and fsync'd before returning, so a record
    the coordinator has acknowledged survives SIGKILL.
    """

    def __init__(
        self,
        path: str,
        plan_key: str,
        *,
        faults: Optional[Any] = None,
    ) -> None:
        self.path = str(path)
        self.plan_key = plan_key
        self.faults = faults
        #: shard_id -> decoded, validated result message (replayed)
        self.completed: Dict[int, wire.ResultMessage] = {}
        #: raw envelopes for the replayed records (diagnostics)
        self.envelopes: Dict[int, Dict[str, Any]] = {}
        #: lines dropped on load (torn, corrupt, or duplicate)
        self.skipped = 0
        self.appended = 0
        self._lock = threading.Lock()
        self._needs_newline = False
        existed = os.path.exists(self.path) and os.path.getsize(self.path) > 0
        if existed:
            self._load()
        self._file = open(self.path, "ab")
        if not existed:
            self._file.write(
                _compact({"journal": JOURNAL_VERSION, "plan_key": plan_key})
                + b"\n"
            )
            self._sync()

    @classmethod
    def for_plan(
        cls,
        path: str,
        plan: ExplainPlan,
        *,
        faults: Optional[Any] = None,
    ) -> "ShardJournal":
        """Open ``path`` keyed to ``plan`` (the usual constructor)."""
        return cls(path, plan_content_key(plan), faults=faults)

    # ------------------------------------------------------------------
    # load / resume
    # ------------------------------------------------------------------
    def _load(self) -> None:
        with open(self.path, "rb") as fh:
            data = fh.read()
        if data and not data.endswith(b"\n"):
            # a torn trailing write: heal it on the next append.
            # _load only runs from __init__, before the journal is
            # shared across threads, so no lock is needed yet.
            self._needs_newline = True  # repro: noqa[REPRO101] - pre-share init
        lines = data.split(b"\n")
        try:
            header = json.loads(lines[0].decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise JournalError(
                f"{self.path}: unreadable journal header"
            ) from exc
        if not isinstance(header, dict) or "journal" not in header:
            raise JournalError(
                f"{self.path}: first line is not a journal header"
            )
        if header.get("journal") != JOURNAL_VERSION:
            raise JournalError(
                f"{self.path}: journal version {header.get('journal')!r} "
                f"unsupported (this build writes version {JOURNAL_VERSION})"
            )
        if header.get("plan_key") != self.plan_key:
            raise JournalError(
                f"{self.path}: journal belongs to a different plan "
                f"(key {str(header.get('plan_key'))[:12]}..., expected "
                f"{self.plan_key[:12]}...); refusing to seed a resume"
            )
        for raw in lines[1:]:
            if not raw.strip():
                continue
            try:
                record = json.loads(raw.decode("utf-8"))
                envelope = record["result"]
                digest = hashlib.sha256(
                    wire.canonical_bytes(envelope)
                ).hexdigest()
                if digest != record["sha256"]:
                    raise JournalError("sha256 self-check failed")
                msg = wire.decode_result(envelope)
                if int(record["shard_id"]) != msg.shard_id:
                    raise JournalError("shard_id disagrees with envelope")
            except Exception:  # repro: noqa[REPRO401] - tolerant replay
                self.skipped += 1
                continue
            if msg.shard_id in self.completed:
                self.skipped += 1  # duplicate: first entry wins
                continue
            self.completed[msg.shard_id] = msg
            self.envelopes[msg.shard_id] = envelope

    # ------------------------------------------------------------------
    # append
    # ------------------------------------------------------------------
    def append(self, envelope: Mapping[str, Any]) -> None:
        """Durably record one completed shard's ``result`` envelope."""
        envelope = dict(envelope)
        digest = hashlib.sha256(wire.canonical_bytes(envelope)).hexdigest()
        line = (
            _compact(
                {
                    "shard_id": int(envelope["shard_id"]),
                    "sha256": digest,
                    "result": envelope,
                }
            )
            + b"\n"
        )
        with self._lock:
            if self._needs_newline:
                self._file.write(b"\n")
                self._needs_newline = False
            if self.faults is not None and self.faults.torn_write():
                # persist only a prefix: the record is lost to a resume
                # (the shard re-executes) but never corrupts a neighbor
                self._file.write(line[: max(1, len(line) // 2)])
                self._needs_newline = True
            else:
                self._file.write(line)
                self.appended += 1
            self._sync()

    def _sync(self) -> None:
        self._file.flush()
        os.fsync(self._file.fileno())

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "completed": len(self.completed),
                "appended": self.appended,
                "skipped": self.skipped,
            }

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.flush()
                self._file.close()

    def __enter__(self) -> "ShardJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"<ShardJournal {self.path!r} completed={len(self.completed)} "
            f"appended={self.appended} skipped={self.skipped}>"
        )


__all__ = ["JOURNAL_VERSION", "ShardJournal", "plan_content_key"]
