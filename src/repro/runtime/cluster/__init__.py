"""``repro.runtime.cluster`` — sharded explanation over the wire.

The multi-machine realization of the merge contract
:class:`~repro.runtime.ShardedExecutor` proves on one box: a
:class:`ClusterCoordinator` dispatches a plan's label-group shards to
registered :class:`ClusterWorker`\\ s over HTTP, collects partial view
sets, and merges them through ``repro.runtime.merge`` — bit-identical
to :class:`~repro.runtime.SerialExecutor`. Workers heartbeat; dead or
silent workers get their in-flight shards re-dispatched to survivors;
a versioned wire schema (``cluster.wire``) keeps every exchange
strictly validated; and the coordinator serves a warm tier
(``GET /cache``) so new workers boot with the fleet's match-plan and
view-index state instead of recomputing it.

Topology, wire schema, and fault semantics: ``docs/distribution.md``.
"""

from repro.runtime.cluster.coordinator import (
    DEFAULT_BREAKER_THRESHOLD,
    DEFAULT_HEARTBEAT_TIMEOUT,
    DEFAULT_REQUEST_TIMEOUT,
    STATE_DEAD,
    STATE_LIVE,
    STATE_QUARANTINED,
    ClusterCoordinator,
    DistributedExecutor,
    WorkerRecord,
)
from repro.runtime.cluster.journal import (
    JOURNAL_VERSION,
    ShardJournal,
    plan_content_key,
)
from repro.runtime.cluster.transport import (
    TRANSIENT_STATUSES,
    RetryPolicy,
)
from repro.runtime.cluster.wire import (
    MESSAGE_TYPES,
    WIRE_SCHEMA_VERSION,
    CacheSnapshotMessage,
    DispatchMessage,
    HeartbeatMessage,
    RegisterMessage,
    ResultMessage,
    canonical_bytes,
    check_envelope,
    decode_cache_snapshot,
    decode_dispatch,
    decode_heartbeat,
    decode_register,
    decode_result,
    encode_cache_snapshot,
    encode_dispatch,
    encode_heartbeat,
    encode_register,
    encode_result,
)
from repro.runtime.cluster.worker import (
    DEFAULT_HEARTBEAT_INTERVAL,
    DEFAULT_MAX_MISSED,
    ClusterWorker,
)

__all__ = [
    # topology
    "ClusterCoordinator",
    "ClusterWorker",
    "DistributedExecutor",
    "WorkerRecord",
    "DEFAULT_HEARTBEAT_TIMEOUT",
    "DEFAULT_REQUEST_TIMEOUT",
    "DEFAULT_HEARTBEAT_INTERVAL",
    "DEFAULT_MAX_MISSED",
    "DEFAULT_BREAKER_THRESHOLD",
    "STATE_LIVE",
    "STATE_QUARANTINED",
    "STATE_DEAD",
    # fault discipline
    "RetryPolicy",
    "TRANSIENT_STATUSES",
    # durability
    "ShardJournal",
    "plan_content_key",
    "JOURNAL_VERSION",
    # wire schema
    "WIRE_SCHEMA_VERSION",
    "MESSAGE_TYPES",
    "RegisterMessage",
    "HeartbeatMessage",
    "DispatchMessage",
    "ResultMessage",
    "CacheSnapshotMessage",
    "encode_register",
    "decode_register",
    "encode_heartbeat",
    "decode_heartbeat",
    "encode_dispatch",
    "decode_dispatch",
    "encode_result",
    "decode_result",
    "encode_cache_snapshot",
    "decode_cache_snapshot",
    "check_envelope",
    "canonical_bytes",
]
