"""HTTP request handlers for cluster endpoints.

Both handlers subclass the serving layer's
:class:`~repro.api.server.JsonRequestHandler`, so bearer auth,
body-size limits (413), JSON error shapes, and quiet logging are the
same wire behavior the ``repro.cli serve`` endpoint already proves.
Mutating routes (every POST) require the cluster token when one is
configured; GET diagnostics stay open, matching the serving layer's
policy.

Wire validation errors map to HTTP statuses the dispatcher can reason
about: a :class:`~repro.exceptions.WireVersionError` or
:class:`~repro.exceptions.WireError` is a ``400`` (the *sender* is
broken), an unknown worker heartbeat is a ``404`` (re-register), and
anything unexpected is a ``500``.
"""

from __future__ import annotations

from typing import Any

from repro.api.server import JsonRequestHandler, _PayloadTooLarge
from repro.exceptions import (
    ClusterError,
    DeadlineExpiredError,
    ReproError,
    WireError,
)
from repro.runtime.cluster import wire


class CoordinatorHandler(JsonRequestHandler):
    """Routes of :class:`~repro.runtime.cluster.ClusterCoordinator`."""

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        coord = self.server.coordinator
        route = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if route in ("/", "/status", "/health"):
                self._json(200, coord.status())
            elif route == "/cache":
                self._json(200, coord.cache_snapshot())
            else:
                self._error(404, f"unknown route {route!r}")
        except Exception as exc:  # repro: noqa[REPRO401] - HTTP boundary -> 500
            self._error(500, f"{type(exc).__name__}: {exc}")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        coord = self.server.coordinator
        route = self.path.split("?", 1)[0].rstrip("/")
        if not self._authorized():
            self._error(401, "missing or invalid bearer token")
            return
        try:
            body = self._read_body()
            if route == "/register":
                self._json(200, coord.register(wire.decode_register(body)))
            elif route == "/heartbeat":
                self._json(200, coord.heartbeat(wire.decode_heartbeat(body)))
            else:
                self._error(404, f"unknown route {route!r}")
        except _PayloadTooLarge as exc:
            self._error(413, str(exc))
        except WireError as exc:
            self._error(400, str(exc))
        except ClusterError as exc:
            self._error(404, str(exc))
        except (ReproError, ValueError, TypeError) as exc:
            self._error(400, f"{type(exc).__name__}: {exc}")
        except Exception as exc:  # repro: noqa[REPRO401] - HTTP boundary -> 500
            self._error(500, f"{type(exc).__name__}: {exc}")


class WorkerHandler(JsonRequestHandler):
    """Routes of :class:`~repro.runtime.cluster.ClusterWorker`."""

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        worker = self.server.worker
        route = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if route in ("/", "/health"):
                self._json(200, worker.health())
            else:
                self._error(404, f"unknown route {route!r}")
        except Exception as exc:  # repro: noqa[REPRO401] - HTTP boundary -> 500
            self._error(500, f"{type(exc).__name__}: {exc}")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        worker = self.server.worker
        route = self.path.split("?", 1)[0].rstrip("/")
        if not self._authorized():
            self._error(401, "missing or invalid bearer token")
            return
        try:
            body = self._read_body()
            if route == "/shard":
                self._json(200, worker.run_dispatch(wire.decode_dispatch(body)))
            elif route == "/shutdown":
                self._json(200, {"worker_id": worker.worker_id, "stopping": True})
                worker.request_stop()
            else:
                self._error(404, f"unknown route {route!r}")
        except _PayloadTooLarge as exc:
            self._error(413, str(exc))
        except WireError as exc:
            self._error(400, str(exc))
        except DeadlineExpiredError as exc:
            # a refused spent-budget dispatch: 504 tells the retrying
            # coordinator the *deadline* failed, not the worker
            self._json(
                504,
                {
                    "error": str(exc),
                    "code": "deadline_expired",
                    "worker_id": worker.worker_id,
                },
            )
        except (ReproError, ValueError, TypeError) as exc:
            self._error(400, f"{type(exc).__name__}: {exc}")
        except Exception as exc:  # repro: noqa[REPRO401] - HTTP boundary -> 500
            self._error(500, f"{type(exc).__name__}: {exc}")


__all__ = ["CoordinatorHandler", "WorkerHandler"]
