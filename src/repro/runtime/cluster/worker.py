"""The cluster worker: register, heartbeat, drain shards, boot warm.

A :class:`ClusterWorker` holds its *own* copies of the database and the
trained model (nothing heavy ships over the wire — both sides load the
same deterministic artifacts), binds a small HTTP endpoint::

    POST /shard      run one dispatch envelope -> result envelope
    POST /shutdown   stop serving after the current shard
    GET  /health     liveness + shard counters

and then:

1. **warm boot** — ``GET {coordinator}/cache`` and load the plan-cache
   snapshot into the process-global ``PLAN_CACHE``
   (:meth:`~repro.matching.plan_cache.MatchPlanCache.load_snapshot`
   drops stale content keys rather than applying them), keeping the
   view-index snapshot for later index builds;
2. **register** — ``POST {coordinator}/register`` with its dispatch
   URL;
3. **heartbeat** — a daemon thread posts a monotonically increasing
   ``seq`` every ``heartbeat_interval`` seconds. After
   ``max_missed_heartbeats`` consecutive failures the coordinator is
   presumed gone and the worker shuts itself down cleanly — that is
   the "coordinator shutdown -> workers exit" contract of
   ``tests/test_cluster_faults.py``.

Shard execution reuses the scheduling layer verbatim: a dispatch
envelope reconstructs a :class:`~repro.runtime.plan.Shard`, a warm
:class:`~repro.runtime.executors.WorkerState` runs it, and the shard's
subgraphs get their own Psum tail via
:func:`~repro.runtime.plan.assemble_views` — producing exactly the
partial ``ViewSet`` the merge contract expects.
"""

from __future__ import annotations

import threading
import uuid
from http.server import ThreadingHTTPServer
from typing import Any, Dict, Optional

from repro.config import GvexConfig
from repro.exceptions import DeadlineExpiredError, TransportError
from repro.gnn.model import GnnClassifier
from repro.graphs.database import GraphDatabase
from repro.matching.plan_cache import PLAN_CACHE
from repro.runtime.cluster import wire
from repro.runtime.cluster.transport import (
    DEFAULT_TIMEOUT,
    get_json,
    post_json,
)
from repro.runtime.executors import WorkerState
from repro.runtime.plan import Shard, assemble_views

#: default seconds between heartbeats (coordinator timeout should be
#: a comfortable multiple of this)
DEFAULT_HEARTBEAT_INTERVAL = 2.0
#: consecutive failed heartbeats before the worker presumes the
#: coordinator gone and exits cleanly
DEFAULT_MAX_MISSED = 3


class _WorkerServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, worker: "ClusterWorker"):
        from repro.runtime.cluster.handlers import WorkerHandler

        super().__init__(address, WorkerHandler)
        self.worker = worker

    # JsonRequestHandler contract
    @property
    def auth_token(self) -> Optional[str]:
        return self.worker.auth_token

    @property
    def max_body_bytes(self) -> int:
        return self.worker.max_body_bytes


class ClusterWorker:
    """One member of the fleet: serve shards for one (db, model) pair."""

    def __init__(
        self,
        db: GraphDatabase,
        model: GnnClassifier,
        coordinator_url: str,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        worker_id: Optional[str] = None,
        auth_token: Optional[str] = None,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        max_missed_heartbeats: int = DEFAULT_MAX_MISSED,
        transport_timeout: float = DEFAULT_TIMEOUT,
        warm_start: bool = True,
        max_body_bytes: int = 64 << 20,
    ) -> None:
        self.db = db
        self.model = model
        self.coordinator_url = coordinator_url.rstrip("/")
        self.worker_id = worker_id or f"worker-{uuid.uuid4().hex[:8]}"
        self.auth_token = auth_token
        self.heartbeat_interval = heartbeat_interval
        self.max_missed_heartbeats = max_missed_heartbeats
        self.transport_timeout = transport_timeout
        self.warm_start = warm_start
        self.max_body_bytes = max_body_bytes
        self._server = _WorkerServer((host, port), self)
        self._server_thread: Optional[threading.Thread] = None
        self._heartbeat_thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        #: shard execution is serialized — WorkerState (and the batched
        #: verifier scratch inside it) is warm, not thread-safe
        self._exec_lock = threading.Lock()
        #: worker-warm per-(method, seed, config) states across shards
        self._states: Dict[Any, WorkerState] = {}
        self.shards_run = 0
        #: loaded-warm-tier statistics ({} until a snapshot is loaded)
        self.warm_stats: Dict[str, int] = {}
        #: view-index snapshot from the warm tier (or None)
        self.index_snapshot: Optional[Dict[str, Any]] = None
        #: set when the worker has shut down (tests wait on this)
        self.stopped = threading.Event()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "ClusterWorker":
        """Serve, warm-boot, register, heartbeat — ready for dispatch."""
        self._server_thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"{self.worker_id}-server",
            daemon=True,
        )
        self._server_thread.start()
        if self.warm_start:
            self.load_warm_tier()
        post_json(
            f"{self.coordinator_url}/register",
            wire.encode_register(self.worker_id, self.url),
            token=self.auth_token,
            timeout=self.transport_timeout,
        )
        self._heartbeat_thread = threading.Thread(
            target=self._heartbeat_loop,
            name=f"{self.worker_id}-heartbeat",
            daemon=True,
        )
        self._heartbeat_thread.start()
        return self

    def request_stop(self) -> None:
        """Schedule a clean shutdown (from handler threads or signals)."""
        threading.Thread(target=self.close, daemon=True).start()

    def close(self) -> None:
        if self.stopped.is_set():
            return
        self.stopped.set()
        self._server.shutdown()
        self._server.server_close()

    def join(self, timeout: Optional[float] = None) -> bool:
        """Block until the worker has shut down (True if it did)."""
        return self.stopped.wait(timeout=timeout)

    def __enter__(self) -> "ClusterWorker":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # warm tier
    # ------------------------------------------------------------------
    def load_warm_tier(self) -> Dict[str, int]:
        """Fetch ``GET /cache`` and load what is loadable.

        A dead coordinator or an unreadable snapshot leaves the worker
        cold but functional — warm start is an optimization, never a
        correctness dependency.
        """
        try:
            snapshot = wire.decode_cache_snapshot(
                get_json(
                    f"{self.coordinator_url}/cache",
                    token=self.auth_token,
                    timeout=self.transport_timeout,
                )
            )
        except Exception:  # repro: noqa[REPRO401] - warm start is best-effort
            return {}
        stats: Dict[str, int] = {}
        if snapshot.plan_cache is not None:
            try:
                stats = dict(PLAN_CACHE.load_snapshot(snapshot.plan_cache))
            except Exception:  # repro: noqa[REPRO401] - warm start is best-effort
                stats = {}
        self.index_snapshot = snapshot.view_index
        self.warm_stats = stats
        return stats

    # ------------------------------------------------------------------
    # heartbeat
    # ------------------------------------------------------------------
    def _heartbeat_loop(self) -> None:
        seq = 0
        missed = 0
        while not self.stopped.wait(timeout=self.heartbeat_interval):
            try:
                post_json(
                    f"{self.coordinator_url}/heartbeat",
                    wire.encode_heartbeat(self.worker_id, seq),
                    token=self.auth_token,
                    timeout=max(self.heartbeat_interval, 1.0),
                )
                missed = 0
            except TransportError:
                missed += 1
                if missed >= self.max_missed_heartbeats:
                    # coordinator gone (shut down or partitioned):
                    # exit cleanly rather than serving a ghost fleet
                    self.close()
                    return
            seq += 1

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _state_for(self, msg: wire.DispatchMessage) -> WorkerState:
        """A warm ``WorkerState`` per (method, seed, config) triple."""
        key = (msg.method, msg.seed, _config_key(msg.config))
        with self._lock:
            state = self._states.get(key)
            if state is None:
                state = WorkerState(
                    model=self.model,
                    config=msg.config,
                    db=self.db,
                    method=msg.method,
                    seed=msg.seed,
                    explainer_kwargs=dict(msg.explainer_kwargs),
                )
                self._states[key] = state
            return state

    def run_dispatch(self, msg: wire.DispatchMessage) -> Dict[str, Any]:
        """One shard: run it warm, Psum its group, return the envelope.

        A dispatch whose ``deadline_seconds`` budget is already spent
        is *refused* (typed 504, never executed) — occupying the
        exec lock for work nobody is waiting on would starve live
        requests behind a dead one.
        """
        if msg.deadline_seconds is not None and msg.deadline_seconds <= 0:
            raise DeadlineExpiredError(
                f"shard {msg.shard_id} arrived with a spent deadline "
                f"budget ({msg.deadline_seconds:.3f}s); refusing"
            )
        state = self._state_for(msg)
        with self._exec_lock:
            calls_before = state.inference_calls
            results = state.run_shard(Shard(msg.label, msg.indices))
            calls = state.inference_calls - calls_before
        subgraphs = [sub for _, _, sub, _ in results if sub is not None]
        views = assemble_views(
            {msg.label: subgraphs}, msg.config, [msg.label]
        )
        with self._lock:
            self.shards_run += 1
        return wire.encode_result(
            job_id=msg.job_id,
            shard_id=msg.shard_id,
            worker_id=self.worker_id,
            views=views,
            inference_calls=calls,
        )

    def health(self) -> Dict[str, Any]:
        return {
            "status": "ok",
            "worker_id": self.worker_id,
            "coordinator": self.coordinator_url,
            "shards_run": self.shards_run,
            "warm": dict(self.warm_stats),
            "plan_cache": PLAN_CACHE.stats(),
        }


def _config_key(config: GvexConfig) -> str:
    """A hashable identity for a config (wire configs are canonical)."""
    import json

    return json.dumps(config.to_dict(), sort_keys=True, default=repr)


__all__ = [
    "ClusterWorker",
    "DEFAULT_HEARTBEAT_INTERVAL",
    "DEFAULT_MAX_MISSED",
]
