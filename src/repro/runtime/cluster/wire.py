"""The cluster wire schema — versioned envelopes, pure encode/decode.

Every message a coordinator and a worker exchange is a JSON object
wrapped in a versioned envelope::

    {"schema": 1, "type": "<message type>", ...fields...}

Five message types exist:

``register``        worker -> coordinator: here I am, dispatch to ``url``
``heartbeat``       worker -> coordinator: still alive (monotonic ``seq``)
``dispatch``        coordinator -> worker: run one label-group shard
``result``          worker -> coordinator: the shard's partial view set
``cache_snapshot``  coordinator -> worker: warm plan-cache / index state

The functions here are *pure*: ``encode_*`` builds a plain dict,
``decode_*`` validates one and returns a typed message dataclass.
Nothing in this module touches a socket, so protocol conformance is
testable byte-for-byte without a cluster
(``tests/test_cluster_protocol.py`` + ``tests/golden/wire/``).

Validation is strict and typed: an envelope whose ``schema`` is not
:data:`WIRE_SCHEMA_VERSION` raises
:class:`~repro.exceptions.WireVersionError`; a missing or mistyped
field raises :class:`~repro.exceptions.WireError`. A coordinator
therefore rejects (and re-dispatches) a malformed worker result rather
than merging garbage, and a future schema bump cannot be half-read by
an old worker.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.config import GvexConfig
from repro.exceptions import WireError, WireVersionError
from repro.graphs.io import viewset_from_dict, viewset_to_dict
from repro.graphs.view import ViewSet

#: current cluster wire-format version; bump on incompatible change
WIRE_SCHEMA_VERSION = 1

MSG_REGISTER = "register"
MSG_HEARTBEAT = "heartbeat"
MSG_DISPATCH = "dispatch"
MSG_RESULT = "result"
MSG_CACHE_SNAPSHOT = "cache_snapshot"

#: every message type this schema version defines
MESSAGE_TYPES = (
    MSG_REGISTER,
    MSG_HEARTBEAT,
    MSG_DISPATCH,
    MSG_RESULT,
    MSG_CACHE_SNAPSHOT,
)


# ----------------------------------------------------------------------
# typed messages
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RegisterMessage:
    """A worker announcing itself and its dispatch endpoint."""

    worker_id: str
    url: str


@dataclass(frozen=True)
class HeartbeatMessage:
    """A worker's liveness beacon; ``seq`` increases monotonically."""

    worker_id: str
    seq: int


@dataclass(frozen=True)
class DispatchMessage:
    """One label-group shard of an explain job, fully self-describing.

    ``indices`` are *global* database indices (both sides hold the same
    database), so results merge positionally without remapping.
    """

    job_id: str
    shard_id: int
    label: int
    indices: Tuple[int, ...]
    method: str
    seed: int
    config: GvexConfig
    explainer_kwargs: Mapping[str, Any] = field(default_factory=dict)
    #: remaining deadline budget in seconds (relative — monotonic
    #: clocks are per-process); None means no deadline. Optional on
    #: the wire: omitted when absent, so schema 1 goldens are unchanged
    deadline_seconds: Optional[float] = None


@dataclass(frozen=True)
class ResultMessage:
    """A shard's partial view set, produced by one worker."""

    job_id: str
    shard_id: int
    worker_id: str
    inference_calls: int
    views: ViewSet


@dataclass(frozen=True)
class CacheSnapshotMessage:
    """Warm-tier state a freshly registered worker loads to boot hot."""

    plan_cache: Optional[Dict[str, Any]]
    view_index: Optional[Dict[str, Any]]


# ----------------------------------------------------------------------
# envelope plumbing
# ----------------------------------------------------------------------
def _envelope(msg_type: str) -> Dict[str, Any]:
    return {"schema": WIRE_SCHEMA_VERSION, "type": msg_type}


def check_envelope(
    payload: Any, expected_type: Optional[str] = None
) -> Dict[str, Any]:
    """Validate the envelope of a decoded JSON payload.

    Returns the payload as a dict; raises :class:`WireVersionError` on
    an unsupported ``schema`` and :class:`WireError` on everything else
    (non-object payload, missing/unknown ``type``, type mismatch).
    """
    if not isinstance(payload, dict):
        raise WireError(
            f"wire message must be a JSON object, got {type(payload).__name__}"
        )
    schema = payload.get("schema")
    if schema != WIRE_SCHEMA_VERSION:
        raise WireVersionError(
            f"unsupported wire schema {schema!r}; this build speaks "
            f"version {WIRE_SCHEMA_VERSION}"
        )
    msg_type = payload.get("type")
    if msg_type not in MESSAGE_TYPES:
        raise WireError(
            f"unknown wire message type {msg_type!r} "
            f"(expected one of {list(MESSAGE_TYPES)})"
        )
    if expected_type is not None and msg_type != expected_type:
        raise WireError(
            f"expected a {expected_type!r} message, got {msg_type!r}"
        )
    return payload


def _require(payload: Mapping[str, Any], name: str, types) -> Any:
    """One required field, type-checked; ``WireError`` otherwise."""
    if name not in payload:
        raise WireError(
            f"{payload.get('type', '?')} message is missing "
            f"required field {name!r}"
        )
    value = payload[name]
    if not isinstance(value, types):
        wanted = (
            "/".join(t.__name__ for t in types)
            if isinstance(types, tuple)
            else types.__name__
        )
        raise WireError(
            f"{payload.get('type', '?')} field {name!r} must be "
            f"{wanted}, got {type(value).__name__}"
        )
    # bool is an int subclass; an int-typed field must reject it
    if isinstance(value, bool) and (types is int or types == (int,)):
        raise WireError(
            f"{payload.get('type', '?')} field {name!r} must be int, got bool"
        )
    return value


def canonical_bytes(envelope: Mapping[str, Any]) -> bytes:
    """The stable byte serialization of an envelope.

    Sorted keys, two-space indent, trailing newline — the form frozen
    under ``tests/golden/wire/`` and the form both endpoints put on the
    socket, so golden files are literally wire bytes.
    """
    return (json.dumps(envelope, indent=2, sort_keys=True) + "\n").encode("utf-8")


# ----------------------------------------------------------------------
# register
# ----------------------------------------------------------------------
def encode_register(worker_id: str, url: str) -> Dict[str, Any]:
    env = _envelope(MSG_REGISTER)
    env["worker_id"] = worker_id
    env["url"] = url
    return env


def decode_register(payload: Any) -> RegisterMessage:
    d = check_envelope(payload, MSG_REGISTER)
    return RegisterMessage(
        worker_id=_require(d, "worker_id", str),
        url=_require(d, "url", str),
    )


# ----------------------------------------------------------------------
# heartbeat
# ----------------------------------------------------------------------
def encode_heartbeat(worker_id: str, seq: int) -> Dict[str, Any]:
    env = _envelope(MSG_HEARTBEAT)
    env["worker_id"] = worker_id
    env["seq"] = int(seq)
    return env


def decode_heartbeat(payload: Any) -> HeartbeatMessage:
    d = check_envelope(payload, MSG_HEARTBEAT)
    return HeartbeatMessage(
        worker_id=_require(d, "worker_id", str),
        seq=_require(d, "seq", int),
    )


# ----------------------------------------------------------------------
# dispatch
# ----------------------------------------------------------------------
def encode_dispatch(
    job_id: str,
    shard_id: int,
    label: int,
    indices,
    method: str,
    seed: int,
    config: GvexConfig,
    explainer_kwargs: Optional[Mapping[str, Any]] = None,
    deadline_seconds: Optional[float] = None,
) -> Dict[str, Any]:
    env = _envelope(MSG_DISPATCH)
    env["job_id"] = job_id
    env["shard_id"] = int(shard_id)
    env["label"] = int(label)
    env["indices"] = [int(i) for i in indices]
    env["method"] = method
    env["seed"] = int(seed)
    env["config"] = config.to_dict()
    env["explainer_kwargs"] = dict(explainer_kwargs or {})
    if deadline_seconds is not None:
        env["deadline_seconds"] = float(deadline_seconds)
    return env


def decode_dispatch(payload: Any) -> DispatchMessage:
    d = check_envelope(payload, MSG_DISPATCH)
    indices = _require(d, "indices", list)
    if not all(isinstance(i, int) and not isinstance(i, bool) for i in indices):
        raise WireError("dispatch field 'indices' must be a list of ints")
    config_dict = _require(d, "config", dict)
    try:
        config = GvexConfig.from_dict(config_dict)
    except Exception as exc:
        raise WireError(f"dispatch carries an invalid config: {exc}") from exc
    deadline_seconds = d.get("deadline_seconds")
    if deadline_seconds is not None:
        if isinstance(deadline_seconds, bool) or not isinstance(
            deadline_seconds, (int, float)
        ):
            raise WireError(
                "dispatch field 'deadline_seconds' must be a number, got "
                f"{type(deadline_seconds).__name__}"
            )
        deadline_seconds = float(deadline_seconds)
    return DispatchMessage(
        job_id=_require(d, "job_id", str),
        shard_id=_require(d, "shard_id", int),
        label=_require(d, "label", int),
        indices=tuple(indices),
        method=_require(d, "method", str),
        seed=_require(d, "seed", int),
        config=config,
        explainer_kwargs=dict(_require(d, "explainer_kwargs", dict)),
        deadline_seconds=deadline_seconds,
    )


# ----------------------------------------------------------------------
# result
# ----------------------------------------------------------------------
def encode_result(
    job_id: str,
    shard_id: int,
    worker_id: str,
    views: ViewSet,
    inference_calls: int = 0,
) -> Dict[str, Any]:
    env = _envelope(MSG_RESULT)
    env["job_id"] = job_id
    env["shard_id"] = int(shard_id)
    env["worker_id"] = worker_id
    env["inference_calls"] = int(inference_calls)
    env["views"] = viewset_to_dict(views)
    return env


def decode_result(payload: Any) -> ResultMessage:
    d = check_envelope(payload, MSG_RESULT)
    views_dict = _require(d, "views", dict)
    try:
        views = viewset_from_dict(views_dict)
    except Exception as exc:
        raise WireError(
            f"result carries an unreadable view set: {exc}"
        ) from exc
    return ResultMessage(
        job_id=_require(d, "job_id", str),
        shard_id=_require(d, "shard_id", int),
        worker_id=_require(d, "worker_id", str),
        inference_calls=_require(d, "inference_calls", int),
        views=views,
    )


# ----------------------------------------------------------------------
# cache snapshot
# ----------------------------------------------------------------------
def encode_cache_snapshot(
    plan_cache: Optional[Mapping[str, Any]] = None,
    view_index: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    env = _envelope(MSG_CACHE_SNAPSHOT)
    env["plan_cache"] = dict(plan_cache) if plan_cache is not None else None
    env["view_index"] = dict(view_index) if view_index is not None else None
    return env


def decode_cache_snapshot(payload: Any) -> CacheSnapshotMessage:
    d = check_envelope(payload, MSG_CACHE_SNAPSHOT)
    for name in ("plan_cache", "view_index"):
        if name not in d:
            raise WireError(
                f"cache_snapshot message is missing required field {name!r}"
            )
        if d[name] is not None and not isinstance(d[name], dict):
            raise WireError(
                f"cache_snapshot field {name!r} must be an object or null"
            )
    return CacheSnapshotMessage(
        plan_cache=d["plan_cache"], view_index=d["view_index"]
    )


#: message type -> its decoder (the conformance suite iterates this)
DECODERS = {
    MSG_REGISTER: decode_register,
    MSG_HEARTBEAT: decode_heartbeat,
    MSG_DISPATCH: decode_dispatch,
    MSG_RESULT: decode_result,
    MSG_CACHE_SNAPSHOT: decode_cache_snapshot,
}


__all__ = [
    "WIRE_SCHEMA_VERSION",
    "MESSAGE_TYPES",
    "MSG_REGISTER",
    "MSG_HEARTBEAT",
    "MSG_DISPATCH",
    "MSG_RESULT",
    "MSG_CACHE_SNAPSHOT",
    "RegisterMessage",
    "HeartbeatMessage",
    "DispatchMessage",
    "ResultMessage",
    "CacheSnapshotMessage",
    "encode_register",
    "decode_register",
    "encode_heartbeat",
    "decode_heartbeat",
    "encode_dispatch",
    "decode_dispatch",
    "encode_result",
    "decode_result",
    "encode_cache_snapshot",
    "decode_cache_snapshot",
    "check_envelope",
    "canonical_bytes",
    "DECODERS",
]
