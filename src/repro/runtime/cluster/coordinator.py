"""The cluster coordinator: registry, heartbeats, dispatch, merge.

One :class:`ClusterCoordinator` owns a threaded HTTP endpoint and the
cluster's authoritative worker registry:

``POST /register``   a worker announces its dispatch URL
``POST /heartbeat``  a worker's liveness beacon
``GET  /cache``      the warm tier: plan-cache + view-index snapshots
``GET  /status``     registry + job bookkeeping (diagnostics)

Jobs run through :meth:`ClusterCoordinator.run`: the plan's label-group
shards become :data:`~repro.runtime.cluster.wire.MSG_DISPATCH`
envelopes in a pending queue; one dispatcher thread per live worker
drains it with synchronous ``POST /shard`` calls; partial view sets
come back as ``result`` envelopes and merge through
``repro.runtime.merge`` — the exact contract
:class:`~repro.runtime.executors.ShardedExecutor` proves bit-identical
to the serial reference.

Fault model (tests/test_cluster_faults.py, docs/distribution.md):

* A dispatch that fails **transiently** (connection refused/reset,
  timeout, 408/429/5xx) is retried in place by the coordinator's
  :class:`~repro.runtime.cluster.transport.RetryPolicy` — the same
  worker usually completes the shard with zero re-dispatches. Only
  when the policy is exhausted does the circuit breaker act: the
  worker is **quarantined** (no new dispatches; its in-flight shard is
  requeued) until a successful heartbeat re-admits it. A worker that
  accumulates ``breaker_threshold`` strikes, or fails **fatally**
  (401/404, malformed or wrong-schema result envelope), is marked
  dead and must re-register.
* A worker whose heartbeat goes silent for ``heartbeat_timeout``
  seconds is marked dead by the collect loop and its in-flight shards
  are requeued *immediately*, even while a stale dispatch call is
  still hanging (straggler re-dispatch). Duplicate results are
  harmless: shard work is deterministic and only the first result per
  shard is recorded.
* When every worker is dead and shards remain, :class:`ClusterError`
  surfaces — nothing hangs. When the plan carries a
  :class:`~repro.runtime.deadline.Deadline` and it expires,
  :class:`~repro.exceptions.DeadlineExpiredError` surfaces instead
  (the HTTP layer maps it to 504).

Durability: pass ``journal=`` (a
:class:`~repro.runtime.cluster.journal.ShardJournal`) to
:meth:`ClusterCoordinator.run` and every completed shard's result
envelope is fsync'd before it counts; a journal opened on an existing
file pre-seeds the job with its replayed shards, so a coordinator
killed mid-run resumes without re-executing (or re-paying for) any
completed shard.

:class:`DistributedExecutor` adapts a coordinator to the
:class:`~repro.runtime.executors.Executor` surface, with the same
serial fallbacks as the fork pool (per-group coverage scope,
native-view methods).
"""

from __future__ import annotations

import threading
import time
import uuid
from collections import deque
from http.server import ThreadingHTTPServer
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from repro.config import SCOPE_PER_GROUP
from repro.exceptions import (
    ClusterError,
    DeadlineExpiredError,
    TransportError,
    WireError,
)
from repro.graphs.view import ViewSet
from repro.matching.plan_cache import PLAN_CACHE
from repro.runtime.cluster import wire
from repro.runtime.cluster.transport import RetryPolicy, post_json
from repro.runtime.executors import Executor, SerialExecutor, _native_non_approx
from repro.runtime.merge import merge_view_sets
from repro.runtime.plan import ExplainPlan

#: a worker missing heartbeats for this long is declared dead
DEFAULT_HEARTBEAT_TIMEOUT = 10.0
#: per-dispatch HTTP timeout (a shard must answer within this)
DEFAULT_REQUEST_TIMEOUT = 300.0
#: strikes (exhausted-retry failures) before quarantine becomes death
DEFAULT_BREAKER_THRESHOLD = 3

#: circuit-breaker states (docs/distribution.md state machine)
STATE_LIVE = "live"
STATE_QUARANTINED = "quarantined"
STATE_DEAD = "dead"


class WorkerRecord:
    """Coordinator-side view of one registered worker.

    ``state`` is the circuit breaker: ``live`` workers receive
    dispatches; ``quarantined`` workers (exhausted a retry budget) do
    not, but a successful heartbeat re-admits them; ``dead`` workers
    (fatal error, ``breaker_threshold`` strikes, or heartbeat silence)
    must re-register.
    """

    def __init__(self, worker_id: str, url: str) -> None:
        self.worker_id = worker_id
        self.url = url.rstrip("/")
        self.state = STATE_LIVE
        self.strikes = 0
        self.last_seen = time.monotonic()
        self.seq = -1
        self.shards_done = 0

    @property
    def alive(self) -> bool:
        return self.state == STATE_LIVE

    @alive.setter
    def alive(self, value: bool) -> None:
        self.state = STATE_LIVE if value else STATE_DEAD

    def touch(self, seq: int) -> None:
        self.last_seen = time.monotonic()
        self.seq = max(self.seq, seq)

    def describe(self) -> Dict[str, Any]:
        return {
            "worker_id": self.worker_id,
            "url": self.url,
            "alive": self.alive,
            "state": self.state,
            "strikes": self.strikes,
            "seq": self.seq,
            "age": round(time.monotonic() - self.last_seen, 3),
            "shards_done": self.shards_done,
        }


class _CoordinatorServer(ThreadingHTTPServer):
    """The HTTP face of a coordinator (handler plumbing lives below)."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, coordinator: "ClusterCoordinator"):
        from repro.runtime.cluster.handlers import CoordinatorHandler

        super().__init__(address, CoordinatorHandler)
        self.coordinator = coordinator

    # JsonRequestHandler contract
    @property
    def auth_token(self) -> Optional[str]:
        return self.coordinator.auth_token

    @property
    def max_body_bytes(self) -> int:
        return self.coordinator.max_body_bytes


class ClusterCoordinator:
    """Own the worker registry and drive explain jobs over the wire."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        auth_token: Optional[str] = None,
        heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
        max_body_bytes: int = 64 << 20,
        retry_policy: Optional[RetryPolicy] = None,
        breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD,
        fault_plan: Optional[Any] = None,
    ) -> None:
        self.auth_token = auth_token
        self.heartbeat_timeout = heartbeat_timeout
        self.request_timeout = request_timeout
        self.max_body_bytes = max_body_bytes
        self.retry_policy = retry_policy or RetryPolicy()
        self.breaker_threshold = breaker_threshold
        #: optional deterministic FaultPlan for chaos tests (docs/faults.md)
        self.fault_plan = fault_plan
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._workers: Dict[str, WorkerRecord] = {}
        #: view-index snapshot published for GET /cache (plan-cache
        #: state is exported live from the process-global PLAN_CACHE)
        self._index_snapshot: Optional[Dict[str, Any]] = None
        self._jobs_run = 0
        self._redispatches = 0
        self._server = _CoordinatorServer((host, port), self)
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "ClusterCoordinator":
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="cluster-coordinator",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        with self._wake:
            self._wake.notify_all()

    def __enter__(self) -> "ClusterCoordinator":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # registry (called from handler threads)
    # ------------------------------------------------------------------
    def register(self, msg: wire.RegisterMessage) -> Dict[str, Any]:
        with self._wake:
            record = WorkerRecord(msg.worker_id, msg.url)
            self._workers[msg.worker_id] = record
            self._wake.notify_all()
        return {"worker_id": msg.worker_id, "heartbeat": self.heartbeat_timeout}

    def heartbeat(self, msg: wire.HeartbeatMessage) -> Dict[str, Any]:
        with self._wake:
            record = self._workers.get(msg.worker_id)
            if record is None or record.state == STATE_DEAD:
                # a dead/unknown worker must re-register, not resume:
                # its previous in-flight shards were already requeued
                raise ClusterError(
                    f"worker {msg.worker_id!r} is not registered (or was "
                    "declared dead); re-register"
                )
            if record.state == STATE_QUARANTINED:
                # breaker re-admission: the worker answered, so its
                # transient trouble has passed; strikes are kept — a
                # repeat offender still walks toward breaker_threshold
                record.state = STATE_LIVE
                self._wake.notify_all()
            record.touch(msg.seq)
        return {"worker_id": msg.worker_id, "alive": True}

    def workers(self, alive_only: bool = False) -> List[Dict[str, Any]]:
        with self._lock:
            records = list(self._workers.values())
        return [
            r.describe() for r in records if r.alive or not alive_only
        ]

    def wait_for_workers(self, count: int, timeout: float = 30.0) -> None:
        """Block until ``count`` live workers are registered."""
        deadline = time.monotonic() + timeout
        with self._wake:
            while True:
                live = sum(1 for r in self._workers.values() if r.alive)
                if live >= count:
                    return
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self._closed:
                    raise ClusterError(
                        f"only {live}/{count} workers registered within "
                        f"{timeout:.1f}s"
                    )
                self._wake.wait(timeout=min(remaining, 0.5))

    # ------------------------------------------------------------------
    # warm tier
    # ------------------------------------------------------------------
    def publish_index_snapshot(self, snapshot: Optional[Dict[str, Any]]) -> None:
        """Set the view-index snapshot served at ``GET /cache``."""
        with self._lock:
            self._index_snapshot = snapshot

    def cache_snapshot(self) -> Dict[str, Any]:
        """The ``cache_snapshot`` envelope a booting worker loads."""
        with self._lock:
            index = self._index_snapshot
        return wire.encode_cache_snapshot(
            plan_cache=PLAN_CACHE.export_snapshot(), view_index=index
        )

    def status(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "status": "ok",
                "workers": [r.describe() for r in self._workers.values()],
                "jobs_run": self._jobs_run,
                "redispatches": self._redispatches,
                "heartbeat_timeout": self.heartbeat_timeout,
                "breaker_threshold": self.breaker_threshold,
                "retry_attempts": self.retry_policy.attempts,
                "auth": self.auth_token is not None,
            }

    # ------------------------------------------------------------------
    # job execution
    # ------------------------------------------------------------------
    def run(
        self,
        plan: ExplainPlan,
        job_id: Optional[str] = None,
        *,
        journal: Optional[Any] = None,
    ) -> Tuple[ViewSet, Dict[str, int]]:
        """Dispatch a plan's shards to the fleet; merge the partials.

        Bit-parity contract: each worker returns one partial
        ``ViewSet`` per shard (that shard's subgraphs + its own Psum
        tail); partials merge label-by-label in shard order through
        :func:`~repro.runtime.merge.merge_view_sets`, whose union +
        re-summarize is proven identical to the serial schedule.

        ``journal`` (a :class:`~repro.runtime.cluster.journal.ShardJournal`)
        makes the run durable: its replayed shards pre-seed the job
        (``stats["resumed"]`` counts them, and they are *not*
        re-dispatched) and every newly completed shard is fsync'd
        before it counts toward completion.
        """
        job_id = job_id or f"job-{uuid.uuid4().hex[:12]}"
        envelopes = {
            shard_id: wire.encode_dispatch(
                job_id=job_id,
                shard_id=shard_id,
                label=shard.label,
                indices=shard.indices,
                method=plan.method,
                seed=plan.seed,
                config=plan.config,
                explainer_kwargs=plan.explainer_kwargs,
            )
            for shard_id, shard in enumerate(plan.shards)
        }
        job = _Job(
            self, job_id, envelopes, deadline=plan.deadline, journal=journal
        )
        views, stats = job.collect(plan)
        with self._lock:
            self._jobs_run += 1
            self._redispatches += stats.get("redispatched", 0)
        return views, stats


class _Job:
    """Bookkeeping for one in-flight dispatch/collect cycle."""

    def __init__(
        self,
        coordinator: ClusterCoordinator,
        job_id: str,
        envelopes: Dict[int, Dict[str, Any]],
        *,
        deadline=None,
        journal=None,
    ) -> None:
        self.coord = coordinator
        self.job_id = job_id
        self.envelopes = envelopes
        self.deadline = deadline
        self.journal = journal
        self.lock = threading.Lock()
        self.done = threading.Condition(self.lock)
        #: worker_id -> shard ids currently posted to that worker
        self.in_flight: Dict[str, Set[int]] = {}
        self.results: Dict[int, wire.ResultMessage] = {}
        self.resumed = 0
        if journal is not None:
            # journal replay pre-seeds the job: those shards are done,
            # durable, and never enter the pending queue
            for shard_id, msg in journal.completed.items():
                if shard_id in envelopes:
                    self.results[shard_id] = msg
                    self.resumed += 1
        self.pending: Deque[int] = deque(
            sid for sid in sorted(envelopes) if sid not in self.results
        )
        self.redispatched = 0
        self.dispatchers: Dict[str, threading.Thread] = {}

    # -- dispatcher side ------------------------------------------------
    def _next_shard(self, worker_id: str) -> Optional[int]:
        with self.lock:
            if not self.pending:
                return None
            shard_id = self.pending.popleft()
            self.in_flight.setdefault(worker_id, set()).add(shard_id)
            return shard_id

    def _record(
        self,
        worker_id: str,
        shard_id: int,
        msg: wire.ResultMessage,
        envelope: Optional[Dict[str, Any]] = None,
    ) -> None:
        with self.done:
            self.in_flight.get(worker_id, set()).discard(shard_id)
            # first result wins; a duplicate from a requeued shard is
            # bit-identical anyway (deterministic work), so dropping it
            # keeps the stats exact without affecting the views
            if shard_id not in self.results:
                if self.journal is not None and envelope is not None:
                    # fsync'd before the shard counts: a result the
                    # coordinator acknowledged survives SIGKILL
                    self.journal.append(envelope)
                self.results[shard_id] = msg
            self.done.notify_all()

    def _requeue_locked(self, shard_ids: Set[int]) -> None:
        """Put un-finished shards back on the queue (caller holds lock)."""
        for shard_id in sorted(shard_ids):
            if shard_id not in self.results and shard_id not in self.pending:
                self.pending.append(shard_id)
                self.redispatched += 1

    def _mark_failed(self, worker_id: str, *, fatal: bool) -> None:
        """Circuit breaker: quarantine on exhausted retries, kill on
        fatal errors or ``breaker_threshold`` accumulated strikes."""
        with self.coord._lock:
            record = self.coord._workers.get(worker_id)
            if record is not None and record.state != STATE_DEAD:
                record.strikes += 1
                if fatal or record.strikes >= self.coord.breaker_threshold:
                    record.state = STATE_DEAD
                else:
                    record.state = STATE_QUARANTINED
            else:
                record = None
        with self.done:
            if record is not None or self.in_flight.get(worker_id):
                self._requeue_locked(self.in_flight.pop(worker_id, set()))
            self.done.notify_all()

    def _mark_dead(self, worker_id: str) -> None:
        self._mark_failed(worker_id, fatal=True)

    def _return_shard(self, worker_id: str, shard_id: int) -> None:
        """Give a shard back without blaming the worker (deadline)."""
        with self.done:
            self.in_flight.get(worker_id, set()).discard(shard_id)
            if shard_id not in self.results and shard_id not in self.pending:
                self.pending.append(shard_id)
            self.done.notify_all()

    def _dispatch_loop(self, worker_id: str, url: str) -> None:
        while True:
            shard_id = self._next_shard(worker_id)
            if shard_id is None:
                return
            envelope = self.envelopes[shard_id]
            try:
                if self.deadline is not None:
                    # the wire carries the *remaining* budget (relative
                    # seconds — monotonic clocks are per-process)
                    self.deadline.require(f"dispatching shard {shard_id}")
                    envelope = dict(envelope)
                    envelope["deadline_seconds"] = self.deadline.remaining()
                response = self.coord.retry_policy.call(
                    lambda: post_json(
                        f"{url}/shard",
                        envelope,
                        token=self.coord.auth_token,
                        timeout=self.coord.request_timeout,
                        faults=self.coord.fault_plan,
                        site="dispatch",
                    ),
                    salt=f"{worker_id}:{shard_id}",
                    deadline=self.deadline,
                )
                msg = wire.decode_result(response)
                if msg.job_id != self.job_id or msg.shard_id != shard_id:
                    raise WireError(
                        f"worker {worker_id!r} answered for "
                        f"job={msg.job_id!r} shard={msg.shard_id} "
                        f"(wanted job={self.job_id!r} shard={shard_id})"
                    )
            except DeadlineExpiredError:
                # the *job* ran out of budget — the worker is blameless;
                # collect() surfaces the typed 504
                self._return_shard(worker_id, shard_id)
                return
            except TransportError as exc:
                if exc.status == 504:
                    # the worker refused a spent budget: same story
                    self._return_shard(worker_id, shard_id)
                    return
                # the retry policy already absorbed transient blips;
                # reaching here means exhausted retries (quarantine)
                # or a fatal class (dead)
                self._mark_failed(worker_id, fatal=not exc.transient)
                return
            except WireError:
                # a peer that speaks garbage cannot be trusted at all
                self._mark_failed(worker_id, fatal=True)
                return
            with self.coord._lock:
                record = self.coord._workers.get(worker_id)
                dead = record is None or not record.alive
                if record is not None:
                    record.shards_done += 1
            # recording is safe even if this worker was declared dead
            # (heartbeat timeout) while the call was hanging: its shards
            # were already requeued, and first-result-wins keeps the
            # merge exact because the duplicate is bit-identical
            self._record(worker_id, shard_id, msg, envelope=response)
            if dead:
                return

    # -- collect side ---------------------------------------------------
    def _live_workers(self) -> List[WorkerRecord]:
        with self.coord._lock:
            return [r for r in self.coord._workers.values() if r.alive]

    def _breathing_workers(self) -> List[WorkerRecord]:
        """Live *or* quarantined — anyone who might still do work."""
        with self.coord._lock:
            return [
                r
                for r in self.coord._workers.values()
                if r.state != STATE_DEAD
            ]

    def _reap_silent(self) -> None:
        """Declare heartbeat-silent workers dead; requeue their shards."""
        now = time.monotonic()
        stale: List[str] = []
        with self.coord._lock:
            for record in self.coord._workers.values():
                # quarantined workers are reaped too: re-admission
                # comes from a heartbeat, so heartbeat silence means
                # the quarantine can never lift — without this they
                # would keep the job "breathing" forever
                if record.state != STATE_DEAD and (
                    now - record.last_seen > self.coord.heartbeat_timeout
                ):
                    record.state = STATE_DEAD
                    stale.append(record.worker_id)
        for worker_id in stale:
            with self.done:
                self._requeue_locked(self.in_flight.pop(worker_id, set()))
                self.done.notify_all()

    def _ensure_dispatchers(self) -> None:
        """One dispatcher thread per live worker (join-late included)."""
        for record in self._live_workers():
            thread = self.dispatchers.get(record.worker_id)
            if thread is not None and thread.is_alive():
                continue
            with self.lock:
                if not self.pending:
                    continue
            thread = threading.Thread(
                target=self._dispatch_loop,
                args=(record.worker_id, record.url),
                name=f"dispatch-{record.worker_id}",
                daemon=True,
            )
            self.dispatchers[record.worker_id] = thread
            thread.start()

    def collect(self, plan: ExplainPlan) -> Tuple[ViewSet, Dict[str, int]]:
        with self.done:
            complete = len(self.results) == len(self.envelopes)
        if not complete and not self._live_workers():
            # a fully journal-resumed job needs no fleet at all
            raise ClusterError(
                "no live workers registered; start workers (repro.cli "
                "cluster-worker) or wait_for_workers() first"
            )
        poll = max(min(self.coord.heartbeat_timeout / 4, 0.5), 0.05)
        while not complete:
            if self.deadline is not None:
                self.deadline.require(f"job {self.job_id!r} completion")
            self._reap_silent()
            self._ensure_dispatchers()
            with self.done:
                if len(self.results) == len(self.envelopes):
                    break
                self.done.wait(timeout=poll)
                if len(self.results) == len(self.envelopes):
                    break
                unfinished = len(self.envelopes) - len(self.results)
            if unfinished and not self._live_workers():
                # quarantined workers may yet be re-admitted by a
                # heartbeat; only an all-dead fleet is hopeless
                if not self._breathing_workers():
                    raise ClusterError(
                        f"job {self.job_id!r}: every worker died with "
                        f"{unfinished} shard(s) unfinished "
                        f"(re-dispatched {self.redispatched})"
                    )
        parts = [self.results[sid].views for sid in sorted(self.results)]
        calls = sum(self.results[sid].inference_calls for sid in self.results)
        merged = merge_view_sets(parts, plan.config, labels=plan.labels)
        return merged, {
            "inference_calls": calls,
            "redispatched": self.redispatched,
            "resumed": self.resumed,
            "workers_used": len({r.worker_id for r in self.results.values()}),
            "shards": len(self.envelopes),
        }


class DistributedExecutor(Executor):
    """The cluster behind the standard ``Executor`` surface.

    Same fallbacks as the fork pool: per-*group* coverage scope and
    native-view methods can't be shard-decomposed without changing
    semantics, so those plans run through :class:`SerialExecutor`
    in-process. Everything else ships over the wire.
    """

    name = "distributed"

    def __init__(self, coordinator: ClusterCoordinator):
        self.coordinator = coordinator

    def run(self, plan: ExplainPlan) -> Tuple[ViewSet, Dict[str, int]]:
        if plan.config.coverage_scope == SCOPE_PER_GROUP:
            return SerialExecutor().run(plan)
        if _native_non_approx(plan):
            return SerialExecutor().run(plan)
        return self.coordinator.run(plan)


__all__ = [
    "ClusterCoordinator",
    "DistributedExecutor",
    "WorkerRecord",
    "DEFAULT_HEARTBEAT_TIMEOUT",
    "DEFAULT_REQUEST_TIMEOUT",
    "DEFAULT_BREAKER_THRESHOLD",
    "STATE_LIVE",
    "STATE_QUARANTINED",
    "STATE_DEAD",
]
