"""The two serving registries: explainers and tenants.

**Explainer registry.** Every explainer is described by an
:class:`ExplainerSpec` and built through :func:`build_explainer`, so
the CLI, the service, the bench harness, and the parallel engine
construct, sweep, and capability-table methods identically instead of
special-casing imports::

    from repro.api import build_explainer

    explainer = build_explainer("gvex-approx", model, config=config)
    explainer = build_explainer("SX", model, seed=0, rollouts=15)

Names resolve case-insensitively through each spec's aliases (the
paper's short names — AG, SG, GE, SX, GX, GCF — all work). Third-party
explainers can join the sweep with :func:`register_explainer`.

**Tenant registry.** A serving replica used to host exactly one
(dataset, model, config) triple. :class:`TenantRegistry` makes the
triple addressable: each :class:`TenantSpec` declares how to
materialize one resident :class:`~repro.api.service.ExplanationService`
(named dataset + scale + seed + config, optional ``.npz`` model and
views files), residents are built lazily on first use (fit-or-load
happens inside the service), and a bounded number of residents is kept
per process with LRU eviction — an evicted tenant keeps its spec and
transparently re-materializes on the next request. The HTTP layer
(``repro.api.server``) routes the ``tenant`` field of ``/explain`` and
``/query`` through :meth:`TenantRegistry.acquire`; eviction never
touches a tenant with requests in flight.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple, Type

from repro.config import GvexConfig
from repro.exceptions import RegistryError, TenantError, ValidationError
from repro.runtime.workqueue import DEFAULT_TENANT
from repro.explainers import (
    ApproxGvexExplainer,
    GcfExplainer,
    GnnExplainer,
    GStarX,
    RandomExplainer,
    StreamGvexExplainer,
    SubgraphX,
)
from repro.explainers.base import Explainer
from repro.gnn.model import GnnClassifier


@dataclass(frozen=True)
class ExplainerSpec:
    """How to build one explainer uniformly.

    Attributes
    ----------
    name:
        Canonical registry key (kebab-case).
    cls:
        The :class:`~repro.explainers.base.Explainer` subclass.
    aliases:
        Alternative lookup names (the paper's short names, CLI spellings).
    takes_config:
        Whether the constructor accepts a ``config=GvexConfig`` keyword.
    takes_seed:
        Whether the constructor accepts a ``seed`` keyword.
    native_views:
        Whether the explainer generates two-tier views natively
        (GVEX's Algorithms 1–3) rather than via the generic
        subgraphs + Psum recipe of ``Explainer.explain_views``.
    defaults:
        Default constructor keyword overrides.
    description:
        One-line summary for ``/explainers`` listings.
    """

    name: str
    cls: Type[Explainer]
    aliases: Tuple[str, ...] = ()
    takes_config: bool = False
    takes_seed: bool = True
    native_views: bool = False
    #: whether the method is a row of the paper's Table 1 matrix
    in_table1: bool = True
    defaults: Mapping[str, Any] = field(default_factory=dict)
    description: str = ""

    def capability_row(self):
        """The spec's Table 1 capability metadata."""
        return self.cls.capabilities


_REGISTRY: Dict[str, ExplainerSpec] = {}
_ALIASES: Dict[str, str] = {}


def register_explainer(spec: ExplainerSpec) -> ExplainerSpec:
    """Add a spec to the registry (canonical name + aliases).

    Re-registering an existing canonical name replaces it; an alias
    colliding with a *different* spec's name is rejected — before any
    mutation, so a failed registration leaves the registry untouched.
    """
    canonical = spec.name.lower()
    aliases = {alias.lower() for alias in (spec.name, *spec.aliases)}
    for alias in sorted(aliases):
        owner = _ALIASES.get(alias)
        if owner is not None and owner != canonical:
            raise RegistryError(
                f"alias {alias!r} already registered for {owner!r}"
            )
    if canonical in _REGISTRY:  # drop the replaced spec's old aliases
        for alias in [a for a, o in _ALIASES.items() if o == canonical]:
            del _ALIASES[alias]
    for alias in aliases:
        _ALIASES[alias] = canonical
    _REGISTRY[canonical] = spec
    return spec


def get_spec(name: str) -> ExplainerSpec:
    """Resolve a canonical name or alias to its spec."""
    try:
        return _REGISTRY[_ALIASES[name.lower()]]
    except KeyError:
        raise RegistryError(
            f"unknown explainer {name!r}; registered: {explainer_names()}"
        ) from None


def explainer_names(include_aliases: bool = False) -> List[str]:
    """Registered canonical names (registration order)."""
    if include_aliases:
        return sorted(_ALIASES)
    return list(_REGISTRY)


def explainer_specs() -> List[ExplainerSpec]:
    """All registered specs in registration order."""
    return list(_REGISTRY.values())


def build_explainer(
    name: str,
    model: GnnClassifier,
    config: Optional[GvexConfig] = None,
    seed: Optional[Any] = None,
    **overrides: Any,
) -> Explainer:
    """Construct any registered explainer uniformly.

    ``config`` reaches explainers that accept a :class:`GvexConfig`
    (the GVEX algorithms); ``seed`` reaches those that take one;
    ``overrides`` are method-specific constructor keywords (e.g.
    ``rollouts`` for SubgraphX) layered over the spec's defaults.
    """
    spec = get_spec(name)
    kwargs: Dict[str, Any] = dict(spec.defaults)
    kwargs.update(overrides)
    if spec.takes_config and config is not None:
        kwargs["config"] = config
    if spec.takes_seed and seed is not None:
        kwargs["seed"] = seed
    try:
        return spec.cls(model, **kwargs)
    except TypeError as exc:
        raise RegistryError(
            f"cannot build explainer {spec.name!r} with {sorted(kwargs)}: {exc}"
        ) from exc


# ----------------------------------------------------------------------
# built-in registrations (Table 1 row order, then the random baseline)
# ----------------------------------------------------------------------
register_explainer(ExplainerSpec(
    name="subgraphx",
    cls=SubgraphX,
    aliases=("sx",),
    description="MCTS + Shapley subgraph search (Yuan et al.)",
))
register_explainer(ExplainerSpec(
    name="gnnexplainer",
    cls=GnnExplainer,
    aliases=("ge",),
    description="learned edge/feature masks (Ying et al.)",
))
register_explainer(ExplainerSpec(
    name="gstarx",
    cls=GStarX,
    aliases=("gx",),
    description="structure-aware coalition scores (Zhang et al.)",
))
register_explainer(ExplainerSpec(
    name="gcfexplainer",
    cls=GcfExplainer,
    aliases=("gcf",),
    description="global counterfactual candidates (Huang et al.)",
))
register_explainer(ExplainerSpec(
    name="gvex-approx",
    cls=ApproxGvexExplainer,
    aliases=("approx", "ag", "gvex"),
    takes_config=True,
    takes_seed=False,
    native_views=True,
    description="GVEX Algorithm 1/2: greedy + lower-bound two-tier views",
))
register_explainer(ExplainerSpec(
    name="gvex-stream",
    cls=StreamGvexExplainer,
    aliases=("stream", "sg"),
    takes_config=True,
    native_views=True,
    description="GVEX Algorithm 3: streaming anytime two-tier views",
))
register_explainer(ExplainerSpec(
    name="random",
    cls=RandomExplainer,
    aliases=("rnd",),
    in_table1=False,
    description="random node subsets (sanity-check baseline)",
))


# ----------------------------------------------------------------------
# the tenant registry: many (dataset, model, config) residents per process
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TenantSpec:
    """How to materialize one serving tenant's resident service.

    Attributes
    ----------
    name:
        Tenant key requests address (the ``tenant`` field of
        ``/explain`` / ``/query``).
    dataset:
        Registry dataset name (``repro.datasets.registry``), loaded
        lazily at ``scale`` / ``seed`` when the tenant materializes.
    config:
        Default :class:`GvexConfig` for the tenant's explains.
    model_path:
        Optional ``.npz`` classifier to fit-or-load (trained and saved
        there on first explain when absent on disk).
    views_path:
        Optional views ``.json`` preloaded into the resident, so a
        freshly materialized tenant serves queries before its first
        explain.
    hidden_dims:
        Classifier architecture used when training in-service.
    """

    name: str
    dataset: str
    scale: str = "test"
    seed: int = 0
    config: Optional[GvexConfig] = None
    model_path: Optional[str] = None
    views_path: Optional[str] = None
    hidden_dims: Tuple[int, ...] = (32, 32, 32)

    def build(self):
        """Materialize the resident service (model stays lazy)."""
        from repro.api.service import ExplanationService

        service = ExplanationService(
            self.dataset,
            scale=self.scale,
            seed=self.seed,
            config=self.config,
            hidden_dims=self.hidden_dims,
        )
        if self.model_path is not None:
            service.fit_or_load(self.model_path)
        if self.views_path is not None:
            service.load_views(self.views_path)
        return service


class _TenantEntry:
    """One registered tenant: its spec and (maybe) resident service."""

    __slots__ = (
        "name",
        "spec",
        "service",
        "pinned",
        "in_use",
        "last_used",
        "build_lock",
        "materializations",
    )

    def __init__(self, name, spec=None, service=None, pinned=False):
        self.name = name
        self.spec = spec
        self.service = service
        self.pinned = pinned
        self.in_use = 0
        self.last_used = 0
        self.build_lock = threading.Lock()
        self.materializations = 0


class TenantRegistry:
    """Per-process residents for multi-tenant serving, with LRU eviction.

    ``max_residents`` bounds how many materialized services the process
    keeps; past it, the least-recently-used idle, unpinned resident is
    dropped (its spec survives, so the tenant transparently rebuilds on
    next use — the lazy fit-or-load path). Services adopted via
    :meth:`add_service` have no rebuild recipe and are pinned by
    default. All registry operations are thread-safe; materialization
    runs outside the registry lock (training can take seconds) under a
    per-tenant build lock, so one cold tenant never blocks the others.
    """

    def __init__(self, max_residents: int = 4):
        if max_residents < 1:
            raise ValidationError(
                f"max_residents must be >= 1, got {max_residents}"
            )
        self.max_residents = max_residents
        self._lock = threading.Lock()
        self._entries: Dict[str, _TenantEntry] = {}
        self._ticks = 0
        self.evictions = 0
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def register(self, spec: TenantSpec, replace: bool = False) -> TenantSpec:
        """Declare a tenant (no service is built until first use)."""
        with self._lock:
            if spec.name in self._entries and not replace:
                raise TenantError(f"tenant {spec.name!r} already registered")
            self._entries[spec.name] = _TenantEntry(spec.name, spec=spec)
        return spec

    def add_service(self, name: str, service, pinned: bool = True) -> None:
        """Adopt an already-built service as a resident tenant.

        In-memory services (tests, benches, ``create_server(service)``)
        have no spec to rebuild from, so they are pinned — never
        evicted — unless the caller opts out.
        """
        with self._lock:
            if name in self._entries:
                raise TenantError(f"tenant {name!r} already registered")
            entry = _TenantEntry(name, service=service, pinned=pinned)
            entry.last_used = self._tick()
            self._entries[name] = entry
        self._evict_excess()

    def _tick(self) -> int:
        self._ticks += 1
        return self._ticks

    # ------------------------------------------------------------------
    def ensure(self, name: str) -> None:
        """Raise :class:`TenantError` unless ``name`` is registered."""
        with self._lock:
            if name not in self._entries:
                raise TenantError(
                    f"unknown tenant {name!r}; registered: {sorted(self._entries)}"
                )

    @contextmanager
    def acquire(self, name: str) -> Iterator[Any]:
        """Lease a tenant's resident service for one request.

        Bumps the LRU clock, holds an in-use count for the lease's
        duration (eviction skips busy tenants), materializes the
        resident from its spec when absent, and triggers eviction on
        release.
        """
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                raise TenantError(
                    f"unknown tenant {name!r}; registered: {sorted(self._entries)}"
                )
            entry.in_use += 1
            entry.last_used = self._tick()
        try:
            yield self._materialize(entry)
        finally:
            with self._lock:
                entry.in_use -= 1
            self._evict_excess()

    def _materialize(self, entry: _TenantEntry):
        # per-entry lock: concurrent requests for one cold tenant build
        # it once; other tenants are untouched
        with entry.build_lock:
            if entry.service is None:
                assert entry.spec is not None  # add_service pins by default
                service = entry.spec.build()
                with self._lock:
                    entry.service = service
                    entry.materializations += 1
                    self.misses += 1
                self._evict_excess()
            else:
                with self._lock:
                    self.hits += 1
            return entry.service

    # ------------------------------------------------------------------
    def _evict_excess(self) -> None:
        """Drop LRU idle, unpinned residents past ``max_residents``."""
        with self._lock:
            while True:
                residents = [
                    e for e in self._entries.values() if e.service is not None
                ]
                if len(residents) <= self.max_residents:
                    return
                victims = [
                    e
                    for e in residents
                    if not e.pinned and e.in_use == 0 and e.spec is not None
                ]
                if not victims:
                    return  # everything evictable is busy or pinned
                victim = min(victims, key=lambda e: e.last_used)
                victim.service = None
                self.evictions += 1

    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        """Registered tenant names (sorted)."""
        with self._lock:
            return sorted(self._entries)

    def resident_names(self) -> List[str]:
        """Tenants currently holding a materialized service (sorted)."""
        with self._lock:
            return sorted(
                name
                for name, entry in self._entries.items()
                if entry.service is not None
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def peek(self, name: str):
        """The resident service, or ``None`` — no LRU bump, no build."""
        with self._lock:
            entry = self._entries.get(name)
            return entry.service if entry is not None else None

    def stats(self) -> Dict[str, Any]:
        """Registry occupancy and churn counters (for ``/health``)."""
        with self._lock:
            return {
                "max_residents": self.max_residents,
                "registered": len(self._entries),
                "residents": sum(
                    1 for e in self._entries.values() if e.service is not None
                ),
                "evictions": self.evictions,
                "hits": self.hits,
                "misses": self.misses,
                "tenants": {
                    name: {
                        "resident": entry.service is not None,
                        "pinned": entry.pinned,
                        "in_use": entry.in_use,
                        "materializations": entry.materializations,
                        "dataset": (
                            entry.spec.dataset
                            if entry.spec is not None
                            else getattr(entry.service, "dataset", None)
                        ),
                    }
                    for name, entry in sorted(self._entries.items())
                },
            }


__all__ = [
    "ExplainerSpec",
    "register_explainer",
    "get_spec",
    "explainer_names",
    "explainer_specs",
    "build_explainer",
    "TenantSpec",
    "TenantRegistry",
    "DEFAULT_TENANT",
]
