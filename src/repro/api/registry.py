"""Explainer registry — uniform construction for GVEX and the baselines.

Every explainer is described by an :class:`ExplainerSpec` and built
through :func:`build_explainer`, so the CLI, the service, the bench
harness, and the parallel engine construct, sweep, and capability-table
methods identically instead of special-casing imports::

    from repro.api import build_explainer

    explainer = build_explainer("gvex-approx", model, config=config)
    explainer = build_explainer("SX", model, seed=0, rollouts=15)

Names resolve case-insensitively through each spec's aliases (the
paper's short names — AG, SG, GE, SX, GX, GCF — all work). Third-party
explainers can join the sweep with :func:`register_explainer`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple, Type

from repro.config import GvexConfig
from repro.exceptions import RegistryError
from repro.explainers import (
    ApproxGvexExplainer,
    GcfExplainer,
    GnnExplainer,
    GStarX,
    RandomExplainer,
    StreamGvexExplainer,
    SubgraphX,
)
from repro.explainers.base import Explainer
from repro.gnn.model import GnnClassifier


@dataclass(frozen=True)
class ExplainerSpec:
    """How to build one explainer uniformly.

    Attributes
    ----------
    name:
        Canonical registry key (kebab-case).
    cls:
        The :class:`~repro.explainers.base.Explainer` subclass.
    aliases:
        Alternative lookup names (the paper's short names, CLI spellings).
    takes_config:
        Whether the constructor accepts a ``config=GvexConfig`` keyword.
    takes_seed:
        Whether the constructor accepts a ``seed`` keyword.
    native_views:
        Whether the explainer generates two-tier views natively
        (GVEX's Algorithms 1–3) rather than via the generic
        subgraphs + Psum recipe of ``Explainer.explain_views``.
    defaults:
        Default constructor keyword overrides.
    description:
        One-line summary for ``/explainers`` listings.
    """

    name: str
    cls: Type[Explainer]
    aliases: Tuple[str, ...] = ()
    takes_config: bool = False
    takes_seed: bool = True
    native_views: bool = False
    #: whether the method is a row of the paper's Table 1 matrix
    in_table1: bool = True
    defaults: Mapping[str, Any] = field(default_factory=dict)
    description: str = ""

    def capability_row(self):
        """The spec's Table 1 capability metadata."""
        return self.cls.capabilities


_REGISTRY: Dict[str, ExplainerSpec] = {}
_ALIASES: Dict[str, str] = {}


def register_explainer(spec: ExplainerSpec) -> ExplainerSpec:
    """Add a spec to the registry (canonical name + aliases).

    Re-registering an existing canonical name replaces it; an alias
    colliding with a *different* spec's name is rejected — before any
    mutation, so a failed registration leaves the registry untouched.
    """
    canonical = spec.name.lower()
    aliases = {alias.lower() for alias in (spec.name, *spec.aliases)}
    for alias in sorted(aliases):
        owner = _ALIASES.get(alias)
        if owner is not None and owner != canonical:
            raise RegistryError(
                f"alias {alias!r} already registered for {owner!r}"
            )
    if canonical in _REGISTRY:  # drop the replaced spec's old aliases
        for alias in [a for a, o in _ALIASES.items() if o == canonical]:
            del _ALIASES[alias]
    for alias in aliases:
        _ALIASES[alias] = canonical
    _REGISTRY[canonical] = spec
    return spec


def get_spec(name: str) -> ExplainerSpec:
    """Resolve a canonical name or alias to its spec."""
    try:
        return _REGISTRY[_ALIASES[name.lower()]]
    except KeyError:
        raise RegistryError(
            f"unknown explainer {name!r}; registered: {explainer_names()}"
        ) from None


def explainer_names(include_aliases: bool = False) -> List[str]:
    """Registered canonical names (registration order)."""
    if include_aliases:
        return sorted(_ALIASES)
    return list(_REGISTRY)


def explainer_specs() -> List[ExplainerSpec]:
    """All registered specs in registration order."""
    return list(_REGISTRY.values())


def build_explainer(
    name: str,
    model: GnnClassifier,
    config: Optional[GvexConfig] = None,
    seed: Optional[Any] = None,
    **overrides: Any,
) -> Explainer:
    """Construct any registered explainer uniformly.

    ``config`` reaches explainers that accept a :class:`GvexConfig`
    (the GVEX algorithms); ``seed`` reaches those that take one;
    ``overrides`` are method-specific constructor keywords (e.g.
    ``rollouts`` for SubgraphX) layered over the spec's defaults.
    """
    spec = get_spec(name)
    kwargs: Dict[str, Any] = dict(spec.defaults)
    kwargs.update(overrides)
    if spec.takes_config and config is not None:
        kwargs["config"] = config
    if spec.takes_seed and seed is not None:
        kwargs["seed"] = seed
    try:
        return spec.cls(model, **kwargs)
    except TypeError as exc:
        raise RegistryError(
            f"cannot build explainer {spec.name!r} with {sorted(kwargs)}: {exc}"
        ) from exc


# ----------------------------------------------------------------------
# built-in registrations (Table 1 row order, then the random baseline)
# ----------------------------------------------------------------------
register_explainer(ExplainerSpec(
    name="subgraphx",
    cls=SubgraphX,
    aliases=("sx",),
    description="MCTS + Shapley subgraph search (Yuan et al.)",
))
register_explainer(ExplainerSpec(
    name="gnnexplainer",
    cls=GnnExplainer,
    aliases=("ge",),
    description="learned edge/feature masks (Ying et al.)",
))
register_explainer(ExplainerSpec(
    name="gstarx",
    cls=GStarX,
    aliases=("gx",),
    description="structure-aware coalition scores (Zhang et al.)",
))
register_explainer(ExplainerSpec(
    name="gcfexplainer",
    cls=GcfExplainer,
    aliases=("gcf",),
    description="global counterfactual candidates (Huang et al.)",
))
register_explainer(ExplainerSpec(
    name="gvex-approx",
    cls=ApproxGvexExplainer,
    aliases=("approx", "ag", "gvex"),
    takes_config=True,
    takes_seed=False,
    native_views=True,
    description="GVEX Algorithm 1/2: greedy + lower-bound two-tier views",
))
register_explainer(ExplainerSpec(
    name="gvex-stream",
    cls=StreamGvexExplainer,
    aliases=("stream", "sg"),
    takes_config=True,
    native_views=True,
    description="GVEX Algorithm 3: streaming anytime two-tier views",
))
register_explainer(ExplainerSpec(
    name="random",
    cls=RandomExplainer,
    aliases=("rnd",),
    in_table1=False,
    description="random node subsets (sanity-check baseline)",
))


__all__ = [
    "ExplainerSpec",
    "register_explainer",
    "get_spec",
    "explainer_names",
    "explainer_specs",
    "build_explainer",
]
