"""``repro.api`` — the single public surface of the reproduction.

One front door for everything downstream code should need:

* :class:`ExplanationService` — facade owning the ``fit_or_load →
  explain → persist → query`` lifecycle (``repro.api.service``);
* the explainer registry — :func:`register_explainer`,
  :func:`build_explainer`, :class:`ExplainerSpec` — and the tenant
  registry for multi-tenant serving — :class:`TenantRegistry`,
  :class:`TenantSpec` (``repro.api.registry``);
* the composable query DSL — :class:`Q` and :class:`ViewIndex`
  (re-exported from ``repro.query``);
* the HTTP layer — :func:`serve` / :func:`create_server`
  (``repro.api.server``);
* the core value types and configuration.

The supported surface is documented in ``docs/api.md`` and snapshotted
by ``scripts/check_api_surface.py``; everything else in ``repro.*`` is
internal and may change between PRs.
"""

from repro.api.registry import (
    DEFAULT_TENANT,
    ExplainerSpec,
    TenantRegistry,
    TenantSpec,
    build_explainer,
    explainer_names,
    explainer_specs,
    get_spec,
    register_explainer,
)
from repro.api.server import ExplanationServer, create_server, serve
from repro.api.service import ExplanationService, pattern_from_spec
from repro.config import CoverageConstraint, GvexConfig
from repro.graphs.io import VIEWS_SCHEMA_VERSION, load_views, save_views
from repro.graphs.pattern import Pattern
from repro.graphs.view import ExplanationSubgraph, ExplanationView, ViewSet
from repro.query import PatternOccurrence, Q, Query, ViewIndex

__all__ = [
    # facade
    "ExplanationService",
    "pattern_from_spec",
    # registry
    "ExplainerSpec",
    "register_explainer",
    "build_explainer",
    "get_spec",
    "explainer_names",
    "explainer_specs",
    # query DSL
    "Q",
    "Query",
    "ViewIndex",
    "PatternOccurrence",
    # serving
    "ExplanationServer",
    "create_server",
    "serve",
    "TenantRegistry",
    "TenantSpec",
    "DEFAULT_TENANT",
    # value types + config
    "GvexConfig",
    "CoverageConstraint",
    "Pattern",
    "ViewSet",
    "ExplanationView",
    "ExplanationSubgraph",
    # persistence
    "save_views",
    "load_views",
    "VIEWS_SCHEMA_VERSION",
]
