"""Stdlib JSON/HTTP endpoint — concurrent, multi-tenant serving.

A dependency-free ``http.server`` wrapper exposing the explain + query
lifecycle for *many* (dataset, model, config) residents at once::

    python -m repro.cli serve --dataset mutagenicity --port 8080 \\
        --workers 4 --tenant enzymes=enzymes --max-tenants 4

Routes
------
``GET  /health``        service status + registry + work-queue statistics
``GET  /tenants``       the tenant registry (names, residency, datasets)
``GET  /explainers``    the explainer registry (names, aliases, descriptions)
``GET  /capabilities``  the Table 1 capability matrix (text)
``GET  /views``         current views (``?tenant=NAME``), versioned wire format
``POST /explain``       ``{"tenant"?, "method", "labels"?, "config"?,``
                        ``"processes"?, "n_shards"?, "deadline_seconds"?}``
                        -> view summary
``POST /query``         ``{"tenant"?, "pattern", "scope"?, "label"?,``
                        ``"patterns"?}`` -> occurrences + per-label statistics

All bodies and responses are JSON. The ``tenant`` field addresses one
resident of the server's :class:`~repro.api.registry.TenantRegistry`
(default: the ``"default"`` tenant); unknown tenants get ``404``.
Explain requests mutate *their tenant's* views (and therefore what
``/query`` sees for that tenant), matching the facade's semantics — and
they *patch* the tenant's warm :class:`~repro.query.ViewIndex` posting
lists instead of rebuilding them per request.

Concurrency: the server is threaded for reads (lock-free — views and
indexes are swapped atomically); explains are admitted through a
:class:`~repro.runtime.BoundedWorkQueue` drained by ``workers`` threads,
so explains for *distinct* tenants run simultaneously while each
tenant's own explains serialize inside its service. Submissions past
the queued backlog (``queue_capacity``) — or past one tenant's depth
bound (``tenant_queue_capacity``) — are rejected immediately with
``503`` + ``Retry-After`` (backpressure; see docs/runtime.md). An
``/explain`` may carry ``deadline_seconds``, a monotonic budget the
whole stack honours (queue admission, drain, per-shard execution);
when it expires the request gets ``504`` with a structured body
(``"code": "deadline_expired"``) and its queue depth is fully
reclaimed — see docs/api.md. Request bodies above ``max_body_bytes``
are refused with ``413`` before the queue is touched; a fork worker
killed mid-shard surfaces as a ``500`` with its queue slot reclaimed.
With ``auth_token`` set, POST routes require ``Authorization: Bearer
<token>`` (compared constant-time); reads stay open.
"""

from __future__ import annotations

import hmac
import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.api.registry import DEFAULT_TENANT, TenantRegistry, explainer_specs
from repro.api.service import ExplanationService, pattern_from_spec
from repro.config import GvexConfig
from repro.exceptions import (
    ConfigurationError,
    DeadlineExpiredError,
    InvalidTypeError,
    QueueFullError,
    ReproError,
    TenantError,
    ValidationError,
    WorkerCrashError,
)
from repro.graphs.io import viewset_to_dict
from repro.query import Q, Query
from repro.runtime.deadline import Deadline
from repro.runtime.workqueue import DEFAULT_CAPACITY, BoundedWorkQueue

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8080
#: request bodies above this are refused with 413 before admission
DEFAULT_MAX_BODY_BYTES = 1 << 20


class ExplanationServer(ThreadingHTTPServer):
    """A ThreadingHTTPServer fronting a tenant registry.

    Construct it with either a single ``service`` (adopted as the
    pinned ``"default"`` tenant — the historical single-tenant shape)
    or an explicit ``registry`` of many tenants, plus a worker count
    for the explain pool.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: Optional[ExplanationService] = None,
        *,
        registry: Optional[TenantRegistry] = None,
        workers: int = 1,
        queue_capacity: int = DEFAULT_CAPACITY,
        tenant_queue_capacity: Optional[int] = None,
        auth_token: Optional[str] = None,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    ):
        super().__init__(address, _Handler)
        if registry is None:
            if service is None:
                raise ConfigurationError(
                    "ExplanationServer needs a service or a registry"
                )
            registry = TenantRegistry()
            registry.add_service(DEFAULT_TENANT, service, pinned=True)
        elif service is not None:
            raise ConfigurationError(
                "pass either a service or a registry, not both"
            )
        self.registry = registry
        names = registry.names()
        self.default_tenant: Optional[str] = (
            DEFAULT_TENANT
            if DEFAULT_TENANT in registry
            else (names[0] if len(names) == 1 else None)
        )
        self.auth_token = auth_token
        self.max_body_bytes = max_body_bytes
        self.work_queue = BoundedWorkQueue(
            capacity=queue_capacity,
            workers=workers,
            tenant_capacity=tenant_queue_capacity,
        )

    @property
    def service(self) -> Optional[ExplanationService]:
        """The default tenant's resident service (if materialized)."""
        if self.default_tenant is None:
            return None
        return self.registry.peek(self.default_tenant)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def server_close(self) -> None:  # noqa: D102 - stdlib override
        self.work_queue.close()
        super().server_close()


def create_server(
    service: Optional[ExplanationService] = None,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    *,
    registry: Optional[TenantRegistry] = None,
    workers: int = 1,
    queue_capacity: int = DEFAULT_CAPACITY,
    tenant_queue_capacity: Optional[int] = None,
    auth_token: Optional[str] = None,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
) -> ExplanationServer:
    """Bind (but do not start) a server; ``port=0`` picks a free port."""
    return ExplanationServer(
        (host, port),
        service,
        registry=registry,
        workers=workers,
        queue_capacity=queue_capacity,
        tenant_queue_capacity=tenant_queue_capacity,
        auth_token=auth_token,
        max_body_bytes=max_body_bytes,
    )


def serve(
    service: Optional[ExplanationService] = None,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    *,
    registry: Optional[TenantRegistry] = None,
    workers: int = 1,
    queue_capacity: int = DEFAULT_CAPACITY,
    tenant_queue_capacity: Optional[int] = None,
    auth_token: Optional[str] = None,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
) -> None:
    """Blocking serve loop (Ctrl-C to stop)."""
    server = create_server(
        service,
        host,
        port,
        registry=registry,
        workers=workers,
        queue_capacity=queue_capacity,
        tenant_queue_capacity=tenant_queue_capacity,
        auth_token=auth_token,
        max_body_bytes=max_body_bytes,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        server.server_close()


class _PayloadTooLarge(ValidationError):
    """Request body exceeds the server's ``max_body_bytes`` (413)."""


class JsonRequestHandler(BaseHTTPRequestHandler):
    """Reusable JSON-over-HTTP plumbing shared by every repro endpoint.

    Provides bearer-token auth (constant-time compare), bounded body
    reads (:class:`_PayloadTooLarge` -> 413), JSON responses, and quiet
    logging. The owning server object must expose ``auth_token``
    (``Optional[str]``) and ``max_body_bytes`` (``int``). The serving
    handler below and the cluster coordinator/worker handlers
    (``repro.runtime.cluster``) all subclass this, so the wire behavior
    — auth failures, body limits, error shapes — is identical across
    the whole HTTP surface.
    """

    def _authorized(self) -> bool:
        """Bearer-token check on POST routes (constant-time compare)."""
        token = self.server.auth_token
        if token is None:
            return True
        header = self.headers.get("Authorization") or ""
        expected = f"Bearer {token}"
        return hmac.compare_digest(header.encode(), expected.encode())

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        if length > self.server.max_body_bytes:
            # refuse before reading or admitting: oversized requests
            # must never occupy memory or a queue slot
            raise _PayloadTooLarge(
                f"request body of {length} bytes exceeds the "
                f"{self.server.max_body_bytes}-byte limit"
            )
        raw = self.rfile.read(length)
        data = json.loads(raw.decode("utf-8"))
        if not isinstance(data, dict):
            raise ValidationError("request body must be a JSON object")
        return data

    def _json(self, status: int, payload: Dict[str, Any]) -> None:
        raw = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        if status == 503:
            self.send_header("Retry-After", "1")
        self.send_header("Content-Length", str(len(raw)))
        self.end_headers()
        self.wfile.write(raw)

    def _error(self, status: int, message: str) -> None:
        self._json(status, {"error": message})

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # keep the CLI/test output clean


class _Handler(JsonRequestHandler):
    server: ExplanationServer  # narrowed type

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parsed = urlparse(self.path)
        route = parsed.path.rstrip("/") or "/"
        try:
            if route in ("/", "/health"):
                self._json(200, self._health())
            elif route == "/tenants":
                self._json(200, self._tenants())
            elif route == "/explainers":
                self._json(200, self._explainers())
            elif route == "/capabilities":
                self._json(200, {"table": ExplanationService.capabilities()})
            elif route == "/views":
                params = parse_qs(parsed.query)
                tenant = self._tenant_name(params.get("tenant", [None])[0])
                with self.server.registry.acquire(tenant) as svc:
                    if not svc.has_views:
                        self._error(
                            404,
                            f"tenant {tenant!r} has no views generated "
                            "or loaded yet",
                        )
                    else:
                        payload = viewset_to_dict(svc.views)
                        payload["tenant"] = tenant
                        self._json(200, payload)
            else:
                self._error(404, f"unknown route {route!r}")
        except TenantError as exc:
            self._error(404, str(exc))
        except ReproError as exc:
            self._error(400, str(exc))
        except Exception as exc:  # repro: noqa[REPRO401] - HTTP boundary -> 500
            self._error(500, f"{type(exc).__name__}: {exc}")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        route = self.path.split("?", 1)[0].rstrip("/")
        if not self._authorized():
            self._error(401, "missing or invalid bearer token")
            return
        try:
            body = self._read_body()
            if route == "/explain":
                tenant = self._tenant_name(body.get("tenant"))
                # resolve the tenant *before* admission so an unknown
                # name is a 404 that never consumes a queue slot
                self.server.registry.ensure(tenant)
                deadline = self._deadline(body)
                # explains mutate tenant state: admit through the
                # bounded queue and block for the result; a full queue
                # (global backlog or this tenant's depth bound) is
                # immediate backpressure
                try:
                    item = self.server.work_queue.submit(
                        lambda: self._explain(tenant, body, deadline),
                        tenant=tenant,
                        deadline=deadline,
                    )
                except QueueFullError as exc:
                    self._json(
                        503,
                        {
                            "error": str(exc),
                            "scope": exc.scope,
                            "tenant": tenant,
                            "queue": self.server.work_queue.stats(),
                        },
                    )
                    return
                self._json(200, item.result())
            elif route == "/query":
                tenant = self._tenant_name(body.get("tenant"))
                with self.server.registry.acquire(tenant) as svc:
                    self._json(200, self._query(svc, tenant, body))
            else:
                self._error(404, f"unknown route {route!r}")
        except _PayloadTooLarge as exc:
            self._error(413, str(exc))
        except TenantError as exc:
            self._error(404, str(exc))
        except DeadlineExpiredError as exc:
            # the deadline contract (docs/api.md): expired in the queue
            # or mid-dispatch -> 504 with a structured body; the queue
            # depth the request held is already reclaimed
            self._json(
                504,
                {
                    "error": str(exc),
                    "code": "deadline_expired",
                    "queue": self.server.work_queue.stats(),
                },
            )
        except WorkerCrashError as exc:
            self._error(500, str(exc))
        except (ReproError, KeyError, ValueError, TypeError) as exc:
            self._error(400, f"{type(exc).__name__}: {exc}")
        except Exception as exc:  # repro: noqa[REPRO401] - HTTP boundary -> 500
            self._error(500, f"{type(exc).__name__}: {exc}")

    # ------------------------------------------------------------------
    @staticmethod
    def _deadline(body: Dict[str, Any]) -> Optional[Deadline]:
        """Parse the optional ``deadline_seconds`` budget field."""
        budget = body.get("deadline_seconds")
        if budget is None:
            return None
        if isinstance(budget, bool) or not isinstance(budget, (int, float)):
            raise InvalidTypeError(
                "deadline_seconds must be a number of seconds, got "
                f"{type(budget).__name__}"
            )
        return Deadline.after(float(budget))

    def _tenant_name(self, requested: Optional[str]) -> str:
        """Resolve a request's tenant field against the server default."""
        if requested is not None:
            if not isinstance(requested, str):
                raise InvalidTypeError("tenant must be a string")
            return requested
        if self.server.default_tenant is None:
            raise TenantError(
                "this server hosts multiple tenants and has no default; "
                "pass a 'tenant' field "
                f"(registered: {self.server.registry.names()})"
            )
        return self.server.default_tenant

    # ------------------------------------------------------------------
    def _health(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "status": "ok",
            "queue": self.server.work_queue.stats(),
            "registry": self.server.registry.stats(),
            "default_tenant": self.server.default_tenant,
            "auth": self.server.auth_token is not None,
        }
        # the default tenant's fields stay at the top level (the
        # single-tenant health shape callers already scrape); peek only
        # — a health probe must stay cheap and never materialize a
        # tenant or build an index
        svc = self.server.service
        if svc is not None:
            out["dataset"] = svc.dataset
            out["scale"] = svc.scale
            out["has_model"] = svc._model is not None
            out["has_views"] = svc.has_views
            out["last_method"] = svc.last_method
            if svc.has_views:
                out["labels"] = [str(l) for l in svc.views.labels]
                if svc._index is not None:
                    out["index"] = svc._index.index_stats()
        return out

    def _tenants(self) -> Dict[str, Any]:
        stats = self.server.registry.stats()
        stats["default_tenant"] = self.server.default_tenant
        return stats

    @staticmethod
    def _explainers() -> Dict[str, Any]:
        return {
            "explainers": [
                {
                    "name": spec.name,
                    "aliases": list(spec.aliases),
                    "native_views": spec.native_views,
                    "takes_config": spec.takes_config,
                    "description": spec.description,
                }
                for spec in explainer_specs()
            ]
        }

    def _explain(
        self,
        tenant: str,
        body: Dict[str, Any],
        deadline: Optional[Deadline] = None,
    ) -> Dict[str, Any]:
        """One explain job — runs on a work-queue pool thread."""
        with self.server.registry.acquire(tenant) as svc:
            method = body.get("method", "gvex-approx")
            labels = body.get("labels")
            config: Optional[GvexConfig] = None
            if body.get("config"):
                config = GvexConfig.from_dict(body["config"])
            views = svc.explain(
                method,
                labels=labels,
                config=config,
                processes=int(body.get("processes", 1)),
                n_shards=int(body.get("n_shards", 1)),
                deadline=deadline,
            )
            return {
                "tenant": tenant,
                "method": svc.last_method,
                "views": [
                    {
                        "label": view.label,
                        "n_subgraphs": len(view.subgraphs),
                        "n_patterns": len(view.patterns),
                        "score": view.score,
                        "compression": view.compression(),
                    }
                    for view in views
                ],
            }

    def _query(
        self, svc: ExplanationService, tenant: str, body: Dict[str, Any]
    ) -> Dict[str, Any]:
        specs = body.get("patterns")
        if specs is None:
            specs = [body["pattern"]]
        patterns = [pattern_from_spec(s) for s in specs]
        query: Query = Q.all(*(Q.pattern(p) for p in patterns))
        scope = body.get("scope", "explanations")
        query = query & Q.in_scope(scope)
        if body.get("label") is not None:
            query = query & Q.label(body["label"])
        hits = svc.query(query)
        # per-label explanation counts of hosts matching ALL requested
        # patterns (== pattern_statistics for a single pattern), so the
        # statistics block always describes the same conjunction the
        # matches do
        stats_q = Q.all(*(Q.pattern(p) for p in patterns))
        stats = {
            str(label): svc.index.count(stats_q & Q.label(label))
            for label in svc.views.labels
        }
        return {
            "tenant": tenant,
            "scope": scope,
            "matches": [
                {
                    "label": hit.label,
                    "graph_index": hit.graph_index,
                    "in_explanation": hit.in_explanation,
                }
                for hit in hits
            ],
            "statistics": stats,
        }


__all__ = [
    "ExplanationServer",
    "JsonRequestHandler",
    "create_server",
    "serve",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "DEFAULT_MAX_BODY_BYTES",
]
