"""Stdlib JSON/HTTP endpoint over an :class:`ExplanationService`.

A dependency-free ``http.server`` wrapper exposing the explain + query
lifecycle::

    python -m repro.cli serve --dataset mutagenicity --port 8080

Routes
------
``GET  /health``        service status + index + work-queue statistics
``GET  /explainers``    the registry (names, aliases, descriptions)
``GET  /capabilities``  the Table 1 capability matrix (text)
``GET  /views``         current views in the versioned wire format
``POST /explain``       ``{"method", "labels"?, "config"?, "processes"?,``
                        ``"n_shards"?}`` -> view summary
``POST /query``         ``{"pattern", "scope"?, "label"?, "patterns"?}``
                        -> occurrences + per-label statistics

All bodies and responses are JSON. Explain requests mutate the
service's current views (and therefore what ``/query`` sees), matching
the facade's semantics — and they *patch* the replica's warm
:class:`~repro.query.ViewIndex` posting lists instead of rebuilding it
per request. The server is threaded for concurrent *reads*; explains
are admitted through a :class:`~repro.runtime.BoundedWorkQueue` —
one runs at a time, a bounded backlog may wait, and submissions past
capacity are rejected with ``503`` (backpressure; see
docs/runtime.md). With ``auth_token`` set, POST routes require
``Authorization: Bearer <token>`` (compared constant-time); reads stay
open.
"""

from __future__ import annotations

import hmac
import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.api.registry import explainer_specs
from repro.api.service import ExplanationService, pattern_from_spec
from repro.config import GvexConfig
from repro.exceptions import QueueFullError, ReproError
from repro.graphs.io import viewset_to_dict
from repro.query import Q, Query
from repro.runtime.workqueue import DEFAULT_CAPACITY, BoundedWorkQueue

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8080


class ExplanationServer(ThreadingHTTPServer):
    """A ThreadingHTTPServer carrying the service it fronts."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: ExplanationService,
        *,
        queue_capacity: int = DEFAULT_CAPACITY,
        auth_token: Optional[str] = None,
    ):
        super().__init__(address, _Handler)
        self.service = service
        self.auth_token = auth_token
        self.work_queue = BoundedWorkQueue(capacity=queue_capacity)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def server_close(self) -> None:  # noqa: D102 - stdlib override
        self.work_queue.close()
        super().server_close()


def create_server(
    service: ExplanationService,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    *,
    queue_capacity: int = DEFAULT_CAPACITY,
    auth_token: Optional[str] = None,
) -> ExplanationServer:
    """Bind (but do not start) a server; ``port=0`` picks a free port."""
    return ExplanationServer(
        (host, port),
        service,
        queue_capacity=queue_capacity,
        auth_token=auth_token,
    )


def serve(
    service: ExplanationService,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    *,
    queue_capacity: int = DEFAULT_CAPACITY,
    auth_token: Optional[str] = None,
) -> None:
    """Blocking serve loop (Ctrl-C to stop)."""
    server = create_server(
        service, host, port, queue_capacity=queue_capacity, auth_token=auth_token
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        server.server_close()


class _Handler(BaseHTTPRequestHandler):
    server: ExplanationServer  # narrowed type

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        route = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if route in ("/", "/health"):
                self._json(200, self._health())
            elif route == "/explainers":
                self._json(200, self._explainers())
            elif route == "/capabilities":
                self._json(200, {"table": ExplanationService.capabilities()})
            elif route == "/views":
                svc = self.server.service
                if not svc.has_views:
                    self._error(404, "no views generated or loaded yet")
                else:
                    self._json(200, viewset_to_dict(svc.views))
            else:
                self._error(404, f"unknown route {route!r}")
        except ReproError as exc:
            self._error(400, str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            self._error(500, f"{type(exc).__name__}: {exc}")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        route = self.path.split("?", 1)[0].rstrip("/")
        if not self._authorized():
            self._error(401, "missing or invalid bearer token")
            return
        try:
            body = self._read_body()
            if route == "/explain":
                # explains mutate service state: admit through the
                # bounded queue (FIFO, one at a time) and block for the
                # result; a full queue is immediate backpressure
                try:
                    item = self.server.work_queue.submit(
                        lambda: self._explain(body)
                    )
                except QueueFullError as exc:
                    self._json(
                        503,
                        {
                            "error": str(exc),
                            "queue": self.server.work_queue.stats(),
                        },
                    )
                    return
                self._json(200, item.result())
            elif route == "/query":
                self._json(200, self._query(body))
            else:
                self._error(404, f"unknown route {route!r}")
        except (ReproError, KeyError, ValueError, TypeError) as exc:
            self._error(400, f"{type(exc).__name__}: {exc}")
        except Exception as exc:  # pragma: no cover - defensive
            self._error(500, f"{type(exc).__name__}: {exc}")

    # ------------------------------------------------------------------
    def _authorized(self) -> bool:
        """Bearer-token check on POST routes (constant-time compare)."""
        token = self.server.auth_token
        if token is None:
            return True
        header = self.headers.get("Authorization") or ""
        expected = f"Bearer {token}"
        return hmac.compare_digest(header.encode(), expected.encode())

    # ------------------------------------------------------------------
    def _health(self) -> Dict[str, Any]:
        svc = self.server.service
        out: Dict[str, Any] = {
            "status": "ok",
            "dataset": svc.dataset,
            "scale": svc.scale,
            "has_model": svc._model is not None,
            "has_views": svc.has_views,
            "last_method": svc.last_method,
            "queue": self.server.work_queue.stats(),
            "auth": self.server.auth_token is not None,
        }
        if svc.has_views:
            out["labels"] = [str(l) for l in svc.views.labels]
            # only report the index when it already exists: a health
            # probe must stay cheap, and svc.index would eagerly build
            # posting lists (and lazily load a named dataset)
            if svc._index is not None:
                out["index"] = svc._index.index_stats()
        return out

    @staticmethod
    def _explainers() -> Dict[str, Any]:
        return {
            "explainers": [
                {
                    "name": spec.name,
                    "aliases": list(spec.aliases),
                    "native_views": spec.native_views,
                    "takes_config": spec.takes_config,
                    "description": spec.description,
                }
                for spec in explainer_specs()
            ]
        }

    def _explain(self, body: Dict[str, Any]) -> Dict[str, Any]:
        svc = self.server.service
        method = body.get("method", "gvex-approx")
        labels = body.get("labels")
        config: Optional[GvexConfig] = None
        if body.get("config"):
            config = GvexConfig.from_dict(body["config"])
        views = svc.explain(
            method,
            labels=labels,
            config=config,
            processes=int(body.get("processes", 1)),
            n_shards=int(body.get("n_shards", 1)),
        )
        return {
            "method": svc.last_method,
            "views": [
                {
                    "label": view.label,
                    "n_subgraphs": len(view.subgraphs),
                    "n_patterns": len(view.patterns),
                    "score": view.score,
                    "compression": view.compression(),
                }
                for view in views
            ],
        }

    def _query(self, body: Dict[str, Any]) -> Dict[str, Any]:
        svc = self.server.service
        specs = body.get("patterns")
        if specs is None:
            specs = [body["pattern"]]
        patterns = [pattern_from_spec(s) for s in specs]
        query: Query = Q.all(*(Q.pattern(p) for p in patterns))
        scope = body.get("scope", "explanations")
        query = query & Q.in_scope(scope)
        if body.get("label") is not None:
            query = query & Q.label(body["label"])
        hits = svc.query(query)
        # per-label explanation counts of hosts matching ALL requested
        # patterns (== pattern_statistics for a single pattern), so the
        # statistics block always describes the same conjunction the
        # matches do
        stats_q = Q.all(*(Q.pattern(p) for p in patterns))
        stats = {
            str(label): svc.index.count(stats_q & Q.label(label))
            for label in svc.views.labels
        }
        return {
            "scope": scope,
            "matches": [
                {
                    "label": hit.label,
                    "graph_index": hit.graph_index,
                    "in_explanation": hit.in_explanation,
                }
                for hit in hits
            ],
            "statistics": stats,
        }

    # ------------------------------------------------------------------
    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        data = json.loads(raw.decode("utf-8"))
        if not isinstance(data, dict):
            raise ValueError("request body must be a JSON object")
        return data

    def _json(self, status: int, payload: Dict[str, Any]) -> None:
        raw = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        if status == 503:
            self.send_header("Retry-After", "1")
        self.send_header("Content-Length", str(len(raw)))
        self.end_headers()
        self.wfile.write(raw)

    def _error(self, status: int, message: str) -> None:
        self._json(status, {"error": message})

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # keep the CLI/test output clean


__all__ = [
    "ExplanationServer",
    "create_server",
    "serve",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
]
