"""The front door: one facade owning the explain lifecycle.

:class:`ExplanationService` bundles dataset, model, and configuration
lifecycle behind four verbs — ``fit_or_load → explain → persist →
query`` — so the CLI, the examples, the benchmarks, and the HTTP layer
all drive the exact same code path::

    from repro.api import ExplanationService, Q

    svc = ExplanationService("mutagenicity", scale="test")
    svc.fit_or_load()                       # train (or load a .npz)
    views = svc.explain("gvex-approx")      # any registered explainer
    svc.persist("views.json")               # versioned wire format
    svc.query(Q.pattern(p) & Q.label(1))    # inverted-index queries

A service can equally wrap an in-memory database/model pair
(``ExplanationService(db=db, model=model)``) or pre-generated views
(``svc.load_views("views.json")``).
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Any, Dict, Hashable, Iterable, List, Mapping, Optional, Tuple

from repro.api.registry import get_spec
from repro.config import GvexConfig
from repro.exceptions import ConfigurationError, ExplanationError
from repro.gnn.model import GnnClassifier
from repro.gnn.training import train_classifier
from repro.graphs.database import GraphDatabase
from repro.graphs.graph import Graph
from repro.graphs.io import graph_from_dict, load_views, save_views
from repro.graphs.pattern import Pattern
from repro.graphs.view import ViewSet
from repro.metrics.capability import capability_table
from repro.query import Q, Query, ViewIndex
from repro.query.index import PatternOccurrence


def pattern_from_spec(spec: Mapping[str, Any]) -> Pattern:
    """Build a query pattern from its wire form.

    ``{"node_types": [...], "edges": [[u, v, type], ...], "directed":
    bool}`` — the same shape the CLI ``--pattern`` flag and the HTTP
    ``/query`` route accept.
    """
    graph = graph_from_dict(
        {
            "node_types": spec["node_types"],
            "edges": spec.get("edges", []),
            "directed": spec.get("directed", False),
        }
    )
    return Pattern(graph)


class ExplanationService:
    """Facade owning dataset/model/config lifecycle for explanations.

    Parameters
    ----------
    dataset:
        Registry dataset name (``repro.datasets.registry``); loaded
        lazily at ``scale``/``seed``. Omit when passing ``db`` directly.
    db:
        An explicit :class:`GraphDatabase` (overrides ``dataset``).
    model:
        A trained classifier; otherwise :meth:`fit_or_load` trains one.
    config:
        Default :class:`GvexConfig` for :meth:`explain` calls.
    """

    def __init__(
        self,
        dataset: Optional[str] = None,
        *,
        scale: str = "test",
        seed: int = 0,
        db: Optional[GraphDatabase] = None,
        model: Optional[GnnClassifier] = None,
        config: Optional[GvexConfig] = None,
        hidden_dims: Tuple[int, ...] = (32, 32, 32),
    ) -> None:
        if dataset is None and db is None:
            raise ConfigurationError(
                "ExplanationService needs a dataset name or a db"
            )
        self.dataset = dataset
        self.scale = scale
        self.seed = seed
        self.config = config if config is not None else GvexConfig()
        self.hidden_dims = tuple(hidden_dims)
        self._db = db
        self._model = model
        self._views: Optional[ViewSet] = None
        self._index: Optional[ViewIndex] = None
        # concurrency contract (multi-worker serving): explains on one
        # service serialize — views/model mutation is never concurrent
        # with itself — while queries stay lock-free readers of the
        # atomically swapped views/index references. The index lock only
        # guards first-build vs patch races.
        self._explain_lock = threading.RLock()
        self._index_lock = threading.RLock()
        #: metrics of the most recent in-service training run
        self.train_metrics: Optional[Dict[str, float]] = None
        #: registry name of the most recent explain() method
        self.last_method: Optional[str] = None

    # ------------------------------------------------------------------
    # lifecycle: data + model
    # ------------------------------------------------------------------
    @property
    def db(self) -> GraphDatabase:
        """The graph database (lazily loaded for named datasets)."""
        if self._db is None:
            from repro.datasets.registry import load_dataset

            self._db = load_dataset(self.dataset, scale=self.scale, seed=self.seed)
        return self._db

    @property
    def model(self) -> GnnClassifier:
        """The classifier; trains one on first use when absent."""
        if self._model is None:
            self.fit_or_load()
        return self._model

    def fit_or_load(
        self,
        model_path: Optional[Any] = None,
        *,
        epochs: int = 150,
        save: bool = True,
    ) -> GnnClassifier:
        """Load ``model_path`` if it exists, else train (and save there).

        Idempotent: once the service holds a model, it is returned
        as-is. Training metrics land in :attr:`train_metrics`.
        """
        with self._explain_lock:  # two racing explains must train once
            if self._model is not None:
                return self._model
            path = Path(model_path) if model_path is not None else None
            if path is not None and path.exists():
                self._model = GnnClassifier.load(path)
                return self._model
            in_dim, n_classes = self._model_dims()
            model = GnnClassifier(
                in_dim, n_classes, hidden_dims=self.hidden_dims, seed=self.seed
            )
            model, _, metrics = train_classifier(
                self.db, model, seed=self.seed, max_epochs=epochs
            )
            self.train_metrics = metrics
            self._model = model
            if path is not None and save:
                model.save(path)
            return model

    def _model_dims(self) -> Tuple[int, int]:
        if self.dataset is not None:
            from repro.datasets.registry import dataset_info

            info = dataset_info(self.dataset)
            return info.n_features, info.n_classes
        db = self.db
        n_classes = len({l for l in db.labels})
        first = db[0]
        if first.features is not None:
            return int(first.features.shape[1]), n_classes
        n_types = 1 + max(int(g.node_types.max()) for g in db if g.n_nodes)
        return n_types, n_classes

    # ------------------------------------------------------------------
    # lifecycle: explain + persist
    # ------------------------------------------------------------------
    def explain(
        self,
        method: str = "gvex-approx",
        *,
        labels: Optional[Iterable[int]] = None,
        config: Optional[GvexConfig] = None,
        processes: int = 1,
        n_shards: int = 1,
        seed: Optional[Any] = None,
        shard_stats: Optional[Mapping] = None,
        deadline: Optional[Any] = None,
        **overrides: Any,
    ) -> ViewSet:
        """Generate explanation views with any registered explainer.

        ``method`` is a registry name or alias (``gvex-approx``,
        ``stream``, ``SX``, ...). Scheduling always goes through the
        :mod:`repro.runtime` plan/executor engine: ``processes > 1``
        forks a warm-state worker pool, ``n_shards > 1`` runs the
        replica-sharding simulation and merges partial views.
        ``shard_stats`` (parsed ``results/runtime_scaling.json``
        content; CLI ``--shard-stats``) feeds observed wall-clock back
        into shard sizing. ``deadline`` (a
        :class:`~repro.runtime.deadline.Deadline`) attaches a monotonic
        budget the executors re-check between shards — when it expires
        mid-run the typed
        :class:`~repro.exceptions.DeadlineExpiredError` surfaces (the
        HTTP layer maps it to 504) and no views are published. The
        produced views become the service's current views (queryable
        via :meth:`query`).
        """
        spec = get_spec(method)
        config = config if config is not None else self.config
        seed = seed if seed is not None else self.seed
        from repro.runtime import build_plan, run_plan

        # serialize whole explains per service: a multi-worker serve
        # pool may drain several queued explains at once, and two
        # concurrent explains on *one* tenant would race on training
        # and view publication. Distinct tenants (distinct services)
        # still overlap freely.
        with self._explain_lock:
            plan = build_plan(
                self.db,
                self.model,
                config,
                labels=labels,
                method=spec.name,
                seed=seed,
                explainer_kwargs=overrides,
                processes=processes,
                shard_stats=shard_stats,
                deadline=deadline,
            )
            views = run_plan(plan, processes=processes, n_shards=n_shards)
            self.last_method = spec.name
            self._set_views(views)
            return views

    def persist(self, path: Any) -> Path:
        """Write the current views as versioned JSON; returns the path."""
        path = Path(path)
        save_views(self.views, path)
        return path

    def load_views(self, path: Any) -> ViewSet:
        """Adopt previously persisted views (v1 or v2 schema)."""
        self._set_views(load_views(path))
        return self.views

    def set_views(self, views: ViewSet) -> None:
        """Adopt an in-memory view set (e.g. from a custom pipeline)."""
        self._set_views(views)

    def _set_views(self, views: ViewSet) -> None:
        with self._index_lock:
            if self._index is not None:
                # warm replica: patch posting lists per admitted view
                # instead of rebuilding (see docs/runtime.md). The patch
                # runs on a clone swapped in atomically, so concurrent
                # query threads (the HTTP server reads without locks)
                # keep a consistent snapshot; when no index exists yet
                # it stays lazily built on first query. The index lock
                # keeps a concurrent first-build from publishing an
                # index of the outgoing views *after* this patch.
                self._index = self._index.patched_copy(views)
            self._views = views

    @property
    def views(self) -> ViewSet:
        if self._views is None:
            raise ExplanationError(
                "no views yet: call explain() or load_views() first"
            )
        return self._views

    @property
    def has_views(self) -> bool:
        return self._views is not None

    # ------------------------------------------------------------------
    # lifecycle: query
    # ------------------------------------------------------------------
    @property
    def index(self) -> ViewIndex:
        """Inverted-index query engine over the current views.

        Lock-free once built (readers see an atomically swapped
        reference); the first build double-checks under the index lock
        so concurrent query threads build it exactly once and never
        clobber a fresher patched index.
        """
        index = self._index
        if index is not None:
            return index
        with self._index_lock:
            if self._index is None:
                self._index = ViewIndex(
                    self.views, db=self.db, backend=self.config.matching_backend
                )
            return self._index

    def query(self, query: Query) -> List[PatternOccurrence]:
        """Execute a composable :class:`~repro.query.dsl.Query`."""
        return self.index.select(query)

    def query_pattern(
        self,
        pattern: Pattern,
        *,
        scope: str = "explanations",
        label: Optional[Hashable] = None,
    ) -> List[PatternOccurrence]:
        """Convenience: the paper's §1 queries without hand-building Q."""
        q: Query = Q.pattern(pattern) & Q.in_scope(scope)
        if label is not None:
            q = q & Q.label(label)
        return self.query(q)

    # ------------------------------------------------------------------
    @staticmethod
    def capabilities() -> str:
        """The Table 1 capability matrix."""
        return capability_table()

    def __repr__(self) -> str:
        source = self.dataset if self.dataset is not None else "custom-db"
        state = []
        if self._model is not None:
            state.append("model")
        if self._views is not None:
            state.append(f"views[{len(self._views)}]")
        return f"<ExplanationService {source} {'+'.join(state) or 'empty'}>"


__all__ = ["ExplanationService", "pattern_from_spec"]
