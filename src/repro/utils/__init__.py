"""Shared utilities: seeded RNG helpers, timers, validation."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timing import Stopwatch, time_call
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "Stopwatch",
    "time_call",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_probability",
]
