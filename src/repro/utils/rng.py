"""Deterministic random-number-generator plumbing.

Every stochastic component in the library takes a ``seed`` or ``rng``
argument and converts it through :func:`ensure_rng`, so experiments are
reproducible end to end from a single integer.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np
from repro.exceptions import ValidationError

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` from a seed, generator, or None.

    Passing an existing generator returns it unchanged so callers can
    thread one RNG through a pipeline; passing an int gives a fresh,
    deterministic generator; ``None`` gives an OS-seeded generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: RngLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from one seed.

    Used by the parallel driver so worker processes draw from
    non-overlapping streams.
    """
    if count < 0:
        raise ValidationError(f"count must be >= 0, got {count}")
    root = ensure_rng(seed)
    seeds = root.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_seed(seed: RngLike, *tags: object) -> int:
    """Derive a deterministic sub-seed from a base seed and hashable tags.

    Lets independent components (e.g. each graph in a database) get
    stable, distinct randomness without sharing generator state.
    """
    base = 0 if seed is None else (seed if isinstance(seed, int) else 0)
    h = np.uint64(base)
    for tag in tags:
        h = np.uint64(h * np.uint64(1000003)) ^ np.uint64(abs(hash(tag)) & 0xFFFFFFFF)
    return int(h % np.uint64(2**31 - 1))


__all__ = ["RngLike", "ensure_rng", "spawn_rngs", "derive_seed"]
