"""Small argument validators shared across the library.

Each validator raises :class:`repro.exceptions.ValidationError`
(a ``ValueError`` subclass) with a message naming the offending
argument, so API misuse fails loudly at the boundary instead of deep
inside an algorithm.
"""

from __future__ import annotations

from typing import Any
from repro.exceptions import ValidationError


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Require ``value >= 0``."""
    if value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Require ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValidationError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Require ``0 < value <= 1`` (a non-empty fraction)."""
    if not 0.0 < value <= 1.0:
        raise ValidationError(f"{name} must be in (0, 1], got {value!r}")
    return value


def check_in(name: str, value: Any, allowed: tuple) -> Any:
    """Require ``value`` to be one of ``allowed``."""
    if value not in allowed:
        raise ValidationError(f"{name} must be one of {allowed}, got {value!r}")
    return value


__all__ = [
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_fraction",
    "check_in",
]
