"""Lightweight timing helpers used by the benchmark harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Tuple


@dataclass
class Stopwatch:
    """Accumulating stopwatch with named laps.

    >>> sw = Stopwatch()
    >>> with sw.lap("phase1"):
    ...     pass
    >>> "phase1" in sw.laps
    True
    """

    laps: dict[str, float] = field(default_factory=dict)

    def lap(self, name: str) -> "_Lap":
        return _Lap(self, name)

    def add(self, name: str, seconds: float) -> None:
        self.laps[name] = self.laps.get(name, 0.0) + seconds

    @property
    def total(self) -> float:
        return sum(self.laps.values())


class _Lap:
    def __init__(self, sw: Stopwatch, name: str):
        self._sw = sw
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Lap":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        self._sw.add(self._name, time.perf_counter() - self._start)


def time_call(fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Tuple[Any, float]:
    """Run ``fn`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


__all__ = ["Stopwatch", "time_call"]
