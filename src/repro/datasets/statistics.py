"""Dataset statistics — reproduces Table 3's columns."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.datasets.registry import DATASETS, DatasetInfo
from repro.graphs.database import GraphDatabase


@dataclass(frozen=True)
class DatasetStatistics:
    """One Table 3 row."""

    name: str
    avg_edges: float
    avg_nodes: float
    n_features: Optional[int]
    n_graphs: int
    n_classes: int

    def row(self) -> List[str]:
        return [
            self.name,
            f"{self.avg_edges:.1f}",
            f"{self.avg_nodes:.1f}",
            "-" if self.n_features in (None, 1) else str(self.n_features),
            str(self.n_graphs),
            str(self.n_classes),
        ]


def compute_statistics(
    db: GraphDatabase, n_features: Optional[int] = None, name: Optional[str] = None
) -> DatasetStatistics:
    """Statistics of a loaded database (Table 3 columns)."""
    n = len(db)
    avg_nodes = db.total_nodes() / n if n else 0.0
    avg_edges = db.total_edges() / n if n else 0.0
    if n_features is None and n and db[0].features is not None:
        n_features = db[0].features.shape[1]
    return DatasetStatistics(
        name=name or db.name,
        avg_edges=avg_edges,
        avg_nodes=avg_nodes,
        n_features=n_features,
        n_graphs=n,
        n_classes=db.n_classes if db.labels is not None else 0,
    )


def statistics_table(
    scale: str = "test", seed: int = 0, names: Optional[Sequence[str]] = None
) -> str:
    """ASCII Table 3 for all (or selected) datasets at one scale."""
    headers = ["Dataset", "Avg#Edges", "Avg#Nodes", "#NF", "#Graphs", "#Classes"]
    rows = [headers]
    for name, info in DATASETS.items():
        if names is not None and name not in names:
            continue
        db = info.load(scale=scale, seed=seed)
        stats = compute_statistics(db, n_features=info.n_features, name=info.paper_name)
        rows.append(stats.row())
    widths = [max(len(r[i]) for r in rows) for i in range(len(headers))]
    lines = []
    for i, row in enumerate(rows):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if i == 0:
            lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    return "\n".join(lines)


__all__ = ["DatasetStatistics", "compute_statistics", "statistics_table"]
