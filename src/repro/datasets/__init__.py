"""Synthetic analogues of the paper's seven datasets (Table 3)."""

from repro.datasets.malware import malnet
from repro.datasets.molecules import mutagenicity, pcqm4m
from repro.datasets.products import products
from repro.datasets.proteins import enzymes
from repro.datasets.registry import (
    DATASETS,
    FIDELITY_DATASETS,
    DatasetInfo,
    dataset_info,
    load_dataset,
)
from repro.datasets.social import reddit_binary
from repro.datasets.statistics import (
    DatasetStatistics,
    compute_statistics,
    statistics_table,
)
from repro.datasets.synthetic import ba_synthetic
from repro.datasets.zoo import TrainedClassifier, clear_cache, get_trained

__all__ = [
    "mutagenicity",
    "pcqm4m",
    "reddit_binary",
    "enzymes",
    "malnet",
    "products",
    "ba_synthetic",
    "DATASETS",
    "FIDELITY_DATASETS",
    "DatasetInfo",
    "load_dataset",
    "dataset_info",
    "DatasetStatistics",
    "compute_statistics",
    "statistics_table",
    "TrainedClassifier",
    "get_trained",
    "clear_cache",
]
