"""REDDIT-BINARY analogue (Table 3): thread interaction graphs.

The real dataset labels threads as *question-answer* vs.
*online-discussion*; the paper's case study (Fig. 11) shows Q&A threads
exhibit biclique-like expert-asker structure while discussions are
star-like around a topic. The generator reproduces exactly that
mechanism: class 0 = a few large stars (one poster, many repliers)
loosely chained; class 1 = small bicliques (few experts answering many
askers). Nodes carry no features (a constant one-hot type), as in the
real REDDIT-BINARY.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.graphs.database import GraphDatabase
from repro.graphs.generators import biclique_graph, disjoint_union, star_graph
from repro.graphs.graph import Graph
from repro.utils.rng import RngLike, ensure_rng

DISCUSSION, QA = 0, 1


def _sprinkle_edges(g: Graph, count: int, rng: np.random.Generator) -> None:
    """Add a few random reply edges so classes differ by motif, not count."""
    n = g.n_nodes
    added = 0
    attempts = 0
    while added < count and attempts < 20 * count:
        attempts += 1
        u, v = rng.integers(0, n, size=2)
        if u != v and not g.has_edge(int(u), int(v)):
            g.add_edge(int(u), int(v))
            added += 1


def discussion_thread(
    rng: np.random.Generator, n_hubs: int, leaves_per_hub: int
) -> Graph:
    """Star-dominated thread: popular comments each drawing many replies."""
    stars = [
        star_graph(int(rng.integers(max(leaves_per_hub // 2, 2), leaves_per_hub + 1)))
        for _ in range(n_hubs)
    ]
    g, parts = disjoint_union(stars)
    # chain the hubs: consecutive popular comments reference each other
    for a, b in zip(parts[:-1], parts[1:]):
        g.add_edge(a[0], b[0])
    _sprinkle_edges(g, n_hubs, rng)
    return g


def qa_thread(
    rng: np.random.Generator, n_cliques: int, experts: int, askers: int
) -> Graph:
    """Biclique-dominated thread: few experts answering many askers."""
    cliques = [
        biclique_graph(
            experts, int(rng.integers(max(askers // 2, 2), askers + 1))
        )
        for _ in range(n_cliques)
    ]
    g, parts = disjoint_union(cliques)
    for a, b in zip(parts[:-1], parts[1:]):
        g.add_edge(a[0], b[0])
    _sprinkle_edges(g, n_cliques, rng)
    return g


def reddit_binary(
    n_graphs: int = 40,
    n_hubs: int = 4,
    leaves_per_hub: int = 9,
    n_cliques: int = 3,
    experts: int = 3,
    askers: int = 8,
    seed: RngLike = 0,
) -> GraphDatabase:
    """REDDIT-BINARY analogue: binary, featureless, star vs biclique."""
    rng = ensure_rng(seed)
    graphs: List[Graph] = []
    labels: List[int] = []
    for i in range(n_graphs):
        label = i % 2
        if label == DISCUSSION:
            g = discussion_thread(rng, n_hubs, leaves_per_hub)
        else:
            g = qa_thread(rng, n_cliques, experts, askers)
        graphs.append(g)
        labels.append(label)
    return GraphDatabase(graphs, labels=labels, name="reddit_binary")


__all__ = ["reddit_binary", "discussion_thread", "qa_thread", "DISCUSSION", "QA"]
