"""Dataset registry with size presets (Table 3 workloads).

``load_dataset(name, scale)`` is the single entry point the benches
use. Scales: ``test`` (seconds, for CI), ``bench`` (default for the
figure reproductions), ``large`` (scalability sweeps). The paper's
absolute sizes (Table 3) are out of reach for a pure-Python GNN, so
each scale records its *ratio* intent instead: MAL has the largest
graphs, PCQ the most graphs, PRO/SYN the largest connected bases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.exceptions import DatasetError
from repro.graphs.database import GraphDatabase
from repro.datasets.malware import malnet
from repro.datasets.molecules import mutagenicity, pcqm4m
from repro.datasets.products import products
from repro.datasets.proteins import enzymes
from repro.datasets.social import reddit_binary
from repro.datasets.synthetic import ba_synthetic


@dataclass(frozen=True)
class DatasetInfo:
    """Static description of one dataset family."""

    name: str
    paper_name: str
    loader: Callable[..., GraphDatabase]
    n_features: int
    n_classes: int
    directed: bool
    #: loader kwargs per scale
    scales: Dict[str, Dict[str, int]]

    def load(self, scale: str = "test", seed: int = 0, **overrides) -> GraphDatabase:
        if scale not in self.scales:
            raise DatasetError(
                f"dataset {self.name!r} has no scale {scale!r}; "
                f"options: {sorted(self.scales)}"
            )
        kwargs = dict(self.scales[scale])
        kwargs.update(overrides)
        return self.loader(seed=seed, **kwargs)


DATASETS: Dict[str, DatasetInfo] = {
    "mutagenicity": DatasetInfo(
        name="mutagenicity",
        paper_name="MUTAGENICITY (MUT)",
        loader=mutagenicity,
        n_features=14,
        n_classes=2,
        directed=False,
        scales={
            "test": dict(n_graphs=24, min_size=5, max_size=9),
            "bench": dict(n_graphs=60, min_size=6, max_size=14),
            "large": dict(n_graphs=200, min_size=8, max_size=20),
        },
    ),
    "reddit_binary": DatasetInfo(
        name="reddit_binary",
        paper_name="REDDIT-BINARY (RED)",
        loader=reddit_binary,
        n_features=1,
        n_classes=2,
        directed=False,
        scales={
            "test": dict(n_graphs=16, n_hubs=3, leaves_per_hub=5, n_cliques=2,
                         experts=2, askers=5),
            "bench": dict(n_graphs=40, n_hubs=4, leaves_per_hub=9, n_cliques=3,
                          experts=3, askers=8),
            "large": dict(n_graphs=120, n_hubs=6, leaves_per_hub=14, n_cliques=4,
                          experts=4, askers=12),
        },
    ),
    "enzymes": DatasetInfo(
        name="enzymes",
        paper_name="ENZYMES (ENZ)",
        loader=enzymes,
        n_features=3,
        n_classes=6,
        directed=False,
        scales={
            "test": dict(n_graphs=36, min_size=5, max_size=8),
            "bench": dict(n_graphs=72, min_size=6, max_size=12),
            "large": dict(n_graphs=240, min_size=8, max_size=16),
        },
    ),
    "malnet": DatasetInfo(
        name="malnet",
        paper_name="MALNET-TINY (MAL)",
        loader=malnet,
        n_features=10,  # in/out-degree buckets (featureless in the paper)
        n_classes=5,
        directed=True,
        scales={
            "test": dict(n_graphs=15, min_size=20, max_size=35),
            "bench": dict(n_graphs=30, min_size=40, max_size=80),
            "large": dict(n_graphs=60, min_size=80, max_size=160),
        },
    ),
    "pcqm4m": DatasetInfo(
        name="pcqm4m",
        paper_name="PCQM4Mv2 (PCQ)",
        loader=pcqm4m,
        n_features=9,
        n_classes=3,
        directed=False,
        scales={
            "test": dict(n_graphs=30, min_size=4, max_size=8),
            "bench": dict(n_graphs=96, min_size=5, max_size=10),
            "large": dict(n_graphs=400, min_size=5, max_size=12),
        },
    ),
    "products": DatasetInfo(
        name="products",
        paper_name="PRODUCTS (PRO)",
        loader=products,
        n_features=100,
        n_classes=6,
        directed=False,
        scales={
            "test": dict(n_subgraphs=12, n_blocks=6, block_size=10, radius=1),
            "bench": dict(n_subgraphs=24, n_blocks=6, block_size=30, radius=2),
            "large": dict(n_subgraphs=48, n_blocks=8, block_size=50, radius=2),
        },
    ),
    "ba_synthetic": DatasetInfo(
        name="ba_synthetic",
        paper_name="SYNTHETIC (SYN)",
        loader=ba_synthetic,
        n_features=8,  # degree buckets (featureless in the paper)
        n_classes=2,
        directed=False,
        scales={
            "test": dict(n_graphs=8, base_size=25, motifs_per_graph=2),
            "bench": dict(n_graphs=12, base_size=60, motifs_per_graph=3),
            "large": dict(n_graphs=24, base_size=150, motifs_per_graph=4),
        },
    ),
}

#: the paper's four fidelity-figure datasets (Figures 5-6)
FIDELITY_DATASETS = ("reddit_binary", "enzymes", "mutagenicity", "malnet")


def load_dataset(
    name: str, scale: str = "test", seed: int = 0, **overrides
) -> GraphDatabase:
    """Load a dataset by name at the given scale."""
    try:
        info = DATASETS[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; options: {sorted(DATASETS)}"
        ) from None
    return info.load(scale=scale, seed=seed, **overrides)


def dataset_info(name: str) -> DatasetInfo:
    try:
        return DATASETS[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; options: {sorted(DATASETS)}"
        ) from None


__all__ = ["DatasetInfo", "DATASETS", "FIDELITY_DATASETS", "load_dataset", "dataset_info"]
