"""ENZYMES analogue (Table 3): 6-class protein structure graphs.

The real ENZYMES graphs are protein tertiary structures whose nodes are
secondary-structure elements with 3 one-hot features (helix / sheet /
turn). Our generator wires a random backbone of typed elements and
plants one of six class-characteristic interaction motifs, matching the
explanation views of Fig. 13 (each enzyme class shows a distinct
substructure).
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

from repro.graphs.database import GraphDatabase
from repro.graphs.generators import attach_motif, chain_graph, ring_graph, star_graph
from repro.graphs.graph import Graph
from repro.utils.rng import RngLike, ensure_rng

HELIX, SHEET, TURN = 0, 1, 2
N_CLASSES = 6


def _triangle(t: int) -> Graph:
    g = Graph([t, t, t])
    g.add_edge(0, 1)
    g.add_edge(1, 2)
    g.add_edge(2, 0)
    return g


def _square(t: int) -> Graph:
    return ring_graph([t] * 4)


def _mixed_path() -> Graph:
    return chain_graph([HELIX, SHEET, HELIX, SHEET])


def _bowtie(t: int) -> Graph:
    g = Graph([t] * 5)
    for u, v in [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]:
        g.add_edge(u, v)
    return g


def class_motif(label: int) -> Graph:
    """The planted motif for each enzyme class (ground truth for Fig. 13)."""
    makers: List[Callable[[], Graph]] = [
        lambda: _triangle(HELIX),
        lambda: _square(SHEET),
        lambda: Graph.__new__(Graph),  # placeholder, replaced below
        lambda: _mixed_path(),
        lambda: ring_graph([TURN] * 5),
        lambda: _bowtie(SHEET),
    ]
    if label == 2:
        return star_graph(3, center_type=TURN, leaf_type=HELIX)
    return makers[label]()


def enzymes(
    n_graphs: int = 72,
    min_size: int = 6,
    max_size: int = 12,
    seed: RngLike = 0,
) -> GraphDatabase:
    """ENZYMES analogue: 6 classes, 3 one-hot node features."""
    rng = ensure_rng(seed)
    graphs: List[Graph] = []
    labels: List[int] = []
    for i in range(n_graphs):
        label = i % N_CLASSES
        size = int(rng.integers(min_size, max_size + 1))
        backbone_types = rng.integers(0, 3, size=size).tolist()
        host = chain_graph(backbone_types)
        # a few long-range contacts, as in folded proteins
        for _ in range(max(size // 4, 1)):
            u, v = rng.integers(0, size, size=2)
            if abs(int(u) - int(v)) > 1 and not host.has_edge(int(u), int(v)):
                host.add_edge(int(u), int(v))
        anchor = int(rng.integers(0, host.n_nodes))
        g, _ = attach_motif(host, class_motif(label), anchor=anchor, seed=rng)
        graphs.append(_with_onehot3(g))
        labels.append(label)
    return GraphDatabase(graphs, labels=labels, name="enzymes")


def _with_onehot3(g: Graph) -> Graph:
    X = np.zeros((g.n_nodes, 3))
    X[np.arange(g.n_nodes), g.node_types] = 1.0
    out = Graph(g.node_types, features=X)
    for u, v, t in g.edges():
        out.add_edge(u, v, t)
    return out


__all__ = ["enzymes", "class_motif", "N_CLASSES", "HELIX", "SHEET", "TURN"]
