"""SYNTHETIC analogue (Table 3): BA base graph with planted motifs.

The paper's SYNTHETIC dataset follows the GNNExplainer recipe:
Barabási–Albert base graphs with HouseMotif vs. CycleMotif generators
deciding the class. Sizes are scaled down from the paper's 0.4M-node
instances; the ``scale`` knob in the registry sweeps them up for the
scalability bench (Fig. 9).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.graphs.database import GraphDatabase
from repro.graphs.generators import attach_motif, barabasi_albert, cycle_motif, house_motif
from repro.graphs.graph import Graph
from repro.utils.rng import RngLike, ensure_rng

HOUSE_CLASS, CYCLE_CLASS = 0, 1
#: degree-bucket one-hot width (standard featureless-graph treatment,
#: cf. GIN's handling of the REDDIT datasets)
DEGREE_FEATURE_DIM = 8


def _with_degree_features(g: Graph) -> Graph:
    X = np.zeros((g.n_nodes, DEGREE_FEATURE_DIM))
    for v in g.nodes():
        X[v, min(g.degree(v), DEGREE_FEATURE_DIM - 1)] = 1.0
    out = Graph(g.node_types, features=X)
    for u, v, t in g.edges():
        out.add_edge(u, v, t)
    return out


def ba_synthetic(
    n_graphs: int = 12,
    base_size: int = 60,
    ba_m: int = 1,
    motifs_per_graph: int = 3,
    seed: RngLike = 0,
) -> GraphDatabase:
    """BA + House/Cycle motif binary classification.

    ``ba_m`` defaults to 1 (tree-like base) so the house motif's
    triangles are unambiguous class evidence — BA bases with m >= 2
    grow their own triangles, which drowns the planted signal for a
    featureless 3-layer GCN.
    """
    rng = ensure_rng(seed)
    graphs: List[Graph] = []
    labels: List[int] = []
    for i in range(n_graphs):
        label = i % 2
        g = barabasi_albert(base_size, ba_m, seed=rng)
        for _ in range(motifs_per_graph):
            motif = house_motif() if label == HOUSE_CLASS else cycle_motif(6)
            anchor = int(rng.integers(0, g.n_nodes))
            g, _ = attach_motif(g, motif, anchor=anchor, seed=rng)
        graphs.append(_with_degree_features(g))
        labels.append(label)
    return GraphDatabase(graphs, labels=labels, name="ba_synthetic")


__all__ = ["ba_synthetic", "HOUSE_CLASS", "CYCLE_CLASS"]
