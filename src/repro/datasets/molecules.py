"""Molecular dataset analogues: MUTAGENICITY and PCQM4Mv2 (Table 3).

Both generators plant class-determining functional groups into random
carbon skeletons, mirroring the real datasets' mechanism (mutagenicity
is driven by toxicophores such as the aromatic nitro group — Kazius et
al. 2005, the source of the real MUTAGENICITY labels).

Atom type ids (shared vocabulary, 14 types like the real MUT):
``C=0, N=1, O=2, H=3, Cl=4, F=5, Br=6, S=7, P=8, I=9, Na=10, K=11,
Li=12, Ca=13``. Edge types: ``0`` single bond, ``1`` double bond.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.graphs.database import GraphDatabase
from repro.graphs.generators import attach_motif, chain_graph, ring_graph
from repro.graphs.graph import Graph
from repro.utils.rng import RngLike, ensure_rng

C, N, O, H, CL, F, BR, S, P, I, NA, K, LI, CA = range(14)
N_ATOM_TYPES = 14

SINGLE, DOUBLE = 0, 1


def nitro_group() -> Graph:
    """NO2 — the classic mutagenicity toxicophore (Fig. 1 / Fig. 10)."""
    g = Graph([N, O, O])
    g.add_edge(0, 1, DOUBLE)
    g.add_edge(0, 2, SINGLE)
    return g


def amine_group() -> Graph:
    """NH2 — aromatic amine, the paper's second mutagen pattern."""
    g = Graph([N, H, H])
    g.add_edge(0, 1, SINGLE)
    g.add_edge(0, 2, SINGLE)
    return g


def methyl_group() -> Graph:
    """CH3 — a benign decoration for the negative class."""
    g = Graph([C, H, H, H])
    g.add_edge(0, 1, SINGLE)
    g.add_edge(0, 2, SINGLE)
    g.add_edge(0, 3, SINGLE)
    return g


def hydroxyl_group() -> Graph:
    """OH-like single oxygen pendant (used by the PCQ classes)."""
    g = Graph([O, H])
    g.add_edge(0, 1, SINGLE)
    return g


def _carbon_skeleton(rng: np.random.Generator, min_size: int, max_size: int) -> Graph:
    """Random chain / ring / ring-with-tail carbon backbone."""
    size = int(rng.integers(min_size, max_size + 1))
    kind = rng.random()
    if kind < 0.4:
        return chain_graph([C] * size)
    if kind < 0.7:
        return ring_graph([C] * max(size, 3))
    ring_size = max(3, size // 2)
    g = ring_graph([C] * ring_size)
    base = g
    tail = chain_graph([C] * max(size - ring_size, 1))
    combined, _ = attach_motif(base, tail, anchor=0, seed=rng)
    return combined


def mutagenicity(
    n_graphs: int = 64,
    min_size: int = 6,
    max_size: int = 14,
    seed: RngLike = 0,
) -> GraphDatabase:
    """MUTAGENICITY analogue: binary, 14 one-hot features.

    Class 1 (mutagen) graphs carry an NO2 or NH2 toxicophore; class 0
    graphs get a benign CH3 decoration (so both classes have pendant
    structure and size alone is uninformative).
    """
    rng = ensure_rng(seed)
    graphs: List[Graph] = []
    labels: List[int] = []
    for i in range(n_graphs):
        label = i % 2
        host = _carbon_skeleton(rng, min_size, max_size)
        anchor = int(rng.integers(0, host.n_nodes))
        if label == 1:
            motif = nitro_group() if rng.random() < 0.6 else amine_group()
        else:
            motif = methyl_group()
        g, _ = attach_motif(host, motif, anchor=anchor, seed=rng)
        graphs.append(_with_onehot(g, N_ATOM_TYPES))
        labels.append(label)
    return GraphDatabase(graphs, labels=labels, name="mutagenicity")


def pcqm4m(
    n_graphs: int = 96,
    min_size: int = 5,
    max_size: int = 10,
    seed: RngLike = 0,
) -> GraphDatabase:
    """PCQM4Mv2 analogue: many small molecules, 9-dim features, 3 classes.

    Classes by functional group: 0 = bare hydrocarbon, 1 = hydroxyl
    (OH), 2 = carbonyl (C=O double bond). Features: one-hot over the
    first 6 atom types plus 3 numeric channels (degree, aromatic-ring
    membership flag, attached-hydrogen count).
    """
    rng = ensure_rng(seed)
    graphs: List[Graph] = []
    labels: List[int] = []
    for i in range(n_graphs):
        label = i % 3
        host = _carbon_skeleton(rng, min_size, max_size)
        anchor = int(rng.integers(0, host.n_nodes))
        if label == 1:
            g, _ = attach_motif(host, hydroxyl_group(), anchor=anchor, seed=rng)
        elif label == 2:
            carbonyl = Graph([C, O])
            carbonyl.add_edge(0, 1, DOUBLE)
            g, _ = attach_motif(host, carbonyl, anchor=anchor, seed=rng)
        else:
            g = host
        graphs.append(_with_pcq_features(g))
        labels.append(label)
    return GraphDatabase(graphs, labels=labels, name="pcqm4m")


def _with_onehot(g: Graph, width: int) -> Graph:
    X = np.zeros((g.n_nodes, width))
    X[np.arange(g.n_nodes), g.node_types] = 1.0
    out = Graph(g.node_types, features=X, directed=g.directed)
    for u, v, t in g.edges():
        out.add_edge(u, v, t)
    return out


def _with_pcq_features(g: Graph) -> Graph:
    """9-dim: one-hot of first 6 types + degree + in-ring flag + H count."""
    n = g.n_nodes
    X = np.zeros((n, 9))
    for v in g.nodes():
        t = g.node_type(v)
        if t < 6:
            X[v, t] = 1.0
        X[v, 6] = g.degree(v) / 4.0
        X[v, 8] = sum(1 for w in g.all_neighbors(v) if g.node_type(w) == H)
    for cycle_nodes in _simple_ring_nodes(g):
        X[cycle_nodes, 7] = 1.0
    out = Graph(g.node_types, features=X, directed=g.directed)
    for u, v, t in g.edges():
        out.add_edge(u, v, t)
    return out


def _simple_ring_nodes(g: Graph) -> List[List[int]]:
    """Nodes on cycles (approximated as nodes with degree >= 2 on a
    cyclic component — exact enough for a feature flag)."""
    cycles = []
    for comp in g.connected_components():
        sub_edges = sum(
            1 for (u, v) in g.edge_types if u in comp and v in comp
        )
        if sub_edges >= len(comp):  # component contains a cycle
            cycles.append([v for v in comp if g.degree(v) >= 2])
    return cycles


__all__ = [
    "mutagenicity",
    "pcqm4m",
    "nitro_group",
    "amine_group",
    "methyl_group",
    "hydroxyl_group",
    "N_ATOM_TYPES",
]
