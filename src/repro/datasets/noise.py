"""Noise injection for robustness studies.

The paper's classifiers are imperfect on real data (the explanations
are built on *predicted* labels); synthetic generators are separable by
construction, so these utilities re-introduce realistic imperfection:

* :func:`with_label_noise` — flip a fraction of ground-truth labels
  (the classifier then trains to an imperfect decision boundary);
* :func:`with_edge_noise` — rewire a fraction of edges per graph
  (motifs survive but topology gets realistic clutter).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.exceptions import DatasetError
from repro.graphs.database import GraphDatabase
from repro.graphs.graph import Graph
from repro.utils.rng import RngLike, ensure_rng


def with_label_noise(
    db: GraphDatabase, fraction: float, seed: RngLike = 0
) -> GraphDatabase:
    """A copy of ``db`` with ``fraction`` of labels flipped uniformly."""
    if not 0.0 <= fraction <= 1.0:
        raise DatasetError(f"fraction must be in [0, 1], got {fraction}")
    if db.labels is None:
        raise DatasetError("database has no labels to perturb")
    rng = ensure_rng(seed)
    classes = sorted(set(db.labels), key=repr)
    if len(classes) < 2 or fraction == 0.0:
        return GraphDatabase(db.graphs, labels=list(db.labels), name=db.name)
    n_flip = int(round(fraction * len(db)))
    flip_at = set(rng.choice(len(db), size=n_flip, replace=False).tolist())
    labels = []
    for i, label in enumerate(db.labels):
        if i in flip_at:
            others = [c for c in classes if c != label]
            labels.append(others[int(rng.integers(0, len(others)))])
        else:
            labels.append(label)
    return GraphDatabase(db.graphs, labels=labels, name=f"{db.name}+labelnoise")


def with_edge_noise(
    db: GraphDatabase, fraction: float, seed: RngLike = 0
) -> GraphDatabase:
    """A copy of ``db`` where each graph has ``fraction`` of its edge
    count added as random extra edges (existing edges are kept, so the
    planted class motifs remain intact as *subgraphs* — though no longer
    necessarily induced)."""
    if not 0.0 <= fraction <= 1.0:
        raise DatasetError(f"fraction must be in [0, 1], got {fraction}")
    rng = ensure_rng(seed)
    graphs: List[Graph] = []
    for g in db.graphs:
        noisy = g.copy()
        target = int(round(fraction * g.n_edges))
        added = 0
        attempts = 0
        n = g.n_nodes
        while added < target and attempts < 20 * max(target, 1) and n >= 2:
            attempts += 1
            u, v = rng.integers(0, n, size=2)
            if u != v and not noisy.has_edge(int(u), int(v)):
                noisy.add_edge(int(u), int(v))
                added += 1
        graphs.append(noisy)
    labels = None if db.labels is None else list(db.labels)
    return GraphDatabase(graphs, labels=labels, name=f"{db.name}+edgenoise")


__all__ = ["with_label_noise", "with_edge_noise"]
