"""ogbn-PRODUCTS analogue (Table 3): co-purchase ego subgraphs.

The real benchmark is one giant Amazon co-purchasing network whose node
classification task the paper converts to graph classification by
sampling ~400 neighborhoods and labelling each with its seed node's
category. We reproduce the pipeline: a stochastic-block-model
co-purchase graph (blocks = product categories), ego subgraphs sampled
around random seeds, 100-dim node features (category signal + noise,
like the real bag-of-words embeddings), label = the seed's block.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.graphs.database import GraphDatabase
from repro.graphs.generators import stochastic_block_model
from repro.graphs.graph import Graph
from repro.utils.rng import RngLike, ensure_rng

N_FEATURES = 100


def products(
    n_subgraphs: int = 24,
    n_blocks: int = 6,
    block_size: int = 30,
    radius: int = 2,
    p_in: float = 0.25,
    p_out: float = 0.01,
    feature_noise: float = 0.3,
    seed: RngLike = 0,
) -> GraphDatabase:
    """PRODUCTS analogue: ego subgraphs of an SBM co-purchase network."""
    rng = ensure_rng(seed)
    base, blocks = stochastic_block_model(
        [block_size] * n_blocks, p_in, p_out, seed=rng
    )
    features = _block_features(blocks, n_blocks, feature_noise, rng)

    graphs: List[Graph] = []
    labels: List[int] = []
    for i in range(n_subgraphs):
        label = i % n_blocks
        members = np.flatnonzero(blocks == label)
        seed_node = int(rng.choice(members))
        hood = sorted(base.k_hop_nodes(seed_node, radius))
        # cap ego size so explanation problems stay tractable
        if len(hood) > 3 * block_size:
            hood = sorted(rng.choice(hood, size=3 * block_size, replace=False))
            hood = sorted(set(hood) | {seed_node})
        sub, ids = base.induced_subgraph(hood)
        ego = Graph(sub.node_types, features=features[ids])
        for u, v, t in sub.edges():
            ego.add_edge(u, v, t)
        graphs.append(ego)
        labels.append(label)
    return GraphDatabase(graphs, labels=labels, name="products")


def _block_features(
    blocks: np.ndarray, n_blocks: int, noise: float, rng: np.random.Generator
) -> np.ndarray:
    """100-dim features: block one-hot in the leading dims + noise tail."""
    n = len(blocks)
    X = rng.normal(0.0, noise, size=(n, N_FEATURES))
    X[np.arange(n), blocks] += 1.0
    return X


__all__ = ["products", "N_FEATURES"]
