"""Model zoo: train-once classifier cache per dataset/scale/seed.

Mirrors §6.1's setup (GCN, three conv layers, max-pool + FC head,
Adam, 80/10/10 split). Trained weights are cached in memory and on
disk (``REPRO_CACHE_DIR`` or ``./.gvex_cache``) so the benches — which
run as separate pytest processes — pay for training once.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.datasets.registry import dataset_info, load_dataset
from repro.gnn.model import GnnClassifier
from repro.gnn.training import LabelEncoder, train_classifier
from repro.graphs.database import GraphDatabase


@dataclass
class TrainedClassifier:
    """Everything the benches need for one dataset."""

    dataset: str
    scale: str
    db: GraphDatabase
    model: GnnClassifier
    encoder: LabelEncoder
    metrics: Dict[str, float]


_MEMORY_CACHE: Dict[Tuple[str, str, int, Tuple[int, ...]], TrainedClassifier] = {}


def cache_dir() -> Path:
    path = Path(os.environ.get("REPRO_CACHE_DIR", ".gvex_cache"))
    path.mkdir(parents=True, exist_ok=True)
    return path


def get_trained(
    dataset: str,
    scale: str = "test",
    seed: int = 0,
    hidden_dims: Tuple[int, ...] = (32, 32, 32),
    max_epochs: int = 150,
    use_disk_cache: bool = True,
) -> TrainedClassifier:
    """Load the dataset and a trained classifier for it (cached)."""
    key = (dataset, scale, seed, tuple(hidden_dims))
    if key in _MEMORY_CACHE:
        return _MEMORY_CACHE[key]

    info = dataset_info(dataset)
    db = load_dataset(dataset, scale=scale, seed=seed)
    encoder = LabelEncoder(db.labels)

    arch = "x".join(str(d) for d in hidden_dims)
    model_path = cache_dir() / f"{dataset}-{scale}-s{seed}-h{arch}.npz"
    if use_disk_cache and model_path.exists():
        model = GnnClassifier.load(model_path)
        trainer_metrics = {"train_accuracy": float("nan")}
        trained = TrainedClassifier(dataset, scale, db, model, encoder, trainer_metrics)
        _MEMORY_CACHE[key] = trained
        return trained

    model = GnnClassifier(
        in_dim=info.n_features,
        n_classes=info.n_classes,
        hidden_dims=hidden_dims,
        conv="gcn",
        readout="max",
        seed=seed,
    )
    model, encoder, metrics = train_classifier(
        db, model, seed=seed, max_epochs=max_epochs, patience=30
    )
    if use_disk_cache:
        model.save(model_path)
    trained = TrainedClassifier(dataset, scale, db, model, encoder, metrics)
    _MEMORY_CACHE[key] = trained
    return trained


def clear_cache(memory: bool = True, disk: bool = False) -> None:
    """Drop cached models (used by tests that need fresh training)."""
    if memory:
        _MEMORY_CACHE.clear()
    if disk:
        for path in cache_dir().glob("*.npz"):
            path.unlink()


__all__ = ["TrainedClassifier", "get_trained", "clear_cache", "cache_dir"]
