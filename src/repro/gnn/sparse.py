"""Large-graph influence backends (§6.2's SYN/PRO optimizations).

For the paper's largest workloads (0.4M-node SYNTHETIC, millions-node
PRODUCTS) the authors "use sparse matrix multiplication and random walk
technique to optimize the computation on large graphs". This module
provides both:

* :func:`sparse_expected_influence` — the expected-Jacobian influence
  ``Q^k`` computed with scipy CSR matmuls. Exact, memory-light for
  sparse graphs, and substantially faster than dense ``matrix_power``
  once ``n`` is in the thousands.
* :func:`montecarlo_expected_influence` — unbiased estimation of
  ``Q^k`` rows by sampling k-step random walks (Avrachenkov et al.
  2007, the PageRank Monte-Carlo technique the paper cites). Error
  decays as ``O(1/sqrt(walks))``; used when even sparse powers are too
  large to materialize.

``influence_matrix``'s ``auto`` dispatch picks dense vs sparse by node
count; Monte Carlo is opt-in (it changes numbers within sampling noise).
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import sparse as sp

from repro.graphs.graph import Graph
from repro.utils.rng import RngLike, ensure_rng

#: switch from dense to sparse expected influence above this node count
SPARSE_THRESHOLD = 512


def sparse_normalized_adjacency(graph: Graph) -> sp.csr_matrix:
    """CSR version of ``D^{-1/2} (A + I) D^{-1/2}`` (symmetrized).

    The edge arrays come from one :func:`edge_index_arrays` pass
    (columnar layout) rather than a Python loop over the edge dict —
    same COO triples, so the assembled matrix is unchanged.
    """
    from repro.graphs.columnar import edge_index_arrays

    n = graph.n_nodes
    u, v, _ = edge_index_arrays(graph)
    diag = np.arange(n, dtype=np.int64)
    rows = np.concatenate([np.stack([u, v], axis=1).ravel(), diag])
    cols = np.concatenate([np.stack([v, u], axis=1).ravel(), diag])
    data = np.ones(rows.size)
    A_hat = sp.csr_matrix((data, (rows, cols)), shape=(n, n))
    # duplicate symmetric entries collapse via >0 thresholding
    A_hat.data = np.minimum(A_hat.data, 1.0)
    deg = np.asarray(A_hat.sum(axis=1)).ravel()
    inv_sqrt = 1.0 / np.sqrt(np.where(deg <= 0, 1.0, deg))
    D = sp.diags(inv_sqrt)
    return (D @ A_hat @ D).tocsr()


def shard_block_adjacency(group, normalized: bool = True) -> sp.csr_matrix:
    """Block-diagonal shard operator from one columnar label group.

    Assembles the whole group's symmetrized adjacency (optionally
    GCN-normalized per block) as a single ``(N, N)`` CSR with
    ``N = group.total_nodes``, read directly off the group's ``"all"``
    CSR arrays — node offsets globalize the graph-local neighbor ids,
    so no per-graph matrix is ever materialized. One sparse matmul
    against this operator advances message passing for every member of
    the shard simultaneously (block-diagonality keeps graphs
    independent), which is how the bench harness runs whole-shard
    sparse influence sweeps.
    """
    n = group.total_nodes
    indptr = group.indptr("all").astype(np.int64, copy=True)
    local = group.indices("all")
    # globalize: entry ranges [edge_offset[i], edge_offset[i+1]) belong
    # to graph i, whose nodes start at node_offset[i]
    eoff = np.asarray([group.edge_bounds(i, "all")[0] for i in range(group.n_graphs)]
                      + [local.size], dtype=np.int64)
    shift = np.repeat(group.node_offset[:-1], np.diff(eoff))
    cols = local + shift
    # append the self-loop of every node, keeping columns sorted: the
    # union CSR has no diagonal entries (self-loops are rejected by
    # Graph.add_edge), so an insertion per row suffices
    A = sp.csr_matrix(
        (np.ones(cols.size), cols, indptr), shape=(n, n)
    ) + sp.identity(n, format="csr")
    A.data = np.minimum(A.data, 1.0)
    if not normalized:
        return A.tocsr()
    deg = np.asarray(A.sum(axis=1)).ravel()
    inv_sqrt = 1.0 / np.sqrt(np.where(deg <= 0, 1.0, deg))
    D = sp.diags(inv_sqrt)
    return (D @ A @ D).tocsr()


def sparse_expected_influence(graph: Graph, k: int) -> np.ndarray:
    """``Q^k`` via sparse multiplication; returned dense (n, n).

    The result is dense by nature (k-hop balls overlap), but every
    intermediate product stays sparse, which is the §6.2 trick.
    """
    if graph.n_nodes == 0:
        return np.zeros((0, 0))
    Q = sparse_normalized_adjacency(graph)
    result: sp.csr_matrix = sp.identity(graph.n_nodes, format="csr")
    for _ in range(max(k, 0)):
        result = (result @ Q).tocsr()
    return np.asarray(result.todense())


def montecarlo_expected_influence(
    graph: Graph,
    k: int,
    walks_per_node: int = 64,
    seed: RngLike = 0,
) -> np.ndarray:
    """Monte-Carlo estimate of the k-step walk distribution per node.

    Simulates ``walks_per_node`` random walks of length ``k`` from every
    node over the row-normalized propagation kernel and returns the
    empirical endpoint distribution — an unbiased estimate of
    ``(rownorm Q)^k``, the classic random-walk influence distribution
    (per-step normalization does not commute with the matrix power, so
    this is the standard walk reading rather than ``rownorm(Q^k)``;
    both are valid influence normalizations and agree on support).
    Error decays as ``O(1/sqrt(walks_per_node))``.
    """
    n = graph.n_nodes
    if n == 0:
        return np.zeros((0, 0))
    rng = ensure_rng(seed)
    Q = sparse_normalized_adjacency(graph).tolil()
    # build per-node transition tables (row-normalized kernel)
    neighbors = []
    probs = []
    for v in range(n):
        cols = np.asarray(Q.rows[v], dtype=np.int64)
        weights = np.asarray(Q.data[v], dtype=np.float64)
        total = weights.sum()
        neighbors.append(cols)
        probs.append(weights / total if total > 0 else weights)

    estimate = np.zeros((n, n))
    for start in range(n):
        endpoints = np.full(walks_per_node, start, dtype=np.int64)
        for _ in range(max(k, 0)):
            for w in range(walks_per_node):
                v = endpoints[w]
                endpoints[w] = rng.choice(neighbors[v], p=probs[v])
        idx, counts = np.unique(endpoints, return_counts=True)
        estimate[start, idx] = counts / walks_per_node
    return estimate


def auto_expected_influence(
    graph: Graph, k: int, threshold: int = SPARSE_THRESHOLD
) -> np.ndarray:
    """Dense for small graphs, sparse matmuls beyond ``threshold``."""
    if graph.n_nodes <= threshold:
        from repro.gnn.propagation import normalized_adjacency, propagation_power

        return propagation_power(normalized_adjacency(graph), k)
    return sparse_expected_influence(graph, k)


__all__ = [
    "sparse_normalized_adjacency",
    "shard_block_adjacency",
    "sparse_expected_influence",
    "montecarlo_expected_influence",
    "auto_expected_influence",
    "SPARSE_THRESHOLD",
]
