"""Optimizers operating on flat lists of numpy parameter arrays.

The paper trains its GCN with Adam (lr=0.001); we implement Adam
(Kingma & Ba, 2015) and plain SGD with momentum from scratch.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.utils.validation import check_non_negative, check_positive
from repro.exceptions import ValidationError


class Optimizer:
    """Base optimizer interface: ``step(params, grads)`` updates in place."""

    def step(self, params: Sequence[np.ndarray], grads: Sequence[np.ndarray]) -> None:
        raise NotImplementedError

    def reset(self) -> None:
        """Clear any internal state (moments, step counter)."""


class Sgd(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, lr: float = 0.01, momentum: float = 0.0) -> None:
        self.lr = check_positive("lr", lr)
        self.momentum = check_non_negative("momentum", momentum)
        self._velocity: List[np.ndarray] = []

    def step(self, params: Sequence[np.ndarray], grads: Sequence[np.ndarray]) -> None:
        if len(params) != len(grads):
            raise ValidationError("params and grads length mismatch")
        if not self._velocity:
            self._velocity = [np.zeros_like(p) for p in params]
        for p, g, v in zip(params, grads, self._velocity):
            v *= self.momentum
            v -= self.lr * g
            p += v

    def reset(self) -> None:
        self._velocity = []


class Adam(Optimizer):
    """Adam optimizer (the paper's training setup uses lr=0.001)."""

    def __init__(
        self,
        lr: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        self.lr = check_positive("lr", lr)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValidationError(f"betas must be in [0, 1), got {beta1}, {beta2}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = check_positive("eps", eps)
        self._m: List[np.ndarray] = []
        self._v: List[np.ndarray] = []
        self._t = 0

    def step(self, params: Sequence[np.ndarray], grads: Sequence[np.ndarray]) -> None:
        if len(params) != len(grads):
            raise ValidationError("params and grads length mismatch")
        if not self._m:
            self._m = [np.zeros_like(p) for p in params]
            self._v = [np.zeros_like(p) for p in params]
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, g, m, v in zip(params, grads, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g * g
            m_hat = m / bias1
            v_hat = v / bias2
            p -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def reset(self) -> None:
        self._m = []
        self._v = []
        self._t = 0


__all__ = ["Optimizer", "Sgd", "Adam"]
