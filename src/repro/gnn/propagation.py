"""Graph propagation operators for message passing (Eq. 1).

The GCN propagation matrix is ``P = D^{-1/2} (A + I) D^{-1/2}`` with
``D`` the degree matrix of ``A + I``. Directed graphs are symmetrized
before normalization (standard practice for spectral-style GNNs; the
direction information stays available to datasets via edge types).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph


def normalized_adjacency(graph: Graph) -> np.ndarray:
    """GCN propagation matrix ``D^{-1/2} (A + I) D^{-1/2}``.

    Isolated nodes keep their self-loop (degree 1), so the matrix is
    well-defined for any graph, including the disconnected remainders
    ``G \\ G_s`` produced by counterfactual checks.
    """
    A = graph.adjacency_matrix()
    if graph.directed:
        A = np.maximum(A, A.T)
    A_hat = A + np.eye(graph.n_nodes)
    deg = A_hat.sum(axis=1)
    inv_sqrt = 1.0 / np.sqrt(deg)
    return A_hat * inv_sqrt[:, None] * inv_sqrt[None, :]


def normalize_dense(A: np.ndarray) -> np.ndarray:
    """Same normalization applied to an arbitrary dense adjacency.

    Used by explainers that perturb adjacency weights (e.g. soft edge
    masks) and need to re-normalize: entries must be non-negative.
    """
    if A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise ValueError(f"adjacency must be square, got {A.shape}")
    A_hat = A + np.eye(A.shape[0])
    deg = A_hat.sum(axis=1)
    deg = np.where(deg <= 0, 1.0, deg)
    inv_sqrt = 1.0 / np.sqrt(deg)
    return A_hat * inv_sqrt[:, None] * inv_sqrt[None, :]


def propagation_power(P: np.ndarray, k: int) -> np.ndarray:
    """``P^k`` — the k-step random-walk/propagation matrix.

    This equals the *expected* input-output Jacobian magnitude of a
    k-layer ReLU GCN up to a constant factor (Xu et al., ICML 2018),
    which cancels under the paper's row normalization (Eq. 4).
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    return np.linalg.matrix_power(P, k)


__all__ = ["normalized_adjacency", "normalize_dense", "propagation_power"]
