"""Graph propagation operators for message passing (Eq. 1).

The GCN propagation matrix is ``P = D^{-1/2} (A + I) D^{-1/2}`` with
``D`` the degree matrix of ``A + I``. Directed graphs are symmetrized
before normalization (standard practice for spectral-style GNNs; the
direction information stays available to datasets via edge types).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.exceptions import ValidationError


def normalized_adjacency(graph: Graph) -> np.ndarray:
    """GCN propagation matrix ``D^{-1/2} (A + I) D^{-1/2}``.

    Isolated nodes keep their self-loop (degree 1), so the matrix is
    well-defined for any graph, including the disconnected remainders
    ``G \\ G_s`` produced by counterfactual checks.
    """
    A = graph.adjacency_matrix()
    if graph.directed:
        A = np.maximum(A, A.T)
    A_hat = A + np.eye(graph.n_nodes)
    deg = A_hat.sum(axis=1)
    inv_sqrt = 1.0 / np.sqrt(deg)
    return A_hat * inv_sqrt[:, None] * inv_sqrt[None, :]


def normalize_dense(A: np.ndarray) -> np.ndarray:
    """Same normalization applied to an arbitrary dense adjacency.

    Used by explainers that perturb adjacency weights (e.g. soft edge
    masks) and need to re-normalize: entries must be non-negative.
    """
    if A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise ValidationError(f"adjacency must be square, got {A.shape}")
    A_hat = A + np.eye(A.shape[0])
    deg = A_hat.sum(axis=1)
    deg = np.where(deg <= 0, 1.0, deg)
    inv_sqrt = 1.0 / np.sqrt(deg)
    return A_hat * inv_sqrt[:, None] * inv_sqrt[None, :]


def propagation_power(P: np.ndarray, k: int) -> np.ndarray:
    """``P^k`` — the k-step random-walk/propagation matrix.

    This equals the *expected* input-output Jacobian magnitude of a
    k-layer ReLU GCN up to a constant factor (Xu et al., ICML 2018),
    which cancels under the paper's row normalization (Eq. 4).
    """
    if k < 0:
        raise ValidationError(f"k must be >= 0, got {k}")
    return np.linalg.matrix_power(P, k)


def power_sequence(P: np.ndarray, k: int) -> "list[np.ndarray]":
    """``[P^1, …, P^k]`` via the forward recursion ``M_j = M_{j-1} · P``.

    The full sequence (not just ``P^k``) is what StreamGVEX's
    incremental ``IncEVerify`` caches: each power is the zero-padded
    anchor the next chunk's rank update extends
    (:func:`extend_power_sequence`). Right-multiplication matches the
    association order of ``np.linalg.matrix_power`` for ``k ≤ 3`` (the
    paper's depths), so ``powers[-1]`` is bit-identical to
    :func:`propagation_power` there.
    """
    if k < 0:
        raise ValidationError(f"k must be >= 0, got {k}")
    if k == 0:
        return []
    powers = [P]
    for _ in range(k - 1):
        powers.append(powers[-1] @ P)
    return powers


def extend_power_sequence(
    prev_powers: "list[np.ndarray]",
    P_new: np.ndarray,
    prev_positions: np.ndarray,
) -> "list[np.ndarray]":
    """Powers of a grown propagation matrix via a factored rank update.

    StreamGVEX's incremental ``IncEVerify`` (§5) needs ``P^1 … P^k`` of
    the *seen-prefix* graph after a chunk of nodes arrives. Rebuilding
    costs ``O(k·m³)``; this routine instead treats the new matrix as a
    low-rank perturbation of the old one and pays ``O(k²·a·m²)`` where
    ``a`` is the number of *affected* rows/columns (arriving nodes plus
    their boundary, whose degrees renormalize).

    Write ``E_j`` for the old power ``P_old^j`` zero-padded into the new
    index space (``prev_positions[i]`` is old node ``i``'s new index —
    arrivals may interleave, so the old block is scattered, not a
    prefix) and ``Δ = P_new − E_1``. Since unchanged entries of the
    propagation matrix are bit-equal under its elementwise construction,
    ``Δ``'s support is confined to affected rows/columns and factors as
    ``U·V`` with rank ``≤ 2a``. The correction ``C_j = P_new^j − E_j``
    then satisfies::

        C_j = E_1·C_{j-1} + Δ·C_{j-1} + Δ·E_{j-1},   C_0 = I_new − pad(I_old)

    which is maintained in factored ``L·R`` form (rank grows by ``2a``
    per step) and materialized once per power. When the growing
    factored rank approaches ``m`` mid-sequence, the routine
    *re-anchors*: it materializes the current power once (the dense
    matrix it was about to produce anyway), resets the correction, and
    computes the remaining powers by the dense recursion ``P^{j+1} =
    P^j · P_new`` from that anchor — so the early low-rank steps keep
    their savings instead of the whole call falling back to
    :func:`power_sequence`. Only when even the *first* step is not
    low-rank (``b + rank >= m``) does the dense rebuild take over from
    the start.

    The output is mathematically equal to ``power_sequence(P_new, k)``;
    floating-point results may differ in the last ulps (see
    docs/streaming.md for why that is acceptable for GVEX's thresholded
    influence relation, and when ``"rebuild"`` mode is required).
    """
    k = len(prev_powers)
    if k == 0:
        return []
    m = P_new.shape[0]
    pos = np.asarray(prev_positions, dtype=np.intp)
    if pos.size != prev_powers[0].shape[0]:
        raise ValidationError(
            f"prev_positions has {pos.size} entries for "
            f"{prev_powers[0].shape[0]} previous nodes"
        )

    # zero-padded anchors E_j = pad(P_old^j)
    anchors = []
    scatter = np.ix_(pos, pos)
    for P_old in prev_powers:
        E = np.zeros((m, m))
        E[scatter] = P_old
        anchors.append(E)

    delta = P_new - anchors[0]
    row_mask = np.any(delta != 0.0, axis=1)
    rows = np.nonzero(row_mask)[0]
    rest = delta.copy()
    rest[rows] = 0.0
    cols = np.nonzero(np.any(rest != 0.0, axis=0))[0]
    rank = rows.size + cols.size

    new_mask = np.ones(m, dtype=bool)
    new_mask[pos] = False
    new_idx = np.nonzero(new_mask)[0]
    b = new_idx.size
    if b + rank >= m:  # not low-rank from step one: dense is cheaper
        return power_sequence(P_new, k)

    # Δ = U·V: changed rows, plus remaining changed columns
    U = np.zeros((m, rank))
    V = np.zeros((rank, m))
    U[rows, np.arange(rows.size)] = 1.0
    V[: rows.size] = delta[rows]
    U[:, rows.size :] = rest[:, cols]
    V[rows.size + np.arange(cols.size), cols] = 1.0

    # C_0 = I_new − pad(I_old): unit columns/rows at the new indices
    L = np.zeros((m, b))
    L[new_idx, np.arange(b)] = 1.0
    R = np.zeros((b, m))
    R[np.arange(b), new_idx] = 1.0

    powers: "list[np.ndarray]" = []
    for j in range(1, k + 1):
        if powers and L.shape[1] + rank >= m:
            # the correction's factored rank is about to reach full
            # rank: re-anchor at the last materialized power and run
            # the remaining steps as the dense recursion (identical to
            # power_sequence's association order)
            for _ in range(j, k + 1):
                powers.append(powers[-1] @ P_new)
            break
        if j == 1:  # V · E_0 = V · pad(I_old): zero the new columns
            VE = np.zeros_like(V)
            VE[:, pos] = V[:, pos]
        else:
            VE = V @ anchors[j - 2]
        L = np.hstack([anchors[0] @ L + U @ (V @ L), U])
        R = np.vstack([R, VE])
        powers.append(anchors[j - 1] + L @ R)
    return powers


__all__ = [
    "normalized_adjacency",
    "normalize_dense",
    "propagation_power",
    "power_sequence",
    "extend_power_sequence",
]
