"""Feature-influence Jacobians (Eq. 3 of the paper).

``I1(v, u) = || E[∂X^k_v / ∂X^0_u] ||_1`` measures how sensitive node
``v``'s final-layer representation is to node ``u``'s input features.

Two modes (``GvexConfig.jacobian``):

* ``"exact"`` — propagates the true Jacobian tensor through the trained
  network using its actual ReLU masks and weights. O(n² · d_hidden ·
  d_in) memory, so it is intended for small graphs; a budget guard
  raises before allocating something pathological.
* ``"expected"`` — the expected Jacobian of a ReLU GCN is proportional
  to the k-step propagation matrix ``P^k`` (Xu et al., ICML 2018,
  Theorem 1). The proportionality constant cancels in the paper's row
  normalization (Eq. 4), so ``I1 := P^k`` is exact *in expectation* and
  costs O(k·n²). This is the default, matching the paper's
  random-walk-based reading of influence.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config import JACOBIAN_EXACT, JACOBIAN_EXPECTED
from repro.exceptions import ModelError
from repro.gnn.model import GnnClassifier
from repro.gnn.propagation import (
    extend_power_sequence,
    power_sequence,
    propagation_power,
)
from repro.graphs.graph import Graph

#: refuse to allocate an exact-Jacobian tensor above this many floats
EXACT_BUDGET_FLOATS = 200_000_000


def influence_matrix(
    model: GnnClassifier,
    graph: Graph,
    mode: str = JACOBIAN_EXPECTED,
) -> np.ndarray:
    """The ``(n, n)`` matrix ``I1[v, u]`` of Eq. 3.

    Row ``v`` holds the influence *of every node u on v*.
    """
    if graph.n_nodes == 0:
        return np.zeros((0, 0))
    if mode == JACOBIAN_EXPECTED:
        return expected_influence(model, graph)
    if mode == JACOBIAN_EXACT:
        return exact_influence(model, graph)
    raise ModelError(f"unknown jacobian mode {mode!r}")


def expected_influence(model: GnnClassifier, graph: Graph) -> np.ndarray:
    """``I1 = Q^k`` — expected Jacobian magnitude up to a constant.

    For GCN aggregation on large graphs this dispatches to sparse
    matmuls (§6.2's big-graph optimization); other aggregation kinds
    (GIN/SAGE/relational) use their model-specific dense matrix.
    """
    if getattr(model, "conv", "gcn") == "gcn":
        from repro.gnn.sparse import SPARSE_THRESHOLD, sparse_expected_influence

        if graph.n_nodes > SPARSE_THRESHOLD:
            return sparse_expected_influence(graph, model.n_layers)
    Q = model.aggregation_matrix(graph)
    return propagation_power(Q, model.n_layers)


def exact_influence(model: GnnClassifier, graph: Graph) -> np.ndarray:
    """Exact per-pair Jacobian L1 norms through the trained network.

    Maintains the tensor ``T[v, a, u, b] = ∂H^l_v[a] / ∂X_u[b]`` layer
    by layer with the real ReLU masks from a forward pass.
    """
    n = graph.n_nodes
    d0 = model.in_dim
    d_max = max(model.hidden_dims)
    if n * n * d_max * d0 > EXACT_BUDGET_FLOATS:
        raise ModelError(
            f"exact Jacobian for n={n}, d={d_max}, d0={d0} exceeds the memory "
            "budget; use the 'expected' mode for graphs this large"
        )
    cache = model.forward_graph(graph)
    Q = cache.Q
    # T starts as identity: dX_v[a]/dX_u[b] = 1 iff v==u, a==b
    T = np.einsum("vu,ab->vaub", np.eye(n), np.eye(d0))
    for i in range(model.n_layers):
        W = model.weights[i]
        mask = model._act_grad(cache.pre_activations[i])  # (n, d_out)
        # aggregate: K[v, c, u, b] = sum_w Q[v, w] T[w, c, u, b]
        K = np.einsum("vw,wcub->vcub", Q, T)
        # mix channels: S[v, a, u, b] = sum_c K[v, c, u, b] W[c, a]
        S = np.einsum("ca,vcub->vaub", W, K)
        if model.conv == "sage":
            S = S + np.einsum("ca,vcub->vaub", model.sage_self_weights[i], T)
        T = mask[:, :, None, None] * S
    return np.abs(T).sum(axis=(1, 3))


def extend_expected_influence(
    model: GnnClassifier,
    graph: Graph,
    prev_powers: "list[np.ndarray]",
    prev_positions: np.ndarray,
    Q: "Optional[np.ndarray]" = None,
) -> "tuple[np.ndarray, list[np.ndarray]]":
    """Expected-mode ``I1`` for a *grown* graph, rank-updating cached powers.

    The incremental ``IncEVerify`` path of StreamGVEX (§5): instead of
    re-deriving ``Q^k`` on the seen prefix after every arriving chunk,
    the cached power sequence of the previous prefix is extended with a
    factored low-rank correction
    (:func:`repro.gnn.propagation.extend_power_sequence`).
    ``prev_positions[i]`` is the new index of previous node ``i``
    (ignored, and may be empty, when ``prev_powers`` is).

    Callers that already built the aggregation matrix pass it as ``Q``
    to avoid a second ``O(m²)`` construction per chunk.

    Returns ``(I1, powers)`` where ``powers`` is the sequence to cache
    for the next chunk. With an empty ``prev_powers`` (first chunk) the
    sequence is built from scratch. Only ``"expected"`` Jacobian mode
    has this incremental structure — exact mode re-derives per chunk
    (see docs/streaming.md).
    """
    if Q is None:
        Q = model.aggregation_matrix(graph)
    if prev_powers:
        powers = extend_power_sequence(prev_powers, Q, prev_positions)
    else:
        powers = power_sequence(Q, model.n_layers)
    if not powers:  # zero-layer degenerate: I1 = Q^0 = I
        return np.eye(graph.n_nodes), powers
    return powers[-1], powers


def normalized_influence(I1: np.ndarray) -> np.ndarray:
    """Eq. 4: ``I2[u, v] = I1(v, u) / Σ_w I1(v, w)``.

    Note the transpose — ``I2`` is indexed ``[source u, target v]`` to
    match the paper's reading "influence score of a node u on v".
    Rows of ``I1`` with zero mass normalize to zero.
    """
    row_sums = I1.sum(axis=1, keepdims=True)
    safe = np.where(row_sums <= 0, 1.0, row_sums)
    return (I1 / safe).T


__all__ = [
    "influence_matrix",
    "expected_influence",
    "exact_influence",
    "extend_expected_influence",
    "normalized_influence",
    "EXACT_BUDGET_FLOATS",
]
