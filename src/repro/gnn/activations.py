"""Activation functions with paired derivatives."""

from __future__ import annotations

import numpy as np
from repro.exceptions import ValidationError


def relu(z: np.ndarray) -> np.ndarray:
    return np.maximum(z, 0.0)


def relu_grad(z: np.ndarray) -> np.ndarray:
    """Derivative of relu evaluated at pre-activation ``z``."""
    return (z > 0).astype(np.float64)


def identity(z: np.ndarray) -> np.ndarray:
    return z


def identity_grad(z: np.ndarray) -> np.ndarray:
    return np.ones_like(z)


ACTIVATIONS = {
    "relu": (relu, relu_grad),
    "identity": (identity, identity_grad),
}


def get_activation(name: str):
    """Return ``(fn, grad_fn)`` for a named activation."""
    try:
        return ACTIVATIONS[name]
    except KeyError:
        raise ValidationError(
            f"unknown activation {name!r}; options: {sorted(ACTIVATIONS)}"
        ) from None


__all__ = ["relu", "relu_grad", "identity", "identity_grad", "get_activation"]
