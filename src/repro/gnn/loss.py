"""Losses for GNN classification."""

from __future__ import annotations

from typing import Tuple

import numpy as np
from repro.exceptions import ValidationError


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def softmax_cross_entropy(logits: np.ndarray, label: int) -> Tuple[float, np.ndarray]:
    """Cross-entropy of one graph's logits against an integer label.

    Returns ``(loss, dlogits)`` where ``dlogits`` is the gradient of the
    loss with respect to the logits (``softmax(logits) - onehot``).
    """
    probs = softmax(logits)
    n_classes = logits.shape[-1]
    if not 0 <= label < n_classes:
        raise ValidationError(f"label {label} out of range for {n_classes} classes")
    loss = -float(np.log(max(probs[label], 1e-12)))
    dlogits = probs.copy()
    dlogits[label] -= 1.0
    return loss, dlogits


__all__ = ["softmax", "softmax_cross_entropy"]
