"""From-scratch numpy GNN classifier (the paper's classifier ``M``).

Implements the message-passing scheme of Eq. (1) with manual
reverse-mode differentiation. The default configuration mirrors §6.1 of
the paper: a GCN with three convolution layers, max-pooling readout,
and a fully connected classification head. GIN- and GraphSAGE-style
convolutions are provided as well since GVEX is model-agnostic and the
paper stresses adaptability "to any GNN employing message-passing".

The backward pass optionally returns gradients with respect to the
input features ``X`` and the aggregation matrix ``Q`` — these feed the
exact Jacobian influence computation (:mod:`repro.gnn.jacobian`) and the
GNNExplainer baseline's soft edge masks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ModelError
from repro.gnn.activations import get_activation
from repro.gnn.loss import softmax, softmax_cross_entropy
from repro.gnn.propagation import normalized_adjacency
from repro.graphs.graph import Graph
from repro.utils.rng import RngLike, ensure_rng

CONV_TYPES = ("gcn", "gin", "sage")
READOUTS = ("max", "mean", "sum")


@dataclass
class ForwardCache:
    """Intermediate values of one forward pass, consumed by backward."""

    X: np.ndarray
    Q: np.ndarray
    pre_activations: List[np.ndarray] = field(default_factory=list)
    hiddens: List[np.ndarray] = field(default_factory=list)  # H_0 .. H_k
    pooled: Optional[np.ndarray] = None
    pool_argmax: Optional[np.ndarray] = None
    logits: Optional[np.ndarray] = None


@dataclass
class BackwardResult:
    """Gradients from one backward pass."""

    param_grads: List[np.ndarray]
    dX: Optional[np.ndarray] = None
    dQ: Optional[np.ndarray] = None


class GnnClassifier:
    """A k-layer message-passing GNN graph classifier.

    Parameters
    ----------
    in_dim:
        Input feature dimensionality (columns of ``X``).
    n_classes:
        Number of output classes.
    hidden_dims:
        Width of each convolution layer; its length is the network depth
        ``k`` (the paper uses three layers of width 128; tests default to
        smaller widths for speed).
    conv:
        ``"gcn"`` (Eq. 1), ``"gin"``, or ``"sage"``.
    readout:
        Graph-level pooling: ``"max"`` (paper default), ``"mean"``, ``"sum"``.
    """

    def __init__(
        self,
        in_dim: int,
        n_classes: int,
        hidden_dims: Sequence[int] = (32, 32, 32),
        conv: str = "gcn",
        readout: str = "max",
        activation: str = "relu",
        gin_eps: float = 0.0,
        seed: RngLike = 0,
    ) -> None:
        if in_dim < 1:
            raise ModelError(f"in_dim must be >= 1, got {in_dim}")
        if n_classes < 2:
            raise ModelError(f"n_classes must be >= 2, got {n_classes}")
        if not hidden_dims:
            raise ModelError("need at least one hidden layer")
        if conv not in CONV_TYPES:
            raise ModelError(f"conv must be one of {CONV_TYPES}, got {conv!r}")
        if readout not in READOUTS:
            raise ModelError(f"readout must be one of {READOUTS}, got {readout!r}")
        self.in_dim = in_dim
        self.n_classes = n_classes
        self.hidden_dims = tuple(int(d) for d in hidden_dims)
        self.conv = conv
        self.readout = readout
        self.activation = activation
        self.gin_eps = float(gin_eps)
        self._act, self._act_grad = get_activation(activation)

        rng = ensure_rng(seed)
        self.weights: List[np.ndarray] = []
        self.biases: List[np.ndarray] = []
        self.sage_self_weights: List[np.ndarray] = []
        dims = [in_dim, *self.hidden_dims]
        for d_in, d_out in zip(dims[:-1], dims[1:]):
            self.weights.append(_glorot(rng, d_in, d_out))
            # small non-zero bias keeps pre-activations off the exact
            # ReLU kink (dead rows otherwise sit at exactly 0)
            self.biases.append(rng.uniform(-0.1, 0.1, size=d_out))
            if conv == "sage":
                self.sage_self_weights.append(_glorot(rng, d_in, d_out))
        self.head_weight = _glorot(rng, self.hidden_dims[-1], n_classes)
        self.head_bias = np.zeros(n_classes)

    # ------------------------------------------------------------------
    # parameter plumbing
    # ------------------------------------------------------------------
    @property
    def n_layers(self) -> int:
        """Depth ``k`` — the number of message-passing layers."""
        return len(self.weights)

    def parameters(self) -> List[np.ndarray]:
        """Flat parameter list in a stable order (shared with gradients)."""
        params: List[np.ndarray] = []
        for i in range(self.n_layers):
            params.append(self.weights[i])
            params.append(self.biases[i])
            if self.conv == "sage":
                params.append(self.sage_self_weights[i])
        params.append(self.head_weight)
        params.append(self.head_bias)
        return params

    def set_parameters(self, values: Sequence[np.ndarray]) -> None:
        current = self.parameters()
        if len(values) != len(current):
            raise ModelError(
                f"expected {len(current)} parameter arrays, got {len(values)}"
            )
        for target, value in zip(current, values):
            if target.shape != value.shape:
                raise ModelError(
                    f"parameter shape mismatch: {target.shape} vs {value.shape}"
                )
            target[...] = value

    def copy_parameters(self) -> List[np.ndarray]:
        return [p.copy() for p in self.parameters()]

    # ------------------------------------------------------------------
    # forward
    # ------------------------------------------------------------------
    def aggregation_matrix(self, graph: Graph) -> np.ndarray:
        """The matrix ``Q`` multiplying node features in each layer."""
        if self.conv == "gcn":
            return normalized_adjacency(graph)
        A = graph.adjacency_matrix()
        if graph.directed:
            A = np.maximum(A, A.T)
        if self.conv == "gin":
            return A + (1.0 + self.gin_eps) * np.eye(graph.n_nodes)
        # sage: row-normalized neighbor mean (self handled separately)
        deg = A.sum(axis=1)
        deg = np.where(deg <= 0, 1.0, deg)
        return A / deg[:, None]

    def features_for(self, graph: Graph) -> np.ndarray:
        """Feature matrix for a graph, validated against ``in_dim``."""
        X = graph.feature_matrix(n_types=self.in_dim)
        if X.shape[1] != self.in_dim:
            raise ModelError(
                f"graph features have width {X.shape[1]}, model expects {self.in_dim}"
            )
        return X

    def forward(self, X: np.ndarray, Q: np.ndarray) -> ForwardCache:
        """Full forward pass from explicit inputs; returns the cache."""
        if X.ndim != 2 or X.shape[1] != self.in_dim:
            raise ModelError(f"X must be (n, {self.in_dim}), got {X.shape}")
        n = X.shape[0]
        if Q.shape != (n, n):
            raise ModelError(f"Q must be ({n}, {n}), got {Q.shape}")
        if n == 0:
            raise ModelError("cannot run forward on an empty graph")
        cache = ForwardCache(X=X, Q=Q)
        H = X
        cache.hiddens.append(H)
        for i in range(self.n_layers):
            Z = Q @ (H @ self.weights[i]) + self.biases[i]
            if self.conv == "sage":
                Z = Z + H @ self.sage_self_weights[i]
            H = self._act(Z)
            cache.pre_activations.append(Z)
            cache.hiddens.append(H)
        if self.readout == "max":
            cache.pool_argmax = H.argmax(axis=0)
            cache.pooled = H.max(axis=0)
        elif self.readout == "mean":
            cache.pooled = H.mean(axis=0)
        else:
            cache.pooled = H.sum(axis=0)
        cache.logits = cache.pooled @ self.head_weight + self.head_bias
        return cache

    def forward_graph(self, graph: Graph) -> ForwardCache:
        return self.forward(self.features_for(graph), self.aggregation_matrix(graph))

    # ------------------------------------------------------------------
    # inference API (what GVEX's EVerify consumes)
    # ------------------------------------------------------------------
    def predict_proba(self, graph: Graph) -> np.ndarray:
        """Class distribution; uniform for the empty graph (M(∅))."""
        if graph.n_nodes == 0:
            return np.full(self.n_classes, 1.0 / self.n_classes)
        cache = self.forward_graph(graph)
        assert cache.logits is not None
        return softmax(cache.logits)

    def predict(self, graph: Graph) -> Optional[int]:
        """Predicted label; ``None`` for the empty graph."""
        if graph.n_nodes == 0:
            return None
        return int(np.argmax(self.predict_proba(graph)))

    def predict_proba_batch(
        self,
        graph: Graph,
        node_subsets: Sequence[Iterable[int]],
        cache: Optional[Dict] = None,
        presorted: bool = False,
    ) -> np.ndarray:
        """Class distributions for many node-induced subgraphs at once.

        Row ``i`` equals ``predict_proba(graph.induced_subgraph(
        node_subsets[i]))`` bit-for-bit (empty subsets get the uniform
        ``M(∅)`` prior), but the whole batch is materialized with one
        fancy-indexing gather per subset size and evaluated with
        stacked matmuls instead of per-subset ``Graph`` construction.
        This is the engine behind ``BatchedGnnVerifier``'s
        frontier-at-a-time cache fills; callers looping over one graph
        pass a ``cache`` dict to reuse the dense gather sources.

        With ``presorted=True``, ``node_subsets`` is a ``(B, k)`` index
        matrix of strictly increasing rows (uniform subset size, e.g.
        from :func:`repro.gnn.batch.extension_index_matrix`) and the
        per-subset normalization pass is skipped — the frontier-reuse
        fast path. Results are identical either way.
        """
        from repro.gnn.batch import batched_subset_probas, presorted_rows_probas

        if presorted:
            return presorted_rows_probas(
                graph,
                np.asarray(node_subsets, dtype=np.intp),
                self.n_classes,
                lambda: self.features_for(graph),
                self._forward_group,
                cache,
            )
        return batched_subset_probas(
            graph,
            node_subsets,
            self.n_classes,
            lambda: self.features_for(graph),
            self._forward_group,
            cache,
        )

    def _forward_group(self, X_b: np.ndarray, A_b: np.ndarray) -> np.ndarray:
        """Stacked forward for one same-size batch: probas per slice.

        ``A_b[i]`` must be the symmetrized 0/1 adjacency of slice ``i``;
        each output row is bit-identical to the serial
        :meth:`predict_proba` of that slice's graph (see
        :mod:`repro.gnn.batch` for the kernel-parity argument).
        """
        from repro.gnn.batch import (
            batched_aggregation,
            rowwise_head,
            stacked_layers,
            stacked_readout,
        )

        Q_b = batched_aggregation(self.conv, self.gin_eps, A_b)
        H = stacked_layers(
            X_b,
            Q_b,
            self.weights,
            self.biases,
            self._act,
            self.sage_self_weights if self.conv == "sage" else None,
        )
        pooled = stacked_readout(H, self.readout)
        return softmax(rowwise_head(pooled, self.head_weight, self.head_bias))

    def predict_proba_db(
        self,
        graphs: Sequence[Graph],
        columnar=None,
        indices: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Class distributions for a whole database in stacked forwards.

        Groups the graphs by node count and runs one stacked
        ``(B, n, ·)`` forward per size group instead of ``|G|`` serial
        passes; row ``i`` is bit-identical to ``predict_proba(
        graphs[i])`` (empty graphs get the uniform ``M(∅)`` prior).

        ``columnar`` (a :class:`~repro.graphs.columnar.ColumnarDatabase`
        or a zero-arg factory returning one) supplies adjacency batches
        scattered straight from the shard's CSR arrays — no per-graph
        dense ``symmetrized_adjacency`` build; ``indices`` locates each
        graph in it (defaults to ``0..len(graphs)-1``). Graphs missing
        from (or stale in) the columnar mirror fall back to the dense
        memo per graph.
        """
        from repro.gnn.batch import scattered_adjacency_batch, symmetrized_adjacency

        graphs = list(graphs)
        out = np.empty((len(graphs), self.n_classes), dtype=np.float64)
        sizes: Dict[int, List[int]] = {}
        for i, g in enumerate(graphs):
            sizes.setdefault(g.n_nodes, []).append(i)
        col = None
        if columnar is not None and any(size > 0 for size in sizes):
            col = columnar() if callable(columnar) else columnar
        for size, rows in sorted(sizes.items()):
            if size == 0:
                out[rows] = 1.0 / self.n_classes
                continue
            X_b = np.stack([self.features_for(graphs[i]) for i in rows])
            slices = None
            if col is not None:
                slices = [
                    col.fresh_slice(
                        indices[i] if indices is not None else i, graphs[i]
                    )
                    for i in rows
                ]
                if any(sl is None for sl in slices):
                    slices = None  # mutated member: dense fallback
            if slices is not None:
                A_b = scattered_adjacency_batch(slices)
            else:
                A_b = np.stack([symmetrized_adjacency(graphs[i]) for i in rows])
            out[rows] = self._forward_group(X_b, A_b)
        return out

    def predict_db(
        self,
        graphs: Sequence[Graph],
        columnar=None,
        indices: Optional[Sequence[int]] = None,
    ) -> List[Optional[int]]:
        """Predicted labels for a whole database (``None`` for empty).

        Same stacked evaluation as :meth:`predict_proba_db`; entry ``i``
        equals ``predict(graphs[i])`` exactly.
        """
        graphs = list(graphs)
        probas = self.predict_proba_db(graphs, columnar=columnar, indices=indices)
        return [
            None if g.n_nodes == 0 else int(np.argmax(probas[i]))
            for i, g in enumerate(graphs)
        ]

    def node_embeddings(self, graph: Graph) -> np.ndarray:
        """Last-layer node representations ``X^k`` (Eq. 6 diversity input)."""
        return self.forward_graph(graph).hiddens[-1]

    # ------------------------------------------------------------------
    # backward
    # ------------------------------------------------------------------
    def backward(
        self,
        cache: ForwardCache,
        dlogits: np.ndarray,
        need_input_grads: bool = False,
    ) -> BackwardResult:
        """Reverse-mode gradients from ``dlogits``.

        Returns parameter gradients aligned with :meth:`parameters`, and
        when ``need_input_grads`` also ``dX`` (input features) and ``dQ``
        (aggregation matrix entries).
        """
        assert cache.pooled is not None and cache.logits is not None
        H_last = cache.hiddens[-1]
        n = H_last.shape[0]

        d_head_w = np.outer(cache.pooled, dlogits)
        d_head_b = dlogits.copy()
        d_pooled = self.head_weight @ dlogits

        dH = np.zeros_like(H_last)
        if self.readout == "max":
            assert cache.pool_argmax is not None
            dH[cache.pool_argmax, np.arange(H_last.shape[1])] = d_pooled
        elif self.readout == "mean":
            dH[:] = d_pooled[None, :] / n
        else:
            dH[:] = d_pooled[None, :]

        layer_w_grads: List[np.ndarray] = [np.empty(0)] * self.n_layers
        layer_b_grads: List[np.ndarray] = [np.empty(0)] * self.n_layers
        sage_grads: List[np.ndarray] = [np.empty(0)] * self.n_layers
        dQ = np.zeros_like(cache.Q) if need_input_grads else None

        for i in range(self.n_layers - 1, -1, -1):
            Z = cache.pre_activations[i]
            H_prev = cache.hiddens[i]
            dZ = dH * self._act_grad(Z)
            M = H_prev @ self.weights[i]  # Z = Q M (+ self term)
            dM = cache.Q.T @ dZ
            layer_w_grads[i] = H_prev.T @ dM
            layer_b_grads[i] = dZ.sum(axis=0)
            dH = dM @ self.weights[i].T
            if self.conv == "sage":
                sage_grads[i] = H_prev.T @ dZ
                dH = dH + dZ @ self.sage_self_weights[i].T
            if dQ is not None:
                dQ += dZ @ M.T

        param_grads: List[np.ndarray] = []
        for i in range(self.n_layers):
            param_grads.append(layer_w_grads[i])
            param_grads.append(layer_b_grads[i])
            if self.conv == "sage":
                param_grads.append(sage_grads[i])
        param_grads.append(d_head_w)
        param_grads.append(d_head_b)
        return BackwardResult(
            param_grads=param_grads,
            dX=dH if need_input_grads else None,
            dQ=dQ,
        )

    def loss_and_grads(
        self, graph: Graph, label: int
    ) -> Tuple[float, List[np.ndarray]]:
        """Cross-entropy loss and parameter gradients for one graph."""
        cache = self.forward_graph(graph)
        assert cache.logits is not None
        loss, dlogits = softmax_cross_entropy(cache.logits, label)
        return loss, self.backward(cache, dlogits).param_grads

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        state = {f"param_{i}": p for i, p in enumerate(self.parameters())}
        return state

    def save(self, path) -> None:
        np.savez(
            path,
            meta=np.array(
                [
                    self.in_dim,
                    self.n_classes,
                    len(self.hidden_dims),
                    *self.hidden_dims,
                ],
                dtype=np.int64,
            ),
            conv=np.array(self.conv),
            readout=np.array(self.readout),
            activation=np.array(self.activation),
            gin_eps=np.array(self.gin_eps),
            **self.state_dict(),
        )

    @classmethod
    def load(cls, path) -> "GnnClassifier":
        data = np.load(path, allow_pickle=False)
        meta = data["meta"]
        depth = int(meta[2])
        model = cls(
            in_dim=int(meta[0]),
            n_classes=int(meta[1]),
            hidden_dims=tuple(int(d) for d in meta[3 : 3 + depth]),
            conv=str(data["conv"]),
            readout=str(data["readout"]),
            activation=str(data["activation"]),
            gin_eps=float(data["gin_eps"]),
        )
        n_params = len(model.parameters())
        model.set_parameters([data[f"param_{i}"] for i in range(n_params)])
        return model

    def __repr__(self) -> str:
        dims = "x".join(str(d) for d in self.hidden_dims)
        return (
            f"<GnnClassifier {self.conv} {self.in_dim}->[{dims}]->"
            f"{self.n_classes} readout={self.readout}>"
        )


def _glorot(rng: np.random.Generator, d_in: int, d_out: int) -> np.ndarray:
    scale = np.sqrt(6.0 / (d_in + d_out))
    return rng.uniform(-scale, scale, size=(d_in, d_out))


__all__ = ["GnnClassifier", "ForwardCache", "BackwardResult", "CONV_TYPES", "READOUTS"]
