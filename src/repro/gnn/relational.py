"""Relational GCN with edge-type-specific weights (paper's future work).

The paper's conclusion names "the impact of edge features" as future
work: molecular bonds (single vs double) carry class signal that a
vanilla GCN — which only sees the adjacency structure — cannot use.
:class:`RelationalGnnClassifier` implements an R-GCN-style layer

    H' = σ( Σ_t Q_t H W_t + H W_self + b )

with one weight matrix per edge type (Q_t = degree-normalized adjacency
restricted to type-t edges) plus a self-loop transform. It exposes the
same inference surface as :class:`~repro.gnn.model.GnnClassifier`
(``predict`` / ``predict_proba`` / ``node_embeddings`` /
``aggregation_matrix`` / ``n_layers``), so every GVEX algorithm and
baseline works on it unchanged — demonstrating the claimed
model-agnosticism.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ModelError
from repro.gnn.activations import get_activation
from repro.gnn.loss import softmax, softmax_cross_entropy
from repro.gnn.model import _glorot
from repro.graphs.graph import Graph
from repro.utils.rng import RngLike, ensure_rng


class RelationalGnnClassifier:
    """Graph classifier with per-edge-type message weights."""

    def __init__(
        self,
        in_dim: int,
        n_classes: int,
        n_edge_types: int = 2,
        hidden_dims: Sequence[int] = (32, 32),
        readout: str = "max",
        activation: str = "relu",
        seed: RngLike = 0,
    ) -> None:
        if in_dim < 1:
            raise ModelError(f"in_dim must be >= 1, got {in_dim}")
        if n_classes < 2:
            raise ModelError(f"n_classes must be >= 2, got {n_classes}")
        if n_edge_types < 1:
            raise ModelError(f"n_edge_types must be >= 1, got {n_edge_types}")
        if readout not in ("max", "mean", "sum"):
            raise ModelError(f"unsupported readout {readout!r}")
        self.in_dim = in_dim
        self.n_classes = n_classes
        self.n_edge_types = n_edge_types
        self.hidden_dims = tuple(int(d) for d in hidden_dims)
        self.readout = readout
        self._act, self._act_grad = get_activation(activation)

        rng = ensure_rng(seed)
        dims = [in_dim, *self.hidden_dims]
        # rel_weights[layer][edge_type], self_weights[layer]
        self.rel_weights: List[List[np.ndarray]] = []
        self.self_weights: List[np.ndarray] = []
        self.biases: List[np.ndarray] = []
        for d_in, d_out in zip(dims[:-1], dims[1:]):
            self.rel_weights.append(
                [_glorot(rng, d_in, d_out) for _ in range(n_edge_types)]
            )
            self.self_weights.append(_glorot(rng, d_in, d_out))
            self.biases.append(rng.uniform(-0.1, 0.1, size=d_out))
        self.head_weight = _glorot(rng, self.hidden_dims[-1], n_classes)
        self.head_bias = np.zeros(n_classes)

    # ------------------------------------------------------------------
    @property
    def n_layers(self) -> int:
        return len(self.self_weights)

    def parameters(self) -> List[np.ndarray]:
        params: List[np.ndarray] = []
        for layer in range(self.n_layers):
            params.extend(self.rel_weights[layer])
            params.append(self.self_weights[layer])
            params.append(self.biases[layer])
        params.append(self.head_weight)
        params.append(self.head_bias)
        return params

    # ------------------------------------------------------------------
    def typed_adjacencies(self, graph: Graph) -> List[np.ndarray]:
        """Row-normalized adjacency per edge type (types >= cap fold into
        the last slot)."""
        n = graph.n_nodes
        mats = [np.zeros((n, n)) for _ in range(self.n_edge_types)]
        for (u, v), t in graph.edge_types.items():
            slot = min(t, self.n_edge_types - 1)
            # symmetric propagation (directed graphs are symmetrized,
            # matching the base GCN's treatment)
            mats[slot][u, v] = 1.0
            mats[slot][v, u] = 1.0
        for A in mats:
            deg = A.sum(axis=1)
            deg = np.where(deg <= 0, 1.0, deg)
            A /= deg[:, None]
        return mats

    def aggregation_matrix(self, graph: Graph) -> np.ndarray:
        """Type-summed propagation matrix (for the influence oracle)."""
        mats = self.typed_adjacencies(graph)
        n = graph.n_nodes
        combined = sum(mats) + np.eye(n)
        deg = combined.sum(axis=1)
        return combined / np.where(deg <= 0, 1.0, deg)[:, None]

    def features_for(self, graph: Graph) -> np.ndarray:
        X = graph.feature_matrix(n_types=self.in_dim)
        if X.shape[1] != self.in_dim:
            raise ModelError(
                f"graph features have width {X.shape[1]}, model expects {self.in_dim}"
            )
        return X

    # ------------------------------------------------------------------
    def forward(self, X: np.ndarray, Qs: Sequence[np.ndarray]):
        """Returns (logits, hiddens, pre_activations, pool_argmax)."""
        H = X
        hiddens = [H]
        pre_acts = []
        for layer in range(self.n_layers):
            Z = H @ self.self_weights[layer] + self.biases[layer]
            for Q, W in zip(Qs, self.rel_weights[layer]):
                Z = Z + Q @ (H @ W)
            H = self._act(Z)
            pre_acts.append(Z)
            hiddens.append(H)
        if self.readout == "max":
            argmax = H.argmax(axis=0)
            pooled = H.max(axis=0)
        elif self.readout == "mean":
            argmax = None
            pooled = H.mean(axis=0)
        else:
            argmax = None
            pooled = H.sum(axis=0)
        logits = pooled @ self.head_weight + self.head_bias
        return logits, hiddens, pre_acts, argmax

    def predict_proba(self, graph: Graph) -> np.ndarray:
        if graph.n_nodes == 0:
            return np.full(self.n_classes, 1.0 / self.n_classes)
        X = self.features_for(graph)
        Qs = self.typed_adjacencies(graph)
        return softmax(self.forward(X, Qs)[0])

    def predict(self, graph: Graph) -> Optional[int]:
        if graph.n_nodes == 0:
            return None
        return int(np.argmax(self.predict_proba(graph)))

    def node_embeddings(self, graph: Graph) -> np.ndarray:
        X = self.features_for(graph)
        Qs = self.typed_adjacencies(graph)
        return self.forward(X, Qs)[1][-1]

    # ------------------------------------------------------------------
    def loss_and_grads(
        self, graph: Graph, label: int
    ) -> Tuple[float, List[np.ndarray]]:
        X = self.features_for(graph)
        Qs = self.typed_adjacencies(graph)
        logits, hiddens, pre_acts, argmax = self.forward(X, Qs)
        loss, dlogits = softmax_cross_entropy(logits, label)

        H_last = hiddens[-1]
        n = H_last.shape[0]
        d_head_w = np.outer(
            H_last.max(axis=0) if self.readout == "max" else (
                H_last.mean(axis=0) if self.readout == "mean" else H_last.sum(axis=0)
            ),
            dlogits,
        )
        d_head_b = dlogits.copy()
        d_pooled = self.head_weight @ dlogits
        dH = np.zeros_like(H_last)
        if self.readout == "max":
            dH[argmax, np.arange(H_last.shape[1])] = d_pooled
        elif self.readout == "mean":
            dH[:] = d_pooled[None, :] / n
        else:
            dH[:] = d_pooled[None, :]

        rel_grads: List[List[np.ndarray]] = [
            [np.empty(0)] * self.n_edge_types for _ in range(self.n_layers)
        ]
        self_grads: List[np.ndarray] = [np.empty(0)] * self.n_layers
        bias_grads: List[np.ndarray] = [np.empty(0)] * self.n_layers
        for layer in range(self.n_layers - 1, -1, -1):
            Z = pre_acts[layer]
            H_prev = hiddens[layer]
            dZ = dH * self._act_grad(Z)
            bias_grads[layer] = dZ.sum(axis=0)
            self_grads[layer] = H_prev.T @ dZ
            dH = dZ @ self.self_weights[layer].T
            for t, (Q, W) in enumerate(zip(Qs, self.rel_weights[layer])):
                dM = Q.T @ dZ
                rel_grads[layer][t] = H_prev.T @ dM
                dH = dH + dM @ W.T

        grads: List[np.ndarray] = []
        for layer in range(self.n_layers):
            grads.extend(rel_grads[layer])
            grads.append(self_grads[layer])
            grads.append(bias_grads[layer])
        grads.append(d_head_w)
        grads.append(d_head_b)
        return loss, grads

    def __repr__(self) -> str:
        dims = "x".join(str(d) for d in self.hidden_dims)
        return (
            f"<RelationalGnnClassifier {self.in_dim}->[{dims}]->"
            f"{self.n_classes} edge_types={self.n_edge_types}>"
        )


__all__ = ["RelationalGnnClassifier"]
