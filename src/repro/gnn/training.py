"""Training loop for the numpy GNN classifier.

Mirrors §6.1: Adam optimizer, cross-entropy objective, 80/10/10
train/val/test split, early stopping on validation accuracy (the paper
trains a fixed 2000 epochs on a GPU; on CPU we keep the best-validation
parameters and stop once converged).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ModelError
from repro.gnn.model import GnnClassifier
from repro.gnn.optim import Adam, Optimizer
from repro.graphs.database import GraphDatabase
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class TrainingHistory:
    """Per-epoch training diagnostics."""

    losses: List[float] = field(default_factory=list)
    train_accuracies: List[float] = field(default_factory=list)
    val_accuracies: List[float] = field(default_factory=list)
    best_epoch: int = -1
    best_val_accuracy: float = 0.0

    @property
    def epochs(self) -> int:
        return len(self.losses)


class LabelEncoder:
    """Maps arbitrary hashable class labels to contiguous ints and back."""

    def __init__(self, labels: Sequence[Hashable]) -> None:
        self.classes: List[Hashable] = sorted(set(labels), key=repr)
        self._index: Dict[Hashable, int] = {c: i for i, c in enumerate(self.classes)}

    def encode(self, label: Hashable) -> int:
        return self._index[label]

    def decode(self, index: int) -> Hashable:
        return self.classes[index]

    def __len__(self) -> int:
        return len(self.classes)


class Trainer:
    """Mini-batch trainer with early stopping.

    Gradients are averaged over each mini-batch of graphs and applied
    with Adam; the best validation-accuracy parameters are restored at
    the end of :meth:`fit`.
    """

    def __init__(
        self,
        model: GnnClassifier,
        optimizer: Optional[Optimizer] = None,
        batch_size: int = 16,
        max_epochs: int = 200,
        patience: int = 25,
        target_loss: float = 0.05,
        seed: RngLike = 0,
    ) -> None:
        if batch_size < 1:
            raise ModelError(f"batch_size must be >= 1, got {batch_size}")
        if max_epochs < 1:
            raise ModelError(f"max_epochs must be >= 1, got {max_epochs}")
        self.model = model
        # paper: Adam(lr=0.001) for 2000 GPU epochs; we default to a 10x
        # higher rate so CPU training converges within tens of epochs
        self.optimizer = optimizer if optimizer is not None else Adam(lr=0.01)
        self.batch_size = batch_size
        self.max_epochs = max_epochs
        self.patience = patience
        # keep sharpening probabilities after accuracy saturates: fidelity
        # metrics (Eqs. 8-9) read probability margins, not just argmax
        self.target_loss = target_loss
        self._rng = ensure_rng(seed)

    # ------------------------------------------------------------------
    def fit(
        self,
        train: GraphDatabase,
        val: Optional[GraphDatabase] = None,
        encoder: Optional[LabelEncoder] = None,
    ) -> TrainingHistory:
        """Train on ``train``; early-stop on ``val`` accuracy if given."""
        if train.labels is None:
            raise ModelError("training database must carry labels")
        if encoder is None:
            encoder = LabelEncoder(train.labels)
        if len(encoder) > self.model.n_classes:
            raise ModelError(
                f"{len(encoder)} classes exceed model n_classes={self.model.n_classes}"
            )
        history = TrainingHistory()
        y = [encoder.encode(l) for l in train.labels]
        indices = np.arange(len(train))
        best_params = self.model.copy_parameters()
        stale = 0

        for epoch in range(self.max_epochs):
            self._rng.shuffle(indices)
            epoch_loss = 0.0
            for start in range(0, len(indices), self.batch_size):
                batch = indices[start : start + self.batch_size]
                epoch_loss += self._train_batch(train, y, batch)
            epoch_loss /= max(len(indices), 1)
            history.losses.append(epoch_loss)
            history.train_accuracies.append(self.evaluate(train, encoder))

            if val is not None and val.labels is not None and len(val) > 0:
                val_acc = self.evaluate(val, encoder)
            else:
                val_acc = history.train_accuracies[-1]
            history.val_accuracies.append(val_acc)

            improved_acc = val_acc > history.best_val_accuracy + 1e-12
            improved_loss = (
                val_acc >= history.best_val_accuracy - 1e-12
                and epoch_loss
                < min(history.losses[:-1], default=float("inf")) - 1e-9
            )
            if improved_acc or improved_loss:
                history.best_val_accuracy = max(history.best_val_accuracy, val_acc)
                history.best_epoch = epoch
                best_params = self.model.copy_parameters()
                stale = 0
            else:
                stale += 1
            converged = val_acc >= 1.0 - 1e-12 and epoch_loss <= self.target_loss
            if converged or stale > self.patience:
                break

        self.model.set_parameters(best_params)
        return history

    def _train_batch(
        self, train: GraphDatabase, y: Sequence[int], batch: np.ndarray
    ) -> float:
        """One optimizer step on a batch; returns summed loss."""
        total_loss = 0.0
        acc_grads: Optional[List[np.ndarray]] = None
        for idx in batch:
            graph = train[int(idx)]
            if graph.n_nodes == 0:
                continue
            loss, grads = self.model.loss_and_grads(graph, y[int(idx)])
            total_loss += loss
            if acc_grads is None:
                acc_grads = [g.copy() for g in grads]
            else:
                for a, g in zip(acc_grads, grads):
                    a += g
        if acc_grads is not None:
            scale = 1.0 / len(batch)
            for g in acc_grads:
                g *= scale
            self.optimizer.step(self.model.parameters(), acc_grads)
        return total_loss

    # ------------------------------------------------------------------
    def evaluate(self, db: GraphDatabase, encoder: LabelEncoder) -> float:
        """Classification accuracy over a labelled database."""
        if db.labels is None:
            raise ModelError("evaluation database must carry labels")
        if len(db) == 0:
            return 0.0
        correct = 0
        for graph, label in zip(db.graphs, db.labels):
            pred = self.model.predict(graph)
            if pred is not None and encoder.decode(pred) == label:
                correct += 1
        return correct / len(db)


def train_classifier(
    db: GraphDatabase,
    model: GnnClassifier,
    fractions: Sequence[float] = (0.8, 0.1, 0.1),
    seed: int = 0,
    **trainer_kwargs,
) -> Tuple[GnnClassifier, LabelEncoder, Dict[str, float]]:
    """Convenience: split, train, and report accuracies.

    Returns ``(model, encoder, metrics)`` with train/val/test accuracy.
    """
    if db.labels is None:
        raise ModelError("database must carry labels")
    encoder = LabelEncoder(db.labels)
    train, val, test = db.split(fractions, seed=seed)
    trainer = Trainer(model, seed=seed, **trainer_kwargs)
    trainer.fit(train, val, encoder=encoder)
    metrics = {
        "train_accuracy": trainer.evaluate(train, encoder),
        "val_accuracy": trainer.evaluate(val, encoder) if len(val) else float("nan"),
        "test_accuracy": trainer.evaluate(test, encoder) if len(test) else float("nan"),
    }
    return model, encoder, metrics


__all__ = ["Trainer", "TrainingHistory", "LabelEncoder", "train_classifier"]
