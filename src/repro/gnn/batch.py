"""Batched (stacked) GNN inference over many node subsets of one graph.

GVEX's greedy explain loop evaluates ``M`` on a frontier of candidate
subsets every round — ``selected ∪ {v}`` for each candidate ``v``, plus
the matching remainders for counterfactual probes. The serial path
builds an induced :class:`~repro.graphs.graph.Graph` per candidate
(Python dict/set churn over every edge) and runs one dense forward per
subset; that is the dominant cost of the explain phase (§6.2's
efficiency discussion). This module instead gathers all same-size
subsets into ``(B, k, ·)`` tensors with one fancy-indexing pass over
the *parent* graph's adjacency/feature matrices and runs the
message-passing layers as stacked matmuls.

Bitwise parity with the serial path is load-bearing: the greedy makes
near-tie comparisons on the returned probabilities, and both verifier
backends must make identical decisions. Two facts make exact parity
possible:

* numpy dispatches a stacked ``(B, k, k) @ (B, k, d)`` matmul to the
  same per-slice BLAS GEMM the 2-D serial path uses, so every layer
  output is bit-identical to the serial forward on the induced
  subgraph;
* the one op whose batched form maps to a *different* BLAS kernel is
  the graph-level classification head (vector @ matrix is GEMV, while
  ``(B, d) @ (d, C)`` is GEMM, and the two may round differently), so
  :func:`rowwise_head` runs it row by row, exactly as the serial path
  does.

``tests/test_verifier_parity.py`` asserts the bitwise equality across
conv types and readouts.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ModelError
from repro.graphs.graph import Graph


def normalize_subsets(
    node_subsets: Iterable[Iterable[int]], n_nodes: int
) -> List[Tuple[int, ...]]:
    """Sorted, deduplicated, validated subsets (the serial key order)."""
    out: List[Tuple[int, ...]] = []
    for subset in node_subsets:
        nodes = tuple(sorted({int(v) for v in subset}))
        if nodes and not (0 <= nodes[0] and nodes[-1] < n_nodes):
            raise ModelError(
                f"subset {nodes} references nodes outside 0..{n_nodes - 1}"
            )
        out.append(nodes)
    return out


def extension_index_matrix(
    base: Iterable[int], candidates: Iterable[int]
) -> np.ndarray:
    """Sorted ``(B, k+1)`` index rows for ``base ∪ {v}``, one per candidate.

    The greedy loops re-verify extension frontiers round after round —
    every row shares the same sorted ``base``, differing in one spliced
    column. This derives the whole matrix from that structure with one
    vectorized ``searchsorted`` instead of per-subset Python
    ``sorted(set(...))`` churn (the normalization pass that dominated
    frontier setup); rows are bit-identical to
    :func:`normalize_subsets` output, so downstream gathers match the
    serial path exactly. Splicing into the *previous* round's gathered
    ``(B, k, ·)`` tensors instead was evaluated and rejected: gathering
    from the parent's cached ``X``/``A`` is the same memcpy volume as
    copying the old tensors, so rebuilding from the index matrix is
    never slower.

    ``base`` must not contain any candidate (callers filter first).
    """
    base_arr = np.asarray(sorted(int(v) for v in base), dtype=np.intp)
    cand = np.asarray([int(v) for v in candidates], dtype=np.intp)
    k, n_cand = base_arr.size, cand.size
    if n_cand == 0:
        return np.empty((0, k + 1), dtype=np.intp)
    pos = np.searchsorted(base_arr, cand)
    if k == 0:
        return cand[:, None].copy()
    cols = np.arange(k + 1)[None, :]
    src = cols - (cols > pos[:, None])
    idx = base_arr[np.clip(src, 0, k - 1)]
    idx[np.arange(n_cand), pos] = cand
    return idx


def group_by_size(subsets: Sequence[Tuple[int, ...]]) -> Dict[int, List[int]]:
    """Indices of ``subsets`` grouped by subset size (one batch each)."""
    groups: Dict[int, List[int]] = {}
    for i, subset in enumerate(subsets):
        groups.setdefault(len(subset), []).append(i)
    return groups


def symmetrized_adjacency(graph: Graph) -> np.ndarray:
    """Dense adjacency, symmetrized exactly as the serial forward does.

    Slicing the parent's symmetrized adjacency equals symmetrizing the
    induced subgraph's adjacency (elementwise max commutes with taking
    a principal submatrix), so per-subset aggregation matrices built
    from these slices are bit-identical to the serial ones.

    Memoized on the graph (``Graph._sym_adj``, invalidated by
    ``add_edge`` like the content key) so repeated verifier launches
    against the same host stop rebuilding the n×n array. The memo is
    marked read-only — every consumer gathers from it with fancy
    indexing, which copies.
    """
    A = graph._sym_adj
    if A is None:
        A = graph.adjacency_matrix()
        if graph.directed:
            A = np.maximum(A, A.T)
        A.setflags(write=False)
        graph._sym_adj = A
    return A


def scattered_adjacency_batch(slices) -> np.ndarray:
    """``(B, n, n)`` symmetrized adjacency stack from columnar slices.

    Each element of ``slices`` is a same-sized
    :class:`~repro.graphs.columnar.GraphSlice`; the union-direction
    (``"all"``) CSR of a slice lists exactly the nonzeros of
    ``max(A, A.T)``, so one fancy-index assignment over the
    concatenated ``(batch, row, col)`` triples reproduces
    :func:`symmetrized_adjacency` of every member bit-for-bit (0/1
    entries are exact in float64) without materializing per-graph
    dense matrices first.
    """
    B = len(slices)
    if B == 0:
        return np.empty((0, 0, 0), dtype=np.float64)
    n = slices[0].n
    A_b = np.zeros((B, n, n), dtype=np.float64)
    if n == 0:
        return A_b
    rows = [sl.row_ids("all") for sl in slices]
    cols = [sl.indices("all") for sl in slices]
    batch = np.repeat(
        np.arange(B, dtype=np.intp), [r.size for r in rows]
    )
    A_b[batch, np.concatenate(rows), np.concatenate(cols)] = 1.0
    return A_b


def gather_subset_batch(
    A_sym: np.ndarray,
    X_full: np.ndarray,
    subsets: Sequence[Tuple[int, ...]],
) -> Tuple[np.ndarray, np.ndarray]:
    """``(X_b, A_b)`` tensors for a group of same-size subsets.

    ``X_b`` is ``(B, k, d)`` — each subset's feature rows; ``A_b`` is
    ``(B, k, k)`` — each subset's induced (symmetrized) adjacency.
    """
    idx = np.asarray(subsets, dtype=np.intp)
    if idx.ndim != 2:
        raise ModelError("all subsets in one batch must have the same size")
    return X_full[idx], A_sym[idx[:, :, None], idx[:, None, :]]


def batched_aggregation(conv: str, gin_eps: float, A_b: np.ndarray) -> np.ndarray:
    """Per-subset aggregation matrices ``Q_b`` for one stacked batch.

    Mirrors :meth:`GnnClassifier.aggregation_matrix` (and
    ``normalized_adjacency`` for GCN) operation-for-operation so each
    ``Q_b[i]`` is bit-identical to the serial matrix of the induced
    subgraph.
    """
    k = A_b.shape[1]
    eye = np.eye(k)
    if conv == "gcn":
        A_hat = A_b + eye
        deg = A_hat.sum(axis=2)
        inv_sqrt = 1.0 / np.sqrt(deg)
        return A_hat * inv_sqrt[:, :, None] * inv_sqrt[:, None, :]
    if conv == "gin":
        return A_b + (1.0 + gin_eps) * eye
    # sage: row-normalized neighbor mean (self handled by the layer)
    deg = A_b.sum(axis=2)
    deg = np.where(deg <= 0, 1.0, deg)
    return A_b / deg[:, :, None]


def stacked_layers(
    X_b: np.ndarray,
    Q_b: np.ndarray,
    weights: Sequence[np.ndarray],
    biases: Sequence[np.ndarray],
    act,
    sage_self_weights: Optional[Sequence[np.ndarray]] = None,
) -> np.ndarray:
    """Run the message-passing layers on a stacked batch; returns ``H_k``."""
    H = X_b
    for i, (W, b) in enumerate(zip(weights, biases)):
        Z = Q_b @ (H @ W) + b
        if sage_self_weights is not None:
            Z = Z + H @ sage_self_weights[i]
        H = act(Z)
    return H


def stacked_readout(H: np.ndarray, readout: str) -> np.ndarray:
    """Graph-level pooling over the node axis of a ``(B, k, d)`` batch."""
    if readout == "max":
        return H.max(axis=1)
    if readout == "mean":
        return H.mean(axis=1)
    return H.sum(axis=1)


def batched_subset_probas(
    graph: Graph,
    node_subsets: Iterable[Iterable[int]],
    n_classes: int,
    features_fn,
    forward_group,
    cache: Optional[dict] = None,
) -> np.ndarray:
    """Shared driver for subset-batched inference.

    Normalizes and validates the subsets, groups them by size, gathers
    each group into stacked tensors, and delegates the model-specific
    forward to ``forward_group(X_b, A_b) -> (B, n_classes)``. Empty
    subsets get the uniform ``M(∅)`` prior without inference.

    ``features_fn()`` supplies the parent graph's validated feature
    matrix. Passing the same ``cache`` dict across calls reuses the
    dense feature/adjacency gather sources — they are immutable per
    graph, and rebuilding the O(n²) adjacency every prefetch would eat
    the batching win on large graphs.
    """
    subsets = normalize_subsets(node_subsets, graph.n_nodes)
    out = np.empty((len(subsets), n_classes), dtype=np.float64)
    if not subsets:
        return out
    X_full: Optional[np.ndarray] = None
    A_sym: Optional[np.ndarray] = None
    for size, rows in sorted(group_by_size(subsets).items()):
        if size == 0:
            out[rows] = 1.0 / n_classes
            continue
        if X_full is None:
            if cache is not None and "X" in cache:
                X_full, A_sym = cache["X"], cache["A"]
            else:
                X_full = features_fn()
                A_sym = symmetrized_adjacency(graph)
                if cache is not None:
                    cache["X"], cache["A"] = X_full, A_sym
        assert A_sym is not None
        X_b, A_b = gather_subset_batch(A_sym, X_full, [subsets[i] for i in rows])
        out[rows] = forward_group(X_b, A_b)
    return out


def presorted_rows_probas(
    graph: Graph,
    idx: np.ndarray,
    n_classes: int,
    features_fn,
    forward_group,
    cache: Optional[dict] = None,
) -> np.ndarray:
    """:func:`batched_subset_probas` for a pre-sorted uniform-size frontier.

    ``idx`` is a ``(B, k)`` matrix of strictly increasing node rows
    (e.g. from :func:`extension_index_matrix`). Skips the per-subset
    normalization pass — the frontier-reuse hot path — while producing
    the exact tensors :func:`gather_subset_batch` would: the gathers
    are the same fancy-indexing expressions, so results stay
    bit-identical to the one-subset-at-a-time schedule.
    """
    idx = np.asarray(idx, dtype=np.intp)
    if idx.ndim != 2:
        raise ModelError(f"index matrix must be 2-D, got shape {idx.shape}")
    n_rows, k = idx.shape
    if k == 0:
        return np.full((n_rows, n_classes), 1.0 / n_classes)
    if n_rows == 0:
        return np.empty((0, n_classes), dtype=np.float64)
    if idx.min() < 0 or idx.max() >= graph.n_nodes:
        raise ModelError(
            f"index matrix references nodes outside 0..{graph.n_nodes - 1}"
        )
    if k > 1 and not (np.diff(idx, axis=1) > 0).all():
        raise ModelError("index matrix rows must be strictly increasing")
    if cache is not None and "X" in cache:
        X_full, A_sym = cache["X"], cache["A"]
    else:
        X_full = features_fn()
        A_sym = symmetrized_adjacency(graph)
        if cache is not None:
            cache["X"], cache["A"] = X_full, A_sym
    X_b = X_full[idx]
    A_b = A_sym[idx[:, :, None], idx[:, None, :]]
    return forward_group(X_b, A_b)


def rowwise_head(
    pooled: np.ndarray, head_weight: np.ndarray, head_bias: np.ndarray
) -> np.ndarray:
    """Classification head applied one row at a time.

    The serial path computes ``pooled @ W + b`` with a 1-D ``pooled``
    (a GEMV); batching it as ``(B, d) @ (d, C)`` selects a GEMM kernel
    whose accumulation order may differ in the last ulp. Looping keeps
    the head bit-identical; ``B`` is frontier-sized, so the loop is
    negligible next to the layer matmuls.
    """
    logits = np.empty((pooled.shape[0], head_weight.shape[1]), dtype=np.float64)
    for i in range(pooled.shape[0]):
        logits[i] = pooled[i] @ head_weight + head_bias
    return logits


__all__ = [
    "normalize_subsets",
    "group_by_size",
    "symmetrized_adjacency",
    "scattered_adjacency_batch",
    "extension_index_matrix",
    "gather_subset_batch",
    "batched_aggregation",
    "batched_subset_probas",
    "presorted_rows_probas",
    "stacked_layers",
    "stacked_readout",
    "rowwise_head",
]
