"""Node-level GNN classifier (the paper's NC task, Table 1).

Same message-passing stack as :class:`~repro.gnn.model.GnnClassifier`
but without graph readout: the dense head is applied per node, giving
one label per node. Used by :mod:`repro.core.node_explain` to exercise
GVEX on node classification.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ModelError
from repro.gnn.activations import get_activation
from repro.gnn.loss import softmax
from repro.gnn.model import _glorot
from repro.gnn.optim import Adam, Optimizer
from repro.gnn.propagation import normalized_adjacency
from repro.graphs.graph import Graph
from repro.utils.rng import RngLike, ensure_rng


class NodeGnnClassifier:
    """A k-layer GCN that classifies every node of a graph."""

    def __init__(
        self,
        in_dim: int,
        n_classes: int,
        hidden_dims: Sequence[int] = (32, 32),
        activation: str = "relu",
        seed: RngLike = 0,
    ) -> None:
        if in_dim < 1:
            raise ModelError(f"in_dim must be >= 1, got {in_dim}")
        if n_classes < 2:
            raise ModelError(f"n_classes must be >= 2, got {n_classes}")
        if not hidden_dims:
            raise ModelError("need at least one hidden layer")
        self.in_dim = in_dim
        self.n_classes = n_classes
        self.hidden_dims = tuple(int(d) for d in hidden_dims)
        self._act, self._act_grad = get_activation(activation)

        rng = ensure_rng(seed)
        self.weights: List[np.ndarray] = []
        self.biases: List[np.ndarray] = []
        dims = [in_dim, *self.hidden_dims]
        for d_in, d_out in zip(dims[:-1], dims[1:]):
            self.weights.append(_glorot(rng, d_in, d_out))
            self.biases.append(rng.uniform(-0.1, 0.1, size=d_out))
        self.head_weight = _glorot(rng, self.hidden_dims[-1], n_classes)
        self.head_bias = np.zeros(n_classes)

    # ------------------------------------------------------------------
    @property
    def n_layers(self) -> int:
        return len(self.weights)

    def parameters(self) -> List[np.ndarray]:
        params: List[np.ndarray] = []
        for w, b in zip(self.weights, self.biases):
            params.append(w)
            params.append(b)
        params.append(self.head_weight)
        params.append(self.head_bias)
        return params

    def aggregation_matrix(self, graph: Graph) -> np.ndarray:
        return normalized_adjacency(graph)

    def features_for(self, graph: Graph) -> np.ndarray:
        X = graph.feature_matrix(n_types=self.in_dim)
        if X.shape[1] != self.in_dim:
            raise ModelError(
                f"graph features have width {X.shape[1]}, model expects {self.in_dim}"
            )
        return X

    # ------------------------------------------------------------------
    def forward(self, X: np.ndarray, Q: np.ndarray):
        """Returns ``(logits (n, C), hiddens, pre_activations)``."""
        H = X
        hiddens = [H]
        pre_acts = []
        for W, b in zip(self.weights, self.biases):
            Z = Q @ (H @ W) + b
            H = self._act(Z)
            pre_acts.append(Z)
            hiddens.append(H)
        logits = H @ self.head_weight + self.head_bias
        return logits, hiddens, pre_acts

    def logits(self, graph: Graph) -> np.ndarray:
        X = self.features_for(graph)
        Q = self.aggregation_matrix(graph)
        return self.forward(X, Q)[0]

    def predict_nodes(self, graph: Graph) -> np.ndarray:
        """Predicted label per node."""
        if graph.n_nodes == 0:
            return np.zeros(0, dtype=np.int64)
        return self.logits(graph).argmax(axis=1)

    def predict_proba_nodes(self, graph: Graph) -> np.ndarray:
        return softmax(self.logits(graph))

    def node_embeddings(self, graph: Graph) -> np.ndarray:
        """Last-layer node representations."""
        X = self.features_for(graph)
        Q = self.aggregation_matrix(graph)
        return self.forward(X, Q)[1][-1]

    # ------------------------------------------------------------------
    def loss_and_grads(
        self,
        graph: Graph,
        labels: Sequence[int],
        mask: Optional[np.ndarray] = None,
    ) -> Tuple[float, List[np.ndarray]]:
        """Mean masked cross-entropy and parameter gradients."""
        X = self.features_for(graph)
        Q = self.aggregation_matrix(graph)
        logits, hiddens, pre_acts = self.forward(X, Q)
        n = X.shape[0]
        labels_arr = np.asarray(labels, dtype=np.int64)
        if labels_arr.shape != (n,):
            raise ModelError(f"labels must have shape ({n},)")
        if mask is None:
            mask = np.ones(n, dtype=bool)
        count = max(int(mask.sum()), 1)

        probs = softmax(logits)
        picked = probs[np.arange(n), labels_arr]
        loss = float(-np.log(np.maximum(picked[mask], 1e-12)).mean())
        dlogits = probs.copy()
        dlogits[np.arange(n), labels_arr] -= 1.0
        dlogits[~mask] = 0.0
        dlogits /= count

        H_last = hiddens[-1]
        d_head_w = H_last.T @ dlogits
        d_head_b = dlogits.sum(axis=0)
        dH = dlogits @ self.head_weight.T

        w_grads: List[np.ndarray] = [np.empty(0)] * self.n_layers
        b_grads: List[np.ndarray] = [np.empty(0)] * self.n_layers
        for i in range(self.n_layers - 1, -1, -1):
            Z = pre_acts[i]
            H_prev = hiddens[i]
            dZ = dH * self._act_grad(Z)
            dM = Q.T @ dZ
            w_grads[i] = H_prev.T @ dM
            b_grads[i] = dZ.sum(axis=0)
            dH = dM @ self.weights[i].T

        grads: List[np.ndarray] = []
        for gw, gb in zip(w_grads, b_grads):
            grads.append(gw)
            grads.append(gb)
        grads.append(d_head_w)
        grads.append(d_head_b)
        return loss, grads

    def fit(
        self,
        graph: Graph,
        labels: Sequence[int],
        mask: Optional[np.ndarray] = None,
        epochs: int = 150,
        optimizer: Optional[Optimizer] = None,
    ) -> List[float]:
        """Train on one graph's node labels; returns the loss curve."""
        optimizer = optimizer if optimizer is not None else Adam(lr=0.01)
        losses = []
        for _ in range(epochs):
            loss, grads = self.loss_and_grads(graph, labels, mask)
            optimizer.step(self.parameters(), grads)
            losses.append(loss)
            if loss < 0.02:
                break
        return losses

    def accuracy(
        self,
        graph: Graph,
        labels: Sequence[int],
        mask: Optional[np.ndarray] = None,
    ) -> float:
        preds = self.predict_nodes(graph)
        labels_arr = np.asarray(labels)
        if mask is None:
            mask = np.ones(len(labels_arr), dtype=bool)
        if not mask.any():
            return 0.0
        return float((preds[mask] == labels_arr[mask]).mean())

    def __repr__(self) -> str:
        dims = "x".join(str(d) for d in self.hidden_dims)
        return f"<NodeGnnClassifier {self.in_dim}->[{dims}]->{self.n_classes}>"


__all__ = ["NodeGnnClassifier"]
