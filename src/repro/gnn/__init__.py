"""GNN substrate: numpy message-passing classifiers, training, Jacobians."""

from repro.gnn.jacobian import (
    exact_influence,
    expected_influence,
    influence_matrix,
    normalized_influence,
)
from repro.gnn.batch import scattered_adjacency_batch, symmetrized_adjacency
from repro.gnn.loss import softmax, softmax_cross_entropy
from repro.gnn.model import GnnClassifier
from repro.gnn.node_model import NodeGnnClassifier
from repro.gnn.sparse import shard_block_adjacency, sparse_normalized_adjacency
from repro.gnn.optim import Adam, Sgd
from repro.gnn.relational import RelationalGnnClassifier
from repro.gnn.propagation import normalized_adjacency, propagation_power
from repro.gnn.training import LabelEncoder, Trainer, TrainingHistory, train_classifier

__all__ = [
    "GnnClassifier",
    "NodeGnnClassifier",
    "RelationalGnnClassifier",
    "Trainer",
    "TrainingHistory",
    "LabelEncoder",
    "train_classifier",
    "Adam",
    "Sgd",
    "softmax",
    "softmax_cross_entropy",
    "normalized_adjacency",
    "propagation_power",
    "symmetrized_adjacency",
    "scattered_adjacency_batch",
    "sparse_normalized_adjacency",
    "shard_block_adjacency",
    "influence_matrix",
    "expected_influence",
    "exact_influence",
    "normalized_influence",
]
