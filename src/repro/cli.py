"""Command-line interface — a thin shell over :mod:`repro.api`.

Everything a downstream user needs without writing Python::

    python -m repro.cli capabilities                 # Table 1
    python -m repro.cli datasets --scale test        # Table 3
    python -m repro.cli train --dataset mutagenicity --out model.npz
    python -m repro.cli explain --dataset mutagenicity --model model.npz \\
        --method gvex-approx --upper 6 --out views.json
    python -m repro.cli query --views views.json --dataset mutagenicity \\
        --pattern '{"node_types": [1, 2], "edges": [[0, 1, 0]]}'
    python -m repro.cli serve --dataset mutagenicity --views views.json \\
        --port 8080

Every subcommand drives the same :class:`repro.api.ExplanationService`
facade the examples, benchmarks, and HTTP layer use; ``--method``
accepts any name or alias from the explainer registry (``gvex-approx``,
``stream``, ``SX``, ...). The supported surface is documented in
``docs/api.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, Optional, Sequence

from repro.api import (
    DEFAULT_TENANT,
    ExplanationService,
    Q,
    TenantRegistry,
    TenantSpec,
    create_server,
    explainer_names,
    pattern_from_spec,
)
from repro.api.server import DEFAULT_HOST, DEFAULT_PORT
from repro.config import (
    BACKEND_BATCHED,
    MATCH_FAST,
    MATCHING_BACKENDS,
    STREAM_INC_MODES,
    STREAM_INCREMENTAL,
    VERIFIER_BACKENDS,
    GvexConfig,
)
from repro.datasets.registry import DATASETS
from repro.datasets.statistics import statistics_table
from repro.graphs.pattern import Pattern
from repro.metrics.capability import capability_table

#: exposed for tests that need to discover a ``serve --port 0`` binding
_SERVE_STATE: Dict[str, object] = {}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GVEX: view-based explanations for GNNs (SIGMOD 2024)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("capabilities", help="print the Table 1 capability matrix")

    p_data = sub.add_parser("datasets", help="print Table 3 dataset statistics")
    p_data.add_argument("--scale", default="test", help="test | bench | large")
    p_data.add_argument("--seed", type=int, default=0)

    p_train = sub.add_parser("train", help="train a GCN classifier on a dataset")
    _add_dataset_args(p_train)
    p_train.add_argument("--out", required=True, help="output .npz model path")
    p_train.add_argument("--hidden", type=int, nargs="+", default=[32, 32, 32])
    p_train.add_argument("--epochs", type=int, default=150)

    p_explain = sub.add_parser("explain", help="generate explanation views")
    _add_dataset_args(p_explain)
    p_explain.add_argument("--model", help=".npz model (default: train fresh)")
    p_explain.add_argument(
        "--method",
        default="gvex-approx",
        type=str.lower,  # registry lookups are case-insensitive (SX == sx)
        choices=explainer_names(include_aliases=True),
        metavar="METHOD",
        help="registry name or alias (gvex-approx, stream, SX, ...); "
        "'approx' and 'stream' remain as aliases of the GVEX algorithms",
    )
    p_explain.add_argument("--theta", type=float, default=0.08)
    p_explain.add_argument("--radius", type=float, default=0.3)
    p_explain.add_argument("--gamma", type=float, default=0.5)
    p_explain.add_argument("--lower", type=int, default=0)
    p_explain.add_argument("--upper", type=int, default=6)
    p_explain.add_argument(
        "--backend",
        choices=list(VERIFIER_BACKENDS),
        default=BACKEND_BATCHED,
        help="EVerify scheduling: batched (default) or the serial reference; "
        "both produce identical views (see docs/verification.md)",
    )
    p_explain.add_argument(
        "--matching-backend",
        choices=list(MATCHING_BACKENDS),
        default=MATCH_FAST,
        help="PMatch backend: fast (default; bitset contexts + plan "
        "cache) or the pure-Python reference; both produce identical "
        "views (see docs/matching.md)",
    )
    p_explain.add_argument(
        "--stream-inc",
        choices=list(STREAM_INC_MODES),
        default=STREAM_INCREMENTAL,
        help="IncEVerify schedule for --method stream: extend persistent "
        "influence/diversity accumulators per chunk (incremental, default) "
        "or re-derive the oracle on the seen prefix (rebuild); both select "
        "identical views (see docs/streaming.md)",
    )
    p_explain.add_argument(
        "--labels", type=int, nargs="*", help="labels of interest (default: all)"
    )
    p_explain.add_argument(
        "--processes",
        type=int,
        default=1,
        help="fork this many warm-state workers for the explanation "
        "phase (repro.runtime fork-pool executor, §A.7)",
    )
    p_explain.add_argument(
        "--shards",
        type=int,
        default=1,
        help="replica-shard the database N ways and merge partial views "
        "(repro.runtime sharded executor; composes with --processes)",
    )
    p_explain.add_argument(
        "--shard-stats",
        default=None,
        help="path to a results/runtime_scaling.json-style stats file; "
        "observed per-shard wall-clock feeds back into shard sizing "
        "(adaptive rebalancing of skewed label groups)",
    )
    p_explain.add_argument("--out", required=True, help="output views .json path")

    p_query = sub.add_parser("query", help="query saved explanation views")
    _add_dataset_args(p_query)
    p_query.add_argument("--views", required=True, help="views .json path")
    p_query.add_argument(
        "--pattern",
        required=True,
        help='pattern as JSON: {"node_types": [...], "edges": [[u, v, type]...]} '
        "or a path to such a file",
    )
    p_query.add_argument(
        "--scope",
        choices=["explanations", "graphs"],
        default="explanations",
        help="match against explanation subgraphs or full source graphs",
    )
    p_query.add_argument("--label", type=int, help="restrict to one label group")

    p_serve = sub.add_parser(
        "serve", help="serve explain + query over JSON/HTTP (stdlib)"
    )
    _add_dataset_args(p_serve)
    p_serve.add_argument("--model", help=".npz model to preload")
    p_serve.add_argument("--views", help="views .json to preload")
    p_serve.add_argument("--host", default=DEFAULT_HOST)
    p_serve.add_argument("--port", type=int, default=DEFAULT_PORT,
                         help="TCP port (0 picks a free one)")
    p_serve.add_argument(
        "--max-requests",
        type=int,
        default=0,
        help="exit after N requests (0 = serve forever); used by tests",
    )
    p_serve.add_argument(
        "--queue-depth",
        type=int,
        default=8,
        help="bounded explain work queue capacity; submissions past it "
        "get 503 backpressure (see docs/runtime.md)",
    )
    p_serve.add_argument(
        "--auth-token",
        default=None,
        help="require 'Authorization: Bearer <token>' on POST routes "
        "(constant-time compare; GET routes stay open)",
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="explain worker threads draining the queue; queued explains "
        "for distinct tenants run concurrently",
    )
    p_serve.add_argument(
        "--tenant",
        action="append",
        default=[],
        metavar="NAME=DATASET[:SCALE]",
        help="register an extra serving tenant (repeatable); it "
        "materializes lazily on first request, addressed via the "
        "'tenant' field of /explain and /query",
    )
    p_serve.add_argument(
        "--max-tenants",
        type=int,
        default=4,
        help="resident (materialized) tenants kept per process; past it "
        "the least-recently-used idle tenant is evicted and rebuilds "
        "lazily on next use",
    )
    p_serve.add_argument(
        "--tenant-queue-depth",
        type=int,
        default=None,
        help="per-tenant bound on queued + in-flight explains; one hot "
        "tenant is rejected at its own limit (503, scope=tenant) while "
        "others keep being admitted",
    )

    p_coord = sub.add_parser(
        "cluster-coordinator",
        help="dispatch one explain job to a worker fleet over HTTP "
        "(repro.runtime.cluster; see docs/distribution.md)",
    )
    _add_dataset_args(p_coord)
    p_coord.add_argument("--model", help=".npz model (default: train fresh)")
    p_coord.add_argument(
        "--method",
        default="gvex-approx",
        type=str.lower,
        choices=explainer_names(include_aliases=True),
        metavar="METHOD",
    )
    p_coord.add_argument("--theta", type=float, default=0.08)
    p_coord.add_argument("--radius", type=float, default=0.3)
    p_coord.add_argument("--gamma", type=float, default=0.5)
    p_coord.add_argument("--lower", type=int, default=0)
    p_coord.add_argument("--upper", type=int, default=6)
    p_coord.add_argument("--host", default=DEFAULT_HOST)
    p_coord.add_argument("--port", type=int, default=0,
                         help="TCP port (0 picks a free one)")
    p_coord.add_argument(
        "--min-workers",
        type=int,
        default=1,
        help="wait for this many registered workers before dispatching",
    )
    p_coord.add_argument(
        "--wait",
        type=float,
        default=60.0,
        help="seconds to wait for --min-workers registrations",
    )
    p_coord.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=None,
        help="declare a worker dead after this many silent seconds "
        "(its in-flight shards re-dispatch to survivors)",
    )
    p_coord.add_argument(
        "--auth-token",
        default=None,
        help="shared bearer token for every cluster POST route",
    )
    p_coord.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        help="per-dispatch HTTP timeout in seconds (a shard must "
        "answer within this; default 300)",
    )
    p_coord.add_argument(
        "--retry-attempts",
        type=int,
        default=None,
        help="transient-failure dispatch attempts per shard before the "
        "circuit breaker quarantines the worker (default 3)",
    )
    p_coord.add_argument(
        "--journal",
        default=None,
        help="fsync'd shard-result journal path: every completed shard "
        "survives a coordinator crash (docs/distribution.md)",
    )
    p_coord.add_argument(
        "--resume",
        action="store_true",
        help="replay an existing --journal, skipping completed shards "
        "(refuses a journal written for a different plan)",
    )
    p_coord.add_argument("--out", required=True, help="merged views .json path")

    p_work = sub.add_parser(
        "cluster-worker",
        help="serve explain shards for a coordinator "
        "(registers, heartbeats, exits when the coordinator goes away)",
    )
    _add_dataset_args(p_work)
    p_work.add_argument(
        "--coordinator", required=True, help="coordinator base URL"
    )
    p_work.add_argument(
        "--model",
        required=True,
        help=".npz model — must be the same artifact the coordinator "
        "uses, since models never ship over the wire",
    )
    p_work.add_argument("--host", default=DEFAULT_HOST)
    p_work.add_argument("--port", type=int, default=0,
                        help="TCP port (0 picks a free one)")
    p_work.add_argument("--worker-id", default=None)
    p_work.add_argument("--heartbeat-interval", type=float, default=None)
    p_work.add_argument(
        "--max-missed-heartbeats",
        type=int,
        default=None,
        help="consecutive failed heartbeats before the worker presumes "
        "the coordinator gone and exits cleanly (default 3)",
    )
    p_work.add_argument(
        "--transport-timeout",
        type=float,
        default=None,
        help="HTTP timeout in seconds for register/warm-boot calls to "
        "the coordinator (default 30)",
    )
    p_work.add_argument("--auth-token", default=None)
    p_work.add_argument(
        "--no-warm",
        action="store_true",
        help="skip the GET /cache warm boot (cold plan cache)",
    )

    p_lint = sub.add_parser(
        "lint",
        help="run the repro.analysis invariant linter "
        "(lock discipline, fork safety, determinism, exception/wire "
        "policy; see docs/analysis.md)",
    )
    p_lint.add_argument(
        "--root",
        default=None,
        help="package directory to analyze (default: the installed "
        "repro package)",
    )
    p_lint.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report format on stdout",
    )
    p_lint.add_argument(
        "--baseline",
        default=None,
        help="baseline file of accepted findings (default: "
        "scripts/analysis_baseline.txt next to the analyzed tree, "
        "when present)",
    )
    p_lint.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding",
    )
    p_lint.add_argument(
        "--write-baseline",
        metavar="PATH",
        default=None,
        help="write the current unsuppressed findings as baseline "
        "candidates to PATH (justifications left as TODO) and exit 0",
    )
    p_lint.add_argument(
        "--out",
        default=None,
        help="also write the report (in --format) to this path",
    )

    return parser


def _add_dataset_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset", required=True, choices=sorted(DATASETS), help="dataset name"
    )
    parser.add_argument("--scale", default="test")
    parser.add_argument("--seed", type=int, default=0)


def _parse_tenant(raw: str, seed: int = 0) -> TenantSpec:
    """Parse a ``--tenant NAME=DATASET[:SCALE]`` flag into a spec."""
    name, sep, rest = raw.partition("=")
    if not sep or not name or not rest:
        raise SystemExit(
            f"invalid --tenant {raw!r}: expected NAME=DATASET[:SCALE]"
        )
    dataset, sep, scale = rest.partition(":")
    if dataset not in DATASETS:
        raise SystemExit(
            f"invalid --tenant {raw!r}: unknown dataset {dataset!r} "
            f"(choose from {sorted(DATASETS)})"
        )
    return TenantSpec(
        name=name, dataset=dataset, scale=scale or "test", seed=seed
    )


def _load_pattern(spec: str) -> Pattern:
    path = Path(spec)
    raw = path.read_text() if path.exists() else spec
    return pattern_from_spec(json.loads(raw))


def _service(args, config: Optional[GvexConfig] = None) -> ExplanationService:
    return ExplanationService(
        args.dataset,
        scale=args.scale,
        seed=args.seed,
        config=config,
        hidden_dims=tuple(getattr(args, "hidden", (32, 32, 32))),
    )


def _attach_model(svc: ExplanationService, args, epochs: int = 150) -> None:
    """Load ``--model`` when given (must exist), else train in-service."""
    model_path = getattr(args, "model", None)
    if model_path:
        if not Path(model_path).exists():
            raise SystemExit(f"model file not found: {model_path}")
        svc.fit_or_load(model_path)
        return
    svc.fit_or_load(epochs=epochs)
    if svc.train_metrics is not None:
        print(
            f"trained on {args.dataset} ({args.scale}): "
            + ", ".join(f"{k}={v:.3f}" for k, v in svc.train_metrics.items())
        )


def _run_lint(args) -> int:
    """``repro lint``: exit 0 clean, 1 findings, 2 analysis failure."""
    import repro
    from repro.analysis import format_baseline, run_analysis
    from repro.exceptions import AnalysisError

    root = Path(args.root) if args.root else Path(repro.__file__).parent
    try:
        if args.write_baseline:
            report = run_analysis(root)
            Path(args.write_baseline).write_text(
                format_baseline(report.findings)
            )
            print(
                f"wrote {len({f.identity for f in report.findings})} "
                f"baseline candidate(s) to {args.write_baseline}"
            )
            return 0
        baseline: Optional[Path] = None
        if args.baseline:
            baseline = Path(args.baseline)
            if not baseline.is_file():
                raise AnalysisError(f"baseline file not found: {baseline}")
        elif not args.no_baseline:
            # <repo>/src/repro -> <repo>/scripts/analysis_baseline.txt
            default = (
                root.parent.parent / "scripts" / "analysis_baseline.txt"
            )
            if default.is_file():
                baseline = default
        report = run_analysis(root, baseline=baseline)
    except AnalysisError as exc:
        print(f"repro lint: error: {exc}", file=sys.stderr)
        return 2
    rendered = (
        json.dumps(report.to_dict(), indent=2)
        if args.format == "json"
        else report.render_text()
    )
    print(rendered)
    if args.out:
        Path(args.out).write_text(rendered + "\n")
    return report.exit_code


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "lint":
        return _run_lint(args)

    if args.command == "capabilities":
        print(capability_table())
        return 0

    if args.command == "datasets":
        print(statistics_table(scale=args.scale, seed=args.seed))
        return 0

    if args.command == "train":
        svc = _service(args)
        _attach_model(svc, args, epochs=args.epochs)
        svc.model.save(args.out)
        print(f"saved model to {args.out}")
        return 0

    if args.command == "explain":
        config = GvexConfig(
            theta=args.theta,
            radius=args.radius,
            gamma=args.gamma,
            verifier_backend=args.backend,
            matching_backend=args.matching_backend,
            stream_inc=args.stream_inc,
        ).with_bounds(args.lower, args.upper)
        shard_stats = None
        if args.shard_stats:
            stats_path = Path(args.shard_stats)
            if not stats_path.exists():
                raise SystemExit(f"shard stats file not found: {args.shard_stats}")
            shard_stats = json.loads(stats_path.read_text())
        svc = _service(args, config)
        _attach_model(svc, args)
        views = svc.explain(
            args.method,
            labels=args.labels if args.labels else None,
            processes=args.processes,
            n_shards=args.shards,
            shard_stats=shard_stats,
        )
        svc.persist(args.out)
        for view in views:
            print(
                f"label {view.label}: {len(view.subgraphs)} subgraphs, "
                f"{len(view.patterns)} patterns, f={view.score:.3f}, "
                f"compression={view.compression():.1%}"
            )
        print(f"saved views to {args.out}")
        return 0

    if args.command == "query":
        svc = _service(args)
        svc.load_views(args.views)
        pattern = _load_pattern(args.pattern)
        query = Q.pattern(pattern) & Q.in_scope(args.scope)
        if args.label is not None:
            query = query & Q.label(args.label)
        hits = svc.query(query)
        print(f"{len(hits)} match(es) for pattern ({pattern.n_nodes} nodes, "
              f"{pattern.n_edges} edges), scope={args.scope}")
        for hit in hits:
            where = "explanation" if hit.in_explanation else "graph"
            print(f"  label={hit.label} graph={hit.graph_index} ({where})")
        stats = svc.index.pattern_statistics(pattern)
        print("per-label explanation counts: "
              + ", ".join(f"{l}: {c}" for l, c in sorted(stats.items())))
        return 0

    if args.command == "serve":
        svc = _service(args)
        if args.model:
            _attach_model(svc, args)
        if args.views:
            svc.load_views(args.views)
        # the --dataset service is the pinned default tenant; --tenant
        # entries materialize lazily on first addressed request
        registry = TenantRegistry(max_residents=args.max_tenants)
        registry.add_service(DEFAULT_TENANT, svc, pinned=True)
        for raw in args.tenant:
            registry.register(_parse_tenant(raw, seed=args.seed))
        server = create_server(
            registry=registry,
            host=args.host,
            port=args.port,
            workers=args.workers,
            queue_capacity=args.queue_depth,
            tenant_queue_capacity=args.tenant_queue_depth,
            auth_token=args.auth_token,
        )
        _SERVE_STATE["server"] = server
        tenants = ", ".join(registry.names())
        print(f"serving {args.dataset} ({args.scale}) on {server.url} "
              f"[tenants: {tenants}; workers: {args.workers}]")
        print("routes: GET /health /tenants /explainers /capabilities "
              "/views | POST /explain /query")
        try:
            if args.max_requests > 0:
                # non-daemon handlers: server_close() then joins them, so
                # the final response finishes before the process exits
                server.daemon_threads = False
                for _ in range(args.max_requests):
                    server.handle_request()
            else:  # pragma: no cover - interactive loop
                server.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass
        finally:
            server.server_close()
            _SERVE_STATE.pop("server", None)
        return 0

    if args.command == "cluster-coordinator":
        from repro.runtime import build_plan
        from repro.runtime.cluster import ClusterCoordinator, DistributedExecutor

        config = GvexConfig(
            theta=args.theta, radius=args.radius, gamma=args.gamma
        ).with_bounds(args.lower, args.upper)
        if args.resume and not args.journal:
            raise SystemExit("--resume requires --journal PATH")
        svc = _service(args, config)
        _attach_model(svc, args)
        kwargs = {"auth_token": args.auth_token}
        if args.heartbeat_timeout is not None:
            kwargs["heartbeat_timeout"] = args.heartbeat_timeout
        if args.request_timeout is not None:
            kwargs["request_timeout"] = args.request_timeout
        if args.retry_attempts is not None:
            from repro.runtime.cluster import RetryPolicy

            kwargs["retry_policy"] = RetryPolicy(attempts=args.retry_attempts)
        coordinator = ClusterCoordinator(args.host, args.port, **kwargs)
        _SERVE_STATE["coordinator"] = coordinator
        with coordinator:
            print(f"coordinator on {coordinator.url} "
                  f"[dataset: {args.dataset} ({args.scale})]", flush=True)
            coordinator.wait_for_workers(args.min_workers, timeout=args.wait)
            plan = build_plan(
                svc.db, svc.model, config, method=args.method, seed=args.seed
            )
            journal = None
            if args.journal:
                from repro.runtime.cluster import ShardJournal

                if not args.resume and Path(args.journal).exists():
                    # a fresh (non-resume) run must not inherit records
                    Path(args.journal).unlink()
                journal = ShardJournal.for_plan(args.journal, plan)
                if args.resume:
                    print(
                        f"resume: {len(journal.completed)} shard(s) "
                        f"replayed from {args.journal} "
                        f"({journal.skipped} line(s) skipped)"
                    )
                views, stats = coordinator.run(plan, journal=journal)
                journal.close()
            else:
                views, stats = DistributedExecutor(coordinator).run(plan)
            from repro.graphs.io import save_views

            save_views(views, args.out)
            for view in views:
                print(
                    f"label {view.label}: {len(view.subgraphs)} subgraphs, "
                    f"{len(view.patterns)} patterns, f={view.score:.3f}"
                )
            print(
                f"completed {stats['shards']} shard(s) via "
                f"{stats['workers_used']} worker(s), "
                f"re-dispatched {stats['redispatched']}, "
                f"resumed {stats.get('resumed', 0)}; "
                f"saved views to {args.out}"
            )
        _SERVE_STATE.pop("coordinator", None)
        return 0

    if args.command == "cluster-worker":
        from repro.datasets import load_dataset
        from repro.gnn.model import GnnClassifier
        from repro.runtime.cluster import ClusterWorker

        if not Path(args.model).exists():
            raise SystemExit(f"model file not found: {args.model}")
        db = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
        model = GnnClassifier.load(args.model)
        kwargs = {
            "host": args.host,
            "port": args.port,
            "worker_id": args.worker_id,
            "auth_token": args.auth_token,
            "warm_start": not args.no_warm,
        }
        if args.heartbeat_interval is not None:
            kwargs["heartbeat_interval"] = args.heartbeat_interval
        if args.max_missed_heartbeats is not None:
            kwargs["max_missed_heartbeats"] = args.max_missed_heartbeats
        if args.transport_timeout is not None:
            kwargs["transport_timeout"] = args.transport_timeout
        worker = ClusterWorker(db, model, args.coordinator, **kwargs)
        _SERVE_STATE["worker"] = worker
        with worker:
            print(f"worker {worker.worker_id} on {worker.url} -> "
                  f"{worker.coordinator_url}"
                  + (f" [warm: {worker.warm_stats}]" if worker.warm_stats
                     else ""),
                  flush=True)
            try:
                worker.join()
            except KeyboardInterrupt:  # pragma: no cover - interactive only
                pass
        print(f"worker {worker.worker_id} exited after "
              f"{worker.shards_run} shard(s)")
        _SERVE_STATE.pop("worker", None)
        return 0

    return 1  # pragma: no cover - argparse enforces valid commands


if __name__ == "__main__":
    sys.exit(main())
