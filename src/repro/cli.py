"""Command-line interface.

Everything a downstream user needs without writing Python::

    python -m repro.cli capabilities                 # Table 1
    python -m repro.cli datasets --scale test        # Table 3
    python -m repro.cli train --dataset mutagenicity --out model.npz
    python -m repro.cli explain --dataset mutagenicity --model model.npz \\
        --method approx --upper 6 --out views.json
    python -m repro.cli query --views views.json --dataset mutagenicity \\
        --pattern '{"node_types": [1, 2], "edges": [[0, 1, 0]]}'
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.config import (
    BACKEND_BATCHED,
    STREAM_INC_MODES,
    STREAM_INCREMENTAL,
    VERIFIER_BACKENDS,
    GvexConfig,
)
from repro.core.approx import ApproxGvex
from repro.core.streaming import StreamGvex
from repro.datasets.registry import DATASETS, dataset_info, load_dataset
from repro.datasets.statistics import statistics_table
from repro.gnn.model import GnnClassifier
from repro.gnn.training import train_classifier
from repro.graphs.io import graph_from_dict, load_views, save_views
from repro.graphs.pattern import Pattern
from repro.metrics.capability import capability_table
from repro.query import ViewIndex


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GVEX: view-based explanations for GNNs (SIGMOD 2024)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("capabilities", help="print the Table 1 capability matrix")

    p_data = sub.add_parser("datasets", help="print Table 3 dataset statistics")
    p_data.add_argument("--scale", default="test", help="test | bench | large")
    p_data.add_argument("--seed", type=int, default=0)

    p_train = sub.add_parser("train", help="train a GCN classifier on a dataset")
    _add_dataset_args(p_train)
    p_train.add_argument("--out", required=True, help="output .npz model path")
    p_train.add_argument("--hidden", type=int, nargs="+", default=[32, 32, 32])
    p_train.add_argument("--epochs", type=int, default=150)

    p_explain = sub.add_parser("explain", help="generate explanation views")
    _add_dataset_args(p_explain)
    p_explain.add_argument("--model", help=".npz model (default: train fresh)")
    p_explain.add_argument(
        "--method", choices=["approx", "stream"], default="approx"
    )
    p_explain.add_argument("--theta", type=float, default=0.08)
    p_explain.add_argument("--radius", type=float, default=0.3)
    p_explain.add_argument("--gamma", type=float, default=0.5)
    p_explain.add_argument("--lower", type=int, default=0)
    p_explain.add_argument("--upper", type=int, default=6)
    p_explain.add_argument(
        "--backend",
        choices=list(VERIFIER_BACKENDS),
        default=BACKEND_BATCHED,
        help="EVerify scheduling: batched (default) or the serial reference; "
        "both produce identical views (see docs/verification.md)",
    )
    p_explain.add_argument(
        "--stream-inc",
        choices=list(STREAM_INC_MODES),
        default=STREAM_INCREMENTAL,
        help="IncEVerify schedule for --method stream: extend persistent "
        "influence/diversity accumulators per chunk (incremental, default) "
        "or re-derive the oracle on the seen prefix (rebuild); both select "
        "identical views (see docs/streaming.md)",
    )
    p_explain.add_argument(
        "--labels", type=int, nargs="*", help="labels of interest (default: all)"
    )
    p_explain.add_argument("--out", required=True, help="output views .json path")

    p_query = sub.add_parser("query", help="query saved explanation views")
    _add_dataset_args(p_query)
    p_query.add_argument("--views", required=True, help="views .json path")
    p_query.add_argument(
        "--pattern",
        required=True,
        help='pattern as JSON: {"node_types": [...], "edges": [[u, v, type]...]} '
        "or a path to such a file",
    )
    p_query.add_argument(
        "--scope",
        choices=["explanations", "graphs"],
        default="explanations",
        help="match against explanation subgraphs or full source graphs",
    )
    p_query.add_argument("--label", type=int, help="restrict to one label group")

    return parser


def _add_dataset_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset", required=True, choices=sorted(DATASETS), help="dataset name"
    )
    parser.add_argument("--scale", default="test")
    parser.add_argument("--seed", type=int, default=0)


def _load_pattern(spec: str) -> Pattern:
    path = Path(spec)
    raw = path.read_text() if path.exists() else spec
    data = json.loads(raw)
    graph = graph_from_dict(
        {
            "node_types": data["node_types"],
            "edges": data.get("edges", []),
            "directed": data.get("directed", False),
        }
    )
    return Pattern(graph)


def _train(args) -> GnnClassifier:
    info = dataset_info(args.dataset)
    db = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    model = GnnClassifier(
        info.n_features,
        info.n_classes,
        hidden_dims=tuple(args.hidden) if hasattr(args, "hidden") else (32, 32, 32),
        seed=args.seed,
    )
    model, _, metrics = train_classifier(
        db,
        model,
        seed=args.seed,
        max_epochs=getattr(args, "epochs", 150),
    )
    print(
        f"trained on {args.dataset} ({args.scale}): "
        + ", ".join(f"{k}={v:.3f}" for k, v in metrics.items())
    )
    return model


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "capabilities":
        print(capability_table())
        return 0

    if args.command == "datasets":
        print(statistics_table(scale=args.scale, seed=args.seed))
        return 0

    if args.command == "train":
        model = _train(args)
        model.save(args.out)
        print(f"saved model to {args.out}")
        return 0

    if args.command == "explain":
        db = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
        if args.model:
            model = GnnClassifier.load(args.model)
        else:
            model = _train(args)
        config = GvexConfig(
            theta=args.theta,
            radius=args.radius,
            gamma=args.gamma,
            verifier_backend=args.backend,
            stream_inc=args.stream_inc,
        ).with_bounds(args.lower, args.upper)
        labels = args.labels if args.labels else None
        if args.method == "approx":
            views = ApproxGvex(model, config, labels=labels).explain(db)
        else:
            views = StreamGvex(model, config, labels=labels, seed=args.seed).explain(db)
        save_views(views, args.out)
        for view in views:
            print(
                f"label {view.label}: {len(view.subgraphs)} subgraphs, "
                f"{len(view.patterns)} patterns, f={view.score:.3f}, "
                f"compression={view.compression():.1%}"
            )
        print(f"saved views to {args.out}")
        return 0

    if args.command == "query":
        db = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
        views = load_views(args.views)
        index = ViewIndex(views, db=db)
        pattern = _load_pattern(args.pattern)
        if args.scope == "explanations":
            hits = index.explanations_containing(pattern, label=args.label)
        else:
            hits = index.graphs_containing(pattern, label=args.label)
        print(f"{len(hits)} match(es) for pattern ({pattern.n_nodes} nodes, "
              f"{pattern.n_edges} edges), scope={args.scope}")
        for hit in hits:
            where = "explanation" if hit.in_explanation else "graph"
            print(f"  label={hit.label} graph={hit.graph_index} ({where})")
        stats = index.pattern_statistics(pattern)
        print("per-label explanation counts: "
              + ", ".join(f"{l}: {c}" for l, c in sorted(stats.items())))
        return 0

    return 1  # pragma: no cover - argparse enforces valid commands


if __name__ == "__main__":
    sys.exit(main())
