"""Evaluation metrics: fidelity, conciseness, capability matrix."""

from repro.metrics.capability import capability_rows, capability_table
from repro.metrics.conciseness import (
    compression,
    mean_compression,
    mean_edge_loss,
    sparsity,
    sparsity_single,
)
from repro.metrics.fidelity import (
    fidelity_minus_single,
    fidelity_plus_single,
    fidelity_scores,
)

__all__ = [
    "fidelity_scores",
    "fidelity_plus_single",
    "fidelity_minus_single",
    "sparsity",
    "sparsity_single",
    "compression",
    "mean_compression",
    "mean_edge_loss",
    "capability_rows",
    "capability_table",
]
