"""Table 1 — the explainer capability matrix, generated from metadata."""

from __future__ import annotations

from typing import List, Sequence, Type

from repro.explainers import ALL_EXPLAINER_CLASSES
from repro.explainers.base import Explainer, ExplainerCapabilities

COLUMNS = (
    "Method",
    "Learning",
    "Task",
    "Target",
    "MA",
    "LS",
    "SB",
    "Coverage",
    "Config",
    "Queryable",
)


def _mark(flag: bool) -> str:
    return "yes" if flag else "no"


def capability_rows(
    classes: Sequence[Type[Explainer]] = ALL_EXPLAINER_CLASSES,
) -> List[List[str]]:
    """Table 1 rows in the paper's column order."""
    rows = []
    for cls in classes:
        caps: ExplainerCapabilities = cls.capabilities
        rows.append(
            [
                caps.name,
                _mark(caps.requires_learning),
                caps.tasks,
                caps.target,
                _mark(caps.model_agnostic),
                _mark(caps.label_specific),
                _mark(caps.size_bound),
                _mark(caps.coverage),
                _mark(caps.configurable),
                _mark(caps.queryable),
            ]
        )
    return rows


def capability_table(
    classes: Sequence[Type[Explainer]] = ALL_EXPLAINER_CLASSES,
) -> str:
    """ASCII rendering of Table 1."""
    rows = [list(COLUMNS)] + capability_rows(classes)
    widths = [max(len(r[i]) for r in rows) for i in range(len(COLUMNS))]
    lines = []
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        if i == 0:
            lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    return "\n".join(lines)


__all__ = ["capability_rows", "capability_table", "COLUMNS"]
