"""Table 1 — the explainer capability matrix, generated from metadata.

Rows default to the explainer registry's Table 1 members
(:func:`repro.api.registry.explainer_specs`), so a newly registered
explainer is constructed, swept, *and* capability-tabled identically;
``ALL_EXPLAINER_CLASSES`` stays as the registry-free fallback.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Type

from repro.explainers import ALL_EXPLAINER_CLASSES
from repro.explainers.base import Explainer, ExplainerCapabilities


def default_capability_classes() -> Sequence[Type[Explainer]]:
    """Table 1 row classes, sourced from the registry when available."""
    try:  # lazy: metrics must stay importable without repro.api
        from repro.api.registry import explainer_specs
    except ImportError:  # pragma: no cover - bootstrap order only
        return ALL_EXPLAINER_CLASSES
    classes = [spec.cls for spec in explainer_specs() if spec.in_table1]
    return classes or ALL_EXPLAINER_CLASSES

COLUMNS = (
    "Method",
    "Learning",
    "Task",
    "Target",
    "MA",
    "LS",
    "SB",
    "Coverage",
    "Config",
    "Queryable",
)


def _mark(flag: bool) -> str:
    return "yes" if flag else "no"


def capability_rows(
    classes: Optional[Sequence[Type[Explainer]]] = None,
) -> List[List[str]]:
    """Table 1 rows in the paper's column order."""
    if classes is None:
        classes = default_capability_classes()
    rows = []
    for cls in classes:
        caps: ExplainerCapabilities = cls.capabilities
        rows.append(
            [
                caps.name,
                _mark(caps.requires_learning),
                caps.tasks,
                caps.target,
                _mark(caps.model_agnostic),
                _mark(caps.label_specific),
                _mark(caps.size_bound),
                _mark(caps.coverage),
                _mark(caps.configurable),
                _mark(caps.queryable),
            ]
        )
    return rows


def capability_table(
    classes: Optional[Sequence[Type[Explainer]]] = None,
) -> str:
    """ASCII rendering of Table 1."""
    rows = [list(COLUMNS)] + capability_rows(classes)
    widths = [max(len(r[i]) for r in rows) for i in range(len(COLUMNS))]
    lines = []
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        if i == 0:
            lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    return "\n".join(lines)


__all__ = [
    "capability_rows",
    "capability_table",
    "default_capability_classes",
    "COLUMNS",
]
