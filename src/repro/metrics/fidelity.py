"""Explanation faithfulness metrics (Eqs. 8-9).

* **Fidelity+** — probability drop caused by *removing* the explanation
  from the input: high values mean the explanation was necessary
  (counterfactual).
* **Fidelity-** — probability drop when classifying the explanation
  *alone*: values near (or below) zero mean the explanation is
  sufficient (consistent).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.gnn.model import GnnClassifier
from repro.graphs.database import GraphDatabase
from repro.graphs.graph import Graph
from repro.graphs.view import ExplanationSubgraph


def _probability(model: GnnClassifier, graph: Graph, label: int) -> float:
    return float(model.predict_proba(graph)[label])


def fidelity_plus_single(
    model: GnnClassifier, graph: Graph, nodes: Iterable[int], label: int
) -> float:
    """Eq. 8 for one graph: P(M(G)=l) - P(M(G \\ G_s)=l)."""
    rest, _ = graph.remove_nodes(nodes)
    return _probability(model, graph, label) - _probability(model, rest, label)


def fidelity_minus_single(
    model: GnnClassifier, graph: Graph, nodes: Iterable[int], label: int
) -> float:
    """Eq. 9 for one graph: P(M(G)=l) - P(M(G_s)=l)."""
    sub, _ = graph.induced_subgraph(nodes)
    return _probability(model, graph, label) - _probability(model, sub, label)


def fidelity_scores(
    model: GnnClassifier,
    db: GraphDatabase,
    explanations: Mapping[int, ExplanationSubgraph],
    labels: Optional[Sequence[Optional[int]]] = None,
) -> Tuple[float, float]:
    """(Fidelity+, Fidelity-) averaged over the explained graphs.

    ``explanations`` maps graph index -> explanation; ``labels``
    supplies the assigned labels (defaults to fresh model predictions).
    Graphs without an explanation are skipped, matching how the paper
    evaluates per-method outputs.
    """
    if not explanations:
        return 0.0, 0.0
    plus_total = 0.0
    minus_total = 0.0
    count = 0
    for idx, expl in explanations.items():
        graph = db[idx]
        label = (
            labels[idx]
            if labels is not None and labels[idx] is not None
            else model.predict(graph)
        )
        if label is None:
            continue
        plus_total += fidelity_plus_single(model, graph, expl.nodes, label)
        minus_total += fidelity_minus_single(model, graph, expl.nodes, label)
        count += 1
    if count == 0:
        return 0.0, 0.0
    return plus_total / count, minus_total / count


__all__ = [
    "fidelity_plus_single",
    "fidelity_minus_single",
    "fidelity_scores",
]
