"""Conciseness metrics: Sparsity (Eq. 10), Compression (Eq. 11), edge loss.

Sparsity measures how small explanation subgraphs are relative to the
inputs; Compression measures how much smaller the "higher-tier"
patterns are than the subgraphs they summarize (GVEX-only); edge loss
is the fraction of subgraph edges patterns fail to cover (Lemma 4.3's
optimization target).
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.graphs.database import GraphDatabase
from repro.graphs.view import ExplanationSubgraph, ExplanationView, ViewSet


def sparsity_single(graph_nodes: int, graph_edges: int, expl: ExplanationSubgraph) -> float:
    denom = graph_nodes + graph_edges
    if denom == 0:
        return 0.0
    return 1.0 - (expl.n_nodes + expl.n_edges) / denom


def sparsity(
    db: GraphDatabase, explanations: Mapping[int, ExplanationSubgraph]
) -> float:
    """Eq. 10, averaged over explained graphs (higher = more concise)."""
    if not explanations:
        return 0.0
    total = 0.0
    for idx, expl in explanations.items():
        g = db[idx]
        total += sparsity_single(g.n_nodes, g.n_edges, expl)
    return total / len(explanations)


def compression(view: ExplanationView) -> float:
    """Eq. 11 for one view: 1 - pattern size / subgraph size."""
    return view.compression()


def mean_compression(views: ViewSet) -> float:
    """Average compression across the views of all labels."""
    if len(views) == 0:
        return 0.0
    return sum(v.compression() for v in views) / len(views)


def mean_edge_loss(views: ViewSet) -> float:
    """Average fraction of subgraph edges the patterns miss."""
    if len(views) == 0:
        return 0.0
    return sum(v.edge_loss for v in views) / len(views)


__all__ = [
    "sparsity",
    "sparsity_single",
    "compression",
    "mean_compression",
    "mean_edge_loss",
]
