"""JSON (de)serialization for graphs, patterns, views, and databases.

The on-disk format is intentionally plain JSON so explanation views are
*queryable* artifacts: a user can load them into any tool, grep them, or
post-process them without this library.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.database import GraphDatabase
from repro.graphs.graph import Graph
from repro.graphs.pattern import Pattern
from repro.graphs.view import ExplanationSubgraph, ExplanationView, ViewSet

PathLike = Union[str, Path]

#: current views wire-format version (``{"schema": 2, "views": [...]}``).
#: v1 files (no ``"schema"`` key) are still read; unknown future
#: versions are rejected so the service/HTTP layer never misparses.
VIEWS_SCHEMA_VERSION = 2
_READABLE_SCHEMAS = (1, 2)


# ----------------------------------------------------------------------
# graph <-> dict
# ----------------------------------------------------------------------
def graph_to_dict(graph: Graph) -> Dict[str, Any]:
    d: Dict[str, Any] = {
        "node_types": graph.node_types.tolist(),
        "directed": graph.directed,
        "edges": [[u, v, t] for u, v, t in graph.edges()],
    }
    if graph.features is not None:
        d["features"] = graph.features.tolist()
    return d


def graph_from_dict(d: Dict[str, Any]) -> Graph:
    features = None
    if "features" in d:
        features = np.asarray(d["features"], dtype=np.float64)
    g = Graph(d["node_types"], features=features, directed=bool(d.get("directed")))
    for u, v, t in d.get("edges", []):
        g.add_edge(int(u), int(v), int(t))
    return g


# ----------------------------------------------------------------------
# pattern / view <-> dict
# ----------------------------------------------------------------------
def pattern_to_dict(pattern: Pattern) -> Dict[str, Any]:
    return {"graph": graph_to_dict(pattern.graph), "key": pattern.key()}


def pattern_from_dict(d: Dict[str, Any]) -> Pattern:
    return Pattern(graph_from_dict(d["graph"]))


def subgraph_to_dict(s: ExplanationSubgraph) -> Dict[str, Any]:
    return {
        "graph_index": s.graph_index,
        "nodes": list(s.nodes),
        "subgraph": graph_to_dict(s.subgraph),
        "consistent": s.consistent,
        "counterfactual": s.counterfactual,
        "score": s.score,
    }


def subgraph_from_dict(d: Dict[str, Any]) -> ExplanationSubgraph:
    return ExplanationSubgraph(
        graph_index=int(d["graph_index"]),
        nodes=tuple(int(v) for v in d["nodes"]),
        subgraph=graph_from_dict(d["subgraph"]),
        consistent=bool(d["consistent"]),
        counterfactual=bool(d["counterfactual"]),
        score=float(d["score"]),
    )


def view_to_dict(view: ExplanationView) -> Dict[str, Any]:
    return {
        "label": view.label,
        "score": view.score,
        "edge_loss": view.edge_loss,
        "subgraphs": [subgraph_to_dict(s) for s in view.subgraphs],
        "patterns": [pattern_to_dict(p) for p in view.patterns],
    }


def view_from_dict(d: Dict[str, Any]) -> ExplanationView:
    return ExplanationView(
        label=d["label"],
        score=float(d["score"]),
        # v1 files predate edge_loss serialization
        edge_loss=float(d.get("edge_loss", 0.0)),
        subgraphs=[subgraph_from_dict(s) for s in d["subgraphs"]],
        patterns=[pattern_from_dict(p) for p in d["patterns"]],
    )


def viewset_to_dict(views: ViewSet) -> Dict[str, Any]:
    return {
        "schema": VIEWS_SCHEMA_VERSION,
        "views": [view_to_dict(v) for v in views],
    }


def viewset_from_dict(d: Dict[str, Any]) -> ViewSet:
    schema = d.get("schema", 1)  # v1 files carry no version marker
    if schema not in _READABLE_SCHEMAS:
        raise GraphError(
            f"unsupported views schema {schema!r}; this build reads "
            f"versions {_READABLE_SCHEMAS}"
        )
    vs = ViewSet()
    for item in d["views"]:
        vs.add(view_from_dict(item))
    return vs


# ----------------------------------------------------------------------
# file helpers
# ----------------------------------------------------------------------
def save_json(obj: Dict[str, Any], path: PathLike) -> None:
    Path(path).write_text(json.dumps(obj, indent=2, sort_keys=True))


def load_json(path: PathLike) -> Dict[str, Any]:
    return json.loads(Path(path).read_text())


def save_database(db: GraphDatabase, path: PathLike) -> None:
    save_json(
        {
            "name": db.name,
            "labels": db.labels,
            "graphs": [graph_to_dict(g) for g in db.graphs],
        },
        path,
    )


def load_database(path: PathLike) -> GraphDatabase:
    d = load_json(path)
    return GraphDatabase(
        [graph_from_dict(g) for g in d["graphs"]],
        labels=d.get("labels"),
        name=d.get("name", "database"),
    )


def save_views(views: ViewSet, path: PathLike) -> None:
    save_json(viewset_to_dict(views), path)


def load_views(path: PathLike) -> ViewSet:
    return viewset_from_dict(load_json(path))


__all__ = [
    "VIEWS_SCHEMA_VERSION",
    "graph_to_dict",
    "graph_from_dict",
    "pattern_to_dict",
    "pattern_from_dict",
    "view_to_dict",
    "view_from_dict",
    "viewset_to_dict",
    "viewset_from_dict",
    "save_database",
    "load_database",
    "save_views",
    "load_views",
]
