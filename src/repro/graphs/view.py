"""Explanation views — the paper's central output structure (§2.2).

An :class:`ExplanationView` ``G_V^l = (P^l, G_s^l)`` pairs a set of
graph patterns with the explanation subgraphs they summarize, for one
class label ``l``. :class:`ExplanationSubgraph` records, for one source
graph, which nodes were selected, the induced subgraph, and whether the
consistency / counterfactual properties (§2.2) held under the verifier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.graphs.graph import Graph
from repro.graphs.pattern import Pattern


@dataclass
class ExplanationSubgraph:
    """A "lower-tier" explanation subgraph ``G_s`` of one source graph.

    Attributes
    ----------
    graph_index:
        Index of the source graph inside its database / label group.
    nodes:
        Selected node ids *in the source graph's id space* (``V_s``).
    subgraph:
        The node-induced subgraph (relabelled ``0..|V_s|-1``).
    consistent:
        Whether ``M(G_s) == M(G)`` held at verification time.
    counterfactual:
        Whether ``M(G \\ G_s) != M(G)`` held at verification time.
    score:
        The subgraph's explainability contribution
        ``(I(V_s) + γ·D(V_s)) / |V|`` (Eq. 2 summand).
    """

    graph_index: int
    nodes: Tuple[int, ...]
    subgraph: Graph
    consistent: bool = False
    counterfactual: bool = False
    score: float = 0.0

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def n_edges(self) -> int:
        return self.subgraph.n_edges

    @property
    def is_explanation(self) -> bool:
        """Both §2.2 properties hold: consistent *and* counterfactual."""
        return self.consistent and self.counterfactual

    def __repr__(self) -> str:
        flags = ("C" if self.consistent else "-") + (
            "F" if self.counterfactual else "-"
        )
        return (
            f"<ExplSubgraph g{self.graph_index} |Vs|={self.n_nodes} "
            f"|Es|={self.n_edges} {flags} score={self.score:.3f}>"
        )


@dataclass
class ExplanationView:
    """Two-tier explanation view ``(P^l, G_s^l)`` for one class label."""

    label: Hashable
    subgraphs: List[ExplanationSubgraph] = field(default_factory=list)
    patterns: List[Pattern] = field(default_factory=list)
    score: float = 0.0
    #: fraction of subgraph edges the patterns fail to cover (Lemma 4.3)
    edge_loss: float = 0.0
    #: lazily built (n_subgraphs, graph_index -> subgraph) lookup used by
    #: ``subgraph_for``; invalidated whenever ``subgraphs`` changes length
    _by_graph_index: Optional[Tuple[int, Dict[int, ExplanationSubgraph]]] = field(
        default=None, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    @property
    def n_subgraph_nodes(self) -> int:
        return sum(s.n_nodes for s in self.subgraphs)

    @property
    def n_subgraph_edges(self) -> int:
        return sum(s.n_edges for s in self.subgraphs)

    @property
    def n_pattern_nodes(self) -> int:
        return sum(p.n_nodes for p in self.patterns)

    @property
    def n_pattern_edges(self) -> int:
        return sum(p.n_edges for p in self.patterns)

    def subgraph_for(self, graph_index: int) -> Optional[ExplanationSubgraph]:
        """O(1) lookup of the explanation subgraph for one source graph.

        Backed by a lazily built dict; when several subgraphs share a
        ``graph_index`` the first one wins, matching the original linear
        scan's semantics.
        """
        cached = self._by_graph_index
        if cached is None or cached[0] != len(self.subgraphs):
            lookup: Dict[int, ExplanationSubgraph] = {}
            for s in self.subgraphs:
                lookup.setdefault(s.graph_index, s)
            cached = (len(self.subgraphs), lookup)
            self._by_graph_index = cached
        return cached[1].get(graph_index)

    def compression(self) -> float:
        """Eq. 11: 1 - (|V_P| + |E_P|) / (|V_S| + |E_S|)."""
        denom = self.n_subgraph_nodes + self.n_subgraph_edges
        if denom == 0:
            return 0.0
        return 1.0 - (self.n_pattern_nodes + self.n_pattern_edges) / denom

    def __repr__(self) -> str:
        return (
            f"<ExplanationView label={self.label!r} "
            f"|Gs|={len(self.subgraphs)} |P|={len(self.patterns)} "
            f"f={self.score:.3f}>"
        )


@dataclass
class ViewSet:
    """A set of explanation views, one per label of interest (Problem 1)."""

    views: Dict[Hashable, ExplanationView] = field(default_factory=dict)

    def add(self, view: ExplanationView) -> None:
        self.views[view.label] = view

    def __getitem__(self, label: Hashable) -> ExplanationView:
        return self.views[label]

    def get(
        self, label: Hashable, default: Optional[ExplanationView] = None
    ) -> Optional[ExplanationView]:
        """The view for ``label``, or ``default`` when absent."""
        return self.views.get(label, default)

    def __contains__(self, label: Hashable) -> bool:
        return label in self.views

    def __iter__(self):
        return iter(self.views.values())

    def __len__(self) -> int:
        return len(self.views)

    @property
    def labels(self) -> List[Hashable]:
        return list(self.views.keys())

    def total_score(self) -> float:
        """Aggregated explainability (Eq. 7 objective value)."""
        return sum(v.score for v in self.views.values())

    def __repr__(self) -> str:
        return f"<ViewSet labels={self.labels} f={self.total_score():.3f}>"


__all__ = ["ExplanationSubgraph", "ExplanationView", "ViewSet"]
