"""Graph patterns (§2.1, "Graph Patterns").

A :class:`Pattern` is a small connected graph with typed nodes and
edges; it matches host graphs via node-induced subgraph isomorphism
(see :mod:`repro.matching`). Patterns are the "higher tier" of an
explanation view and must be cheap to deduplicate, so each carries a
Weisfeiler–Lehman-based key (:meth:`Pattern.key`) — collisions are
resolved by an exact isomorphism check in :mod:`repro.matching.canonical`.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import GraphError, PatternError
from repro.graphs.graph import Graph


class Pattern:
    """A connected, typed graph pattern ``P(V_p, E_p, L_p)``."""

    __slots__ = ("graph", "_key")

    def __init__(self, graph: Graph) -> None:
        if graph.n_nodes == 0:
            raise PatternError("pattern must have at least one node")
        if not graph.is_connected():
            raise PatternError("pattern must be connected")
        self.graph = graph
        self._key: Optional[str] = None

    # ------------------------------------------------------------------
    @classmethod
    def from_parts(
        cls,
        node_types: Sequence[int],
        edges: Iterable[Tuple[int, int]] = (),
        directed: bool = False,
        edge_types: Optional[Sequence[int]] = None,
    ) -> "Pattern":
        g = Graph(node_types, directed=directed)
        edges = list(edges)
        if edge_types is None:
            edge_types = [0] * len(edges)
        if len(edge_types) != len(edges):
            raise PatternError("edge_types length must match edges length")
        for (u, v), t in zip(edges, edge_types):
            g.add_edge(u, v, t)
        return cls(g)

    @classmethod
    def singleton(cls, node_type: int) -> "Pattern":
        """One-node pattern; guarantees Psum coverage feasibility."""
        return cls(Graph([node_type]))

    @classmethod
    def from_induced(cls, host: Graph, nodes: Iterable[int]) -> "Pattern":
        """Pattern induced by ``nodes`` of a host graph (types + edges kept)."""
        sub, _ = host.induced_subgraph(nodes)
        # patterns carry no features — only types matter for matching
        stripped = Graph(sub.node_types, directed=sub.directed)
        for u, v, t in sub.edges():
            stripped.add_edge(u, v, t)
        return cls(stripped)

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return self.graph.n_nodes

    @property
    def n_edges(self) -> int:
        return self.graph.n_edges

    @property
    def size(self) -> int:
        """Pattern size = nodes + edges (used by MDL and compression)."""
        return self.n_nodes + self.n_edges

    def node_type(self, v: int) -> int:
        return self.graph.node_type(v)

    def key(self) -> str:
        """WL-style refinement key; equal for isomorphic patterns.

        Distinct patterns may (rarely) share a key; exact deduplication
        resolves collisions with an isomorphism test
        (:func:`repro.matching.canonical.deduplicate_patterns`).
        Memoized per object and process-wide per graph content —
        serving paths re-create byte-identical patterns per request,
        and WL refinement is the costliest step of registering one.
        """
        if self._key is None:
            content = self.graph.content_key()
            cached = _WL_KEY_MEMO.get(content)
            if cached is None:
                cached = _wl_key(self.graph)
                if len(_WL_KEY_MEMO) >= _WL_KEY_MEMO_CAP:
                    _WL_KEY_MEMO.clear()
                _WL_KEY_MEMO[content] = cached
            self._key = cached
        return self._key

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pattern):
            return NotImplemented
        return self.graph == other.graph

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        return f"<Pattern n={self.n_nodes} m={self.n_edges} key={self.key()[:8]}>"


#: process-wide content-key -> WL-key memo (WL is a pure function of
#: graph content); bounded by periodic reset
_WL_KEY_MEMO: Dict[str, str] = {}
_WL_KEY_MEMO_CAP = 100_000


def _wl_key(graph: Graph, iterations: int = 3) -> str:
    """Weisfeiler–Lehman refinement hash with node and edge types.

    Deterministic and order-independent: isomorphic graphs always
    produce the same key.
    """
    colors: List[str] = [str(graph.node_type(v)) for v in graph.nodes()]
    for _ in range(iterations):
        new_colors: List[str] = []
        for v in graph.nodes():
            neigh = []
            for w in sorted(graph.all_neighbors(v)):
                try:
                    etype = graph.edge_type(v, w)
                except GraphError:
                    etype = graph.edge_type(w, v)
                neigh.append(f"{etype}:{colors[w]}")
            neigh.sort()
            signature = colors[v] + "|" + ",".join(neigh)
            new_colors.append(hashlib.sha1(signature.encode()).hexdigest()[:16])
        colors = new_colors
    summary = ",".join(sorted(colors)) + f"#n{graph.n_nodes}#m{graph.n_edges}"
    summary += "#d" if graph.directed else "#u"
    return hashlib.sha1(summary.encode()).hexdigest()


__all__ = ["Pattern"]
