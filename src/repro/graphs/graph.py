"""Attributed, typed graphs (§2.1 of the paper).

A :class:`Graph` is ``G = (V, E, T, L)``: nodes ``0..n-1``, each with an
integer *type* ``L(v)`` (a real-world entity type such as an atom
symbol), an optional feature vector ``T(v)`` (the numeric encoding the
GNN consumes), and typed edges. Graphs may be directed (MALNET-style
call graphs) or undirected (molecules, social threads).

Node ids are contiguous integers; :meth:`Graph.induced_subgraph` returns
the relabelled subgraph together with the mapping back to parent ids so
explanation structures can always be traced to the original graph.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.exceptions import GraphError

EdgeKey = Tuple[int, int]


def _edge_key(u: int, v: int, directed: bool) -> EdgeKey:
    """Canonical dictionary key for an edge."""
    if directed or u <= v:
        return (u, v)
    return (v, u)


class Graph:
    """An attributed graph with typed nodes and typed edges.

    Parameters
    ----------
    node_types:
        Integer type per node; length defines the node count.
    features:
        Optional ``(n, d)`` float feature matrix. When omitted, a one-hot
        encoding of ``node_types`` is materialized lazily by
        :meth:`feature_matrix`.
    directed:
        Whether edges are directed.
    """

    __slots__ = (
        "node_types",
        "_features",
        "directed",
        "_adj",
        "_radj",
        "edge_types",
        "_content_key",
        "_sym_adj",
    )

    def __init__(
        self,
        node_types: Sequence[int],
        features: Optional[np.ndarray] = None,
        directed: bool = False,
    ) -> None:
        self.node_types = np.asarray(node_types, dtype=np.int64)
        if self.node_types.ndim != 1:
            raise GraphError("node_types must be one-dimensional")
        n = len(self.node_types)
        if features is not None:
            features = np.asarray(features, dtype=np.float64)
            if features.ndim != 2 or features.shape[0] != n:
                raise GraphError(
                    f"features must have shape ({n}, d), got {features.shape}"
                )
        self._features = features
        self.directed = bool(directed)
        self._adj: List[Set[int]] = [set() for _ in range(n)]
        # reverse adjacency, only maintained for directed graphs
        self._radj: Optional[List[Set[int]]] = (
            [set() for _ in range(n)] if directed else None
        )
        self.edge_types: Dict[EdgeKey, int] = {}
        #: memo for matching.context.graph_content_key (type/edge
        #: digest; features excluded — matching never reads them);
        #: invalidated on mutation
        self._content_key: Optional[str] = None
        #: memo for gnn.batch.symmetrized_adjacency (read-only dense
        #: array shared across verifier launches); invalidated on
        #: mutation like the content key
        self._sym_adj: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int, edge_type: int = 0) -> None:
        """Add edge ``(u, v)``; idempotent for repeated identical edges."""
        n = self.n_nodes
        if not (0 <= u < n and 0 <= v < n):
            raise GraphError(f"edge ({u}, {v}) references a missing node (n={n})")
        if u == v:
            raise GraphError(f"self-loop on node {u} is not allowed")
        key = _edge_key(u, v, self.directed)
        existing = self.edge_types.get(key)
        if existing is not None and existing != edge_type:
            raise GraphError(
                f"edge {key} already present with type {existing}, got {edge_type}"
            )
        self.edge_types[key] = edge_type
        self._content_key = None
        self._sym_adj = None
        self._adj[u].add(v)
        if self.directed:
            assert self._radj is not None
            self._radj[v].add(u)
        else:
            self._adj[v].add(u)

    def add_edges(self, edges: Iterable[Tuple[int, int]], edge_type: int = 0) -> None:
        for u, v in edges:
            self.add_edge(u, v, edge_type)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self.node_types)

    @property
    def n_edges(self) -> int:
        return len(self.edge_types)

    def nodes(self) -> range:
        return range(self.n_nodes)

    def edges(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(u, v, edge_type)`` triples (canonical orientation)."""
        for (u, v), t in self.edge_types.items():
            yield u, v, t

    def node_type(self, v: int) -> int:
        return int(self.node_types[v])

    def edge_type(self, u: int, v: int) -> int:
        key = _edge_key(u, v, self.directed)
        try:
            return self.edge_types[key]
        except KeyError:
            raise GraphError(f"no edge ({u}, {v})") from None

    def has_edge(self, u: int, v: int) -> bool:
        return _edge_key(u, v, self.directed) in self.edge_types

    def neighbors(self, v: int) -> Set[int]:
        """Out-neighbors for directed graphs; all neighbors otherwise."""
        return self._adj[v]

    def in_neighbors(self, v: int) -> Set[int]:
        if not self.directed:
            return self._adj[v]
        assert self._radj is not None
        return self._radj[v]

    def all_neighbors(self, v: int) -> Set[int]:
        """Neighbors ignoring direction (used by connectivity / k-hop)."""
        if not self.directed:
            return self._adj[v]
        assert self._radj is not None
        return self._adj[v] | self._radj[v]

    def degree(self, v: int) -> int:
        return len(self.all_neighbors(v))

    @property
    def features(self) -> Optional[np.ndarray]:
        return self._features

    def feature_matrix(self, n_types: Optional[int] = None) -> np.ndarray:
        """Feature matrix the GNN consumes.

        Falls back to a one-hot encoding of node types when no explicit
        features were supplied (the paper's default for feature-less
        datasets is a constant feature; one-hot of the single type 0
        degenerates to exactly that).
        """
        if self._features is not None:
            return self._features
        width = n_types if n_types is not None else int(self.node_types.max()) + 1
        onehot = np.zeros((self.n_nodes, width), dtype=np.float64)
        onehot[np.arange(self.n_nodes), self.node_types] = 1.0
        return onehot

    def adjacency_matrix(self) -> np.ndarray:
        """Dense ``(n, n)`` 0/1 adjacency (symmetric when undirected)."""
        n = self.n_nodes
        A = np.zeros((n, n), dtype=np.float64)
        for (u, v) in self.edge_types:
            A[u, v] = 1.0
            if not self.directed:
                A[v, u] = 1.0
        return A

    # ------------------------------------------------------------------
    # structure operations
    # ------------------------------------------------------------------
    def induced_subgraph(self, nodes: Iterable[int]) -> Tuple["Graph", List[int]]:
        """Node-induced subgraph and the list mapping new ids -> old ids."""
        keep = sorted(set(int(v) for v in nodes))
        n = self.n_nodes
        for v in keep:
            if not 0 <= v < n:
                raise GraphError(f"node {v} not in graph (n={n})")
        remap = {old: new for new, old in enumerate(keep)}
        features = None if self._features is None else self._features[keep]
        sub = Graph(self.node_types[keep], features=features, directed=self.directed)
        for (u, v), t in self.edge_types.items():
            if u in remap and v in remap:
                sub.add_edge(remap[u], remap[v], t)
        return sub, keep

    def remove_nodes(self, nodes: Iterable[int]) -> Tuple["Graph", List[int]]:
        """Graph with ``nodes`` deleted (the paper's ``G \\ G_s``)."""
        drop = set(int(v) for v in nodes)
        return self.induced_subgraph(v for v in self.nodes() if v not in drop)

    def connected_components(self) -> List[List[int]]:
        """Weakly connected components, each as a sorted node list."""
        seen: Set[int] = set()
        components: List[List[int]] = []
        for start in self.nodes():
            if start in seen:
                continue
            stack = [start]
            seen.add(start)
            comp = [start]
            while stack:
                u = stack.pop()
                for w in self.all_neighbors(u):
                    if w not in seen:
                        seen.add(w)
                        comp.append(w)
                        stack.append(w)
            components.append(sorted(comp))
        return components

    def is_connected(self) -> bool:
        if self.n_nodes == 0:
            return False
        return len(self.connected_components()) == 1

    def k_hop_nodes(self, center: int, hops: int) -> Set[int]:
        """Nodes within ``hops`` (undirected) hops of ``center``, inclusive."""
        if not 0 <= center < self.n_nodes:
            raise GraphError(f"node {center} not in graph")
        frontier = {center}
        seen = {center}
        for _ in range(hops):
            nxt: Set[int] = set()
            for u in frontier:
                nxt |= self.all_neighbors(u) - seen
            if not nxt:
                break
            seen |= nxt
            frontier = nxt
        return seen

    def is_connected_subset(self, nodes: Iterable[int]) -> bool:
        """Whether ``nodes`` induce a (weakly) connected subgraph."""
        subset = set(int(v) for v in nodes)
        if not subset:
            return False
        start = next(iter(subset))
        stack = [start]
        seen = {start}
        while stack:
            u = stack.pop()
            for w in self.all_neighbors(u):
                if w in subset and w not in seen:
                    seen.add(w)
                    stack.append(w)
        return seen == subset

    def content_key(self) -> str:
        """Stable digest of (directed flag, node types, typed edges).

        Two graphs share a key iff they are identical under the
        *identity* node mapping — features excluded (pattern matching
        never reads them). Memoized; mutation via :meth:`add_edge`
        invalidates. The matching tier keys its process-wide caches on
        this (see docs/matching.md).
        """
        if self._content_key is None:
            import hashlib

            h = hashlib.sha1()
            h.update(b"d" if self.directed else b"u")
            h.update(np.ascontiguousarray(self.node_types).tobytes())
            for (u, v), t in sorted(self.edge_types.items()):
                h.update(f"{u},{v},{t};".encode())
            self._content_key = h.hexdigest()
        return self._content_key

    # ------------------------------------------------------------------
    # dunder / misc
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        g = Graph(
            self.node_types.copy(),
            features=None if self._features is None else self._features.copy(),
            directed=self.directed,
        )
        for (u, v), t in self.edge_types.items():
            g.add_edge(u, v, t)
        return g

    def __getstate__(self) -> Dict[str, object]:
        # per-process memos: the content key is tiny (keep it), the
        # dense adjacency memo is n^2 floats — rebuild instead of ship
        state = {slot: getattr(self, slot) for slot in self.__slots__}
        state["_sym_adj"] = None
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)

    def __eq__(self, other: object) -> bool:
        """Structural equality under the identity node mapping."""
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self.directed == other.directed
            and np.array_equal(self.node_types, other.node_types)
            and self.edge_types == other.edge_types
            and (
                (self._features is None and other._features is None)
                or (
                    self._features is not None
                    and other._features is not None
                    and np.array_equal(self._features, other._features)
                )
            )
        )

    def __hash__(self) -> int:  # pragma: no cover - graphs are mutable
        # the unhashable-type protocol requires builtin TypeError:
        # set()/dict use would misreport a ReproError
        raise TypeError(  # repro: noqa[REPRO402]
            "Graph is unhashable; use matching.canonical keys"
        )

    def __repr__(self) -> str:
        kind = "DiGraph" if self.directed else "Graph"
        return f"<{kind} n={self.n_nodes} m={self.n_edges}>"


def graph_from_edges(
    node_types: Sequence[int],
    edges: Iterable[Tuple[int, int]],
    features: Optional[np.ndarray] = None,
    directed: bool = False,
    edge_type: int = 0,
) -> Graph:
    """Convenience constructor from a node-type list and edge list."""
    g = Graph(node_types, features=features, directed=directed)
    g.add_edges(edges, edge_type)
    return g


__all__ = ["Graph", "graph_from_edges"]
