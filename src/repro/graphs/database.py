"""Graph databases: the collection ``G = {G_1, ..., G_m}`` (§2.1).

A :class:`GraphDatabase` holds the graphs a GNN classifies, optional
ground-truth labels, and helpers to group graphs by a classifier's
predicted label (the paper's *label groups* ``G^l``).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.exceptions import DatasetError
from repro.graphs.graph import Graph


class GraphDatabase:
    """A list of graphs with optional ground-truth class labels."""

    def __init__(
        self,
        graphs: Sequence[Graph],
        labels: Optional[Sequence[Hashable]] = None,
        name: str = "database",
    ) -> None:
        self.graphs: List[Graph] = list(graphs)
        if labels is not None and len(labels) != len(self.graphs):
            raise DatasetError(
                f"labels length {len(labels)} != graph count {len(self.graphs)}"
            )
        self.labels: Optional[List[Hashable]] = (
            None if labels is None else list(labels)
        )
        self.name = name
        #: memoized columnar CSR mirror (see repro.graphs.columnar);
        #: built lazily, patched by :meth:`extend`, never pickled
        self._columnar = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.graphs)

    def __iter__(self) -> Iterator[Graph]:
        return iter(self.graphs)

    def __getitem__(self, index: int) -> Graph:
        return self.graphs[index]

    def label_of(self, index: int) -> Hashable:
        if self.labels is None:
            raise DatasetError(f"database {self.name!r} has no labels")
        return self.labels[index]

    @property
    def n_classes(self) -> int:
        if self.labels is None:
            raise DatasetError(f"database {self.name!r} has no labels")
        return len(set(self.labels))

    # ------------------------------------------------------------------
    def total_nodes(self) -> int:
        return sum(g.n_nodes for g in self.graphs)

    def total_edges(self) -> int:
        return sum(g.n_edges for g in self.graphs)

    def label_groups(
        self, predicted: Optional[Sequence[Hashable]] = None
    ) -> Dict[Hashable, List[int]]:
        """Indices grouped by label (predicted labels if given, else truth).

        This is the paper's ``G^l`` partition: explanation views are
        built per *assigned* label, so callers normally pass the
        classifier's predictions.
        """
        labels = list(predicted) if predicted is not None else self.labels
        if labels is None:
            raise DatasetError("no labels available to group by")
        if len(labels) != len(self.graphs):
            raise DatasetError(
                f"got {len(labels)} labels for {len(self.graphs)} graphs"
            )
        groups: Dict[Hashable, List[int]] = {}
        for i, l in enumerate(labels):
            groups.setdefault(l, []).append(i)
        return groups

    def extend(
        self,
        graphs: Sequence[Graph],
        labels: Optional[Sequence[Hashable]] = None,
    ) -> range:
        """Append graphs (a streamed chunk arrival); returns their indices.

        Labelled databases must receive one label per graph; unlabelled
        ones must receive none — partial labelling would silently break
        :meth:`label_of` for the existing prefix.
        """
        graphs = list(graphs)
        if self.labels is not None:
            if labels is None or len(labels) != len(graphs):
                raise DatasetError(
                    f"labelled database {self.name!r} needs one label per "
                    f"appended graph, got {None if labels is None else len(labels)} "
                    f"for {len(graphs)} graphs"
                )
        elif labels is not None:
            raise DatasetError(
                f"database {self.name!r} is unlabelled; cannot append labels"
            )
        start = len(self.graphs)
        self.graphs.extend(graphs)
        if self.labels is not None and labels is not None:
            self.labels.extend(labels)
        if self._columnar is not None:
            self._columnar.extend(graphs, labels=labels, start=start)
        return range(start, len(self.graphs))

    def columnar(self):
        """The memoized columnar CSR mirror of this database.

        Built on first use (one vectorized pass per graph) and patched
        incrementally by :meth:`extend`; see docs/columnar.md. Consumers
        must go through ``ColumnarDatabase.fresh_slice`` when the graph
        may have mutated since the build.
        """
        if self._columnar is None:
            from repro.graphs.columnar import ColumnarDatabase

            self._columnar = ColumnarDatabase.from_database(self)
        return self._columnar

    def __getstate__(self) -> Dict[str, object]:
        # fork-pool workers receive databases via pickled initargs; the
        # columnar mirror is pure derived data — rebuild, don't ship
        state = dict(self.__dict__)
        state["_columnar"] = None
        return state

    def subset(self, indices: Iterable[int], name: Optional[str] = None) -> "GraphDatabase":
        idx = list(indices)
        labels = None if self.labels is None else [self.labels[i] for i in idx]
        return GraphDatabase(
            [self.graphs[i] for i in idx],
            labels=labels,
            name=name or f"{self.name}/subset",
        )

    def split(
        self,
        fractions: Sequence[float] = (0.8, 0.1, 0.1),
        seed: Optional[int] = 0,
    ) -> List["GraphDatabase"]:
        """Random split into parts, e.g. train/val/test = (0.8, 0.1, 0.1)."""
        if abs(sum(fractions) - 1.0) > 1e-9:
            raise DatasetError(f"fractions must sum to 1, got {fractions}")
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self.graphs))
        parts: List[GraphDatabase] = []
        start = 0
        for i, frac in enumerate(fractions):
            if i == len(fractions) - 1:
                take = order[start:]
            else:
                count = int(round(frac * len(self.graphs)))
                take = order[start : start + count]
                start += count
            parts.append(self.subset(take.tolist(), name=f"{self.name}/part{i}"))
        return parts

    def __repr__(self) -> str:
        labelled = "unlabelled" if self.labels is None else f"{self.n_classes} classes"
        return f"<GraphDatabase {self.name!r} |G|={len(self)} {labelled}>"


__all__ = ["GraphDatabase"]
