"""Conversion to/from :mod:`networkx` graphs.

Used by tests (networkx's ``GraphMatcher`` is the isomorphism oracle)
and available to users who want to visualize or post-process
explanation structures with the networkx ecosystem.
"""

from __future__ import annotations

import networkx as nx

from repro.graphs.graph import Graph


def to_networkx(graph: Graph) -> "nx.Graph":
    """Convert to ``nx.Graph``/``nx.DiGraph`` with ``type`` attributes."""
    g = nx.DiGraph() if graph.directed else nx.Graph()
    for v in graph.nodes():
        g.add_node(v, type=graph.node_type(v))
    for u, v, t in graph.edges():
        g.add_edge(u, v, type=t)
    return g


def from_networkx(g: "nx.Graph") -> Graph:
    """Convert from networkx; nodes are relabelled to ``0..n-1``.

    Node/edge ``type`` attributes default to 0 when absent.
    """
    order = sorted(g.nodes())
    remap = {node: i for i, node in enumerate(order)}
    types = [int(g.nodes[node].get("type", 0)) for node in order]
    out = Graph(types, directed=g.is_directed())
    for u, v, data in g.edges(data=True):
        out.add_edge(remap[u], remap[v], int(data.get("type", 0)))
    return out


__all__ = ["to_networkx", "from_networkx"]
