"""Graph substrate: attributed graphs, patterns, views, and databases."""

from repro.graphs.database import GraphDatabase
from repro.graphs.graph import Graph, graph_from_edges
from repro.graphs.pattern import Pattern
from repro.graphs.view import ExplanationSubgraph, ExplanationView, ViewSet

__all__ = [
    "Graph",
    "graph_from_edges",
    "GraphDatabase",
    "Pattern",
    "ExplanationSubgraph",
    "ExplanationView",
    "ViewSet",
]
