"""Graph substrate: attributed graphs, patterns, views, and databases."""

from repro.graphs.columnar import (
    ColumnarDatabase,
    ColumnarGroup,
    GraphSlice,
    columnar_slice_of,
    edge_index_arrays,
)
from repro.graphs.database import GraphDatabase
from repro.graphs.graph import Graph, graph_from_edges
from repro.graphs.pattern import Pattern
from repro.graphs.view import ExplanationSubgraph, ExplanationView, ViewSet

__all__ = [
    "Graph",
    "graph_from_edges",
    "GraphDatabase",
    "ColumnarDatabase",
    "ColumnarGroup",
    "GraphSlice",
    "columnar_slice_of",
    "edge_index_arrays",
    "Pattern",
    "ExplanationSubgraph",
    "ExplanationView",
    "ViewSet",
]
