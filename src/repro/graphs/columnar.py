"""Columnar CSR storage for graph databases (the fast-tier host layout).

A :class:`ColumnarDatabase` re-materializes a
:class:`~repro.graphs.database.GraphDatabase` as one contiguous CSR per
label group — ``indptr`` / ``indices`` / ``edge_type`` / ``node_type``
arrays plus per-graph offset tables, the ``csc_sampling_graph``-style
layout GNN dataloaders use. Neighbor ids are stored **graph-local**
(neighbor minus the graph's node offset), so a per-graph slice of the
group arrays is directly a standalone CSR: consumers read zero-copy
views instead of walking Python edge dicts per host.

Three flavors are kept per graph:

* ``all`` — the direction-ignoring neighbor union, ascending per node.
  For undirected graphs this carries the aligned edge-type column; for
  directed graphs the union is deduplicated (a reciprocal pair counts
  one neighbor, matching ``Graph.degree``) and the type column is a
  ``-1`` placeholder — typed questions on directed hosts go through
  the directional flavors.
* ``out`` / ``in`` — directional CSR/CSC with aligned edge types, built
  only for groups containing a directed graph (undirected members
  reuse their ``all`` arrays there).

Who consumes it:

* ``matching.MatchContext`` builds its node-type/degree arrays, packed
  adjacency rows, and signature counts from a slice in a few vectorized
  passes (``plan_cache.contexts_for_group`` builds a whole label
  group's contexts through one shared packed-row table);
* ``gnn.batch`` scatters whole-shard ``(B, n, n)`` adjacency batches
  straight from the CSR for stacked database forwards;
* ``gnn.sparse`` assembles block-diagonal shard operators without
  re-walking edge dicts.

The layout is **build-time content**: graphs are mutable, so every
slice records the graph's content key at build time and consumers call
:meth:`ColumnarDatabase.fresh_slice` (a memoized-hash string compare)
before trusting a slice; a stale slice simply falls back to the
per-graph construction path. ``GraphDatabase.columnar()`` memoizes one
instance per database and ``GraphDatabase.extend`` /
``ViewIndex.extend_db`` patch it incrementally — appended chunks are
columnarized and concatenated onto the group arrays without touching
(or re-reading) the existing prefix. See docs/columnar.md.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import DatasetError
from repro.graphs.graph import Graph

#: groups whose widest member exceeds this node count do not
#: materialize the shared packed-row table (mirrors the lazy-row
#: policy of ``matching.MatchContext``: no dense ``n x n/64`` tables
#: on SYNTHETIC-scale hosts)
ROW_TABLE_MAX_NODES = 4096

#: CSR flavors stored per graph
KIND_ALL = "all"
KIND_OUT = "out"
KIND_IN = "in"


def edge_index_arrays(graph: Graph) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(u, v, t)`` int64 arrays of a graph's canonical edge triples.

    One ``fromiter`` pass over the edge dict — the single remaining
    touch of Python-object storage when columnarizing; everything
    downstream is array ops.
    """
    m = graph.n_edges
    if m == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    flat = np.fromiter(
        (x for (u, v), t in graph.edge_types.items() for x in (u, v, t)),
        dtype=np.int64,
        count=3 * m,
    ).reshape(m, 3)
    return (
        np.ascontiguousarray(flat[:, 0]),
        np.ascontiguousarray(flat[:, 1]),
        np.ascontiguousarray(flat[:, 2]),
    )


def _csr_from_pairs(
    n: int,
    rows: np.ndarray,
    cols: np.ndarray,
    types: Optional[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Local CSR ``(indptr, indices, etype)`` with ascending columns."""
    order = np.lexsort((cols, rows))
    cols = cols[order]
    if types is None:
        types = np.full(len(cols), -1, dtype=np.int64)
    else:
        types = types[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(rows, minlength=n), out=indptr[1:])
    return indptr, cols, types


def _graph_columns(graph: Graph) -> Dict[str, Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Per-flavor local CSR arrays for one graph."""
    n = graph.n_nodes
    u, v, t = edge_index_arrays(graph)
    if not graph.directed:
        rows = np.concatenate([u, v])
        cols = np.concatenate([v, u])
        tt = np.concatenate([t, t])
        all_csr = _csr_from_pairs(n, rows, cols, tt)
        return {KIND_ALL: all_csr, KIND_OUT: all_csr, KIND_IN: all_csr}
    out_csr = _csr_from_pairs(n, u, v, t)
    in_csr = _csr_from_pairs(n, v, u, t)
    # direction-ignoring union, deduplicated so reciprocal edge pairs
    # count one neighbor (Graph.degree semantics)
    width = np.int64(max(n, 1))
    code = np.unique(np.concatenate([u, v]) * width + np.concatenate([v, u]))
    all_csr = (
        np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(np.bincount(code // width, minlength=n))]
        ),
        code % width,
        np.full(code.size, -1, dtype=np.int64),
    )
    return {KIND_ALL: all_csr, KIND_OUT: out_csr, KIND_IN: in_csr}


class GraphSlice:
    """Zero-copy per-graph view into a :class:`ColumnarGroup`.

    ``indptr(kind)`` is the graph-local CSR pointer (a small subtract
    of the global slice); ``indices``/``etypes``/``degrees``/``rows``
    are views into the group arrays.
    """

    __slots__ = ("group", "pos", "n", "directed", "content_key")

    def __init__(self, group: "ColumnarGroup", pos: int) -> None:
        self.group = group
        self.pos = pos
        self.n = int(group.node_offset[pos + 1] - group.node_offset[pos])
        self.directed = bool(group.directed[pos])
        self.content_key = group.content_keys[pos]

    # ------------------------------------------------------------------
    @property
    def node_type(self) -> np.ndarray:
        o = self.group.node_offset
        return self.group.node_type[o[self.pos] : o[self.pos + 1]]

    def indptr(self, kind: str = KIND_ALL) -> np.ndarray:
        """Graph-local CSR pointer array (length ``n + 1``)."""
        o = self.group.node_offset
        glob = self.group.indptr(kind)[o[self.pos] : o[self.pos + 1] + 1]
        return glob - glob[0] if len(glob) and glob[0] else glob

    def indices(self, kind: str = KIND_ALL) -> np.ndarray:
        """Graph-local neighbor ids, ascending per node (a view)."""
        lo, hi = self.group.edge_bounds(self.pos, kind)
        return self.group.indices(kind)[lo:hi]

    def etypes(self, kind: str = KIND_ALL) -> np.ndarray:
        """Edge types aligned with :meth:`indices` (a view).

        ``-1`` placeholders on the directed ``all`` flavor — typed
        reads there go through ``out``/``in``.
        """
        lo, hi = self.group.edge_bounds(self.pos, kind)
        return self.group.etypes(kind)[lo:hi]

    def degrees(self, kind: str = KIND_ALL) -> np.ndarray:
        """Per-node neighbor counts (``all`` equals ``Graph.degree``)."""
        o = self.group.node_offset
        return self.group.degree_table(kind)[o[self.pos] : o[self.pos + 1]]

    def row_ids(self, kind: str = KIND_ALL) -> np.ndarray:
        """Local source-node id per CSR entry (for bincount scatters)."""
        return np.repeat(np.arange(self.n, dtype=np.int64), self.degrees(kind))

    def rows(self, kind: str = KIND_ALL) -> Optional[np.ndarray]:
        """Packed ``(n, n_words)`` bitset rows, from the shared group
        table when the group is small enough (``None`` otherwise)."""
        return self.group.rows_of(self.pos, kind)

    def sig_counts(self, kind: str, etype: int, ntype: int) -> np.ndarray:
        """Per-node count of ``(etype, ntype)`` neighbors (a view).

        Sliced out of the group-level signature table, so the masked
        bincount is paid once per group, not once per graph."""
        o = self.group.node_offset
        table = self.group.sig_table(kind, etype, ntype)
        return table[o[self.pos] : o[self.pos + 1]]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<GraphSlice pos={self.pos} n={self.n} directed={self.directed}>"


class ColumnarGroup:
    """One label group's contiguous columnar arrays."""

    def __init__(self, db_indices: Sequence[int], graphs: Sequence[Graph]) -> None:
        self.db_indices: List[int] = [int(i) for i in db_indices]
        self.content_keys: List[str] = []
        self.directed = np.zeros(0, dtype=bool)
        self.node_offset = np.zeros(1, dtype=np.int64)
        self.node_type = np.zeros(0, dtype=np.int64)
        self.any_directed = False
        self._indptr: Dict[str, np.ndarray] = {
            KIND_ALL: np.zeros(1, dtype=np.int64)
        }
        self._indices: Dict[str, np.ndarray] = {KIND_ALL: np.zeros(0, dtype=np.int64)}
        self._etypes: Dict[str, np.ndarray] = {KIND_ALL: np.zeros(0, dtype=np.int64)}
        self._edge_offset: Dict[str, np.ndarray] = {
            KIND_ALL: np.zeros(1, dtype=np.int64)
        }
        #: memoized shared packed-row tables, one per flavor
        self._row_tables: Dict[str, Optional[np.ndarray]] = {}
        #: memoized group-wide signature-count tables
        self._sig_tables: Dict[Tuple[str, int, int], np.ndarray] = {}
        #: memoized per-entry/per-node derived arrays (source ids,
        #: degree tables, neighbor types), keyed per flavor
        self._entry_rows: Dict[object, np.ndarray] = {}
        self._append(graphs)

    # ------------------------------------------------------------------
    # construction / incremental patching
    # ------------------------------------------------------------------
    def _ensure_directional(self) -> None:
        """Materialize ``out``/``in`` columns (first directed member)."""
        if KIND_OUT in self._indptr:
            return
        for kind in (KIND_OUT, KIND_IN):
            self._indptr[kind] = self._indptr[KIND_ALL].copy()
            self._indices[kind] = self._indices[KIND_ALL].copy()
            self._etypes[kind] = self._etypes[KIND_ALL].copy()
            self._edge_offset[kind] = self._edge_offset[KIND_ALL].copy()

    def _append(self, graphs: Sequence[Graph]) -> None:
        """Columnarize ``graphs`` and concatenate onto the arrays."""
        if not graphs:
            return
        if any(g.directed for g in graphs):
            self.any_directed = True
        if not self.any_directed:
            # the common all-undirected group: one whole-chunk build —
            # a single lexsort/bincount pass instead of per-graph CSRs
            self._append_undirected(graphs)
            self._invalidate_tables()
            return
        kinds = [KIND_ALL, KIND_OUT, KIND_IN]
        self._ensure_directional()
        new_types = [self.node_type]
        new_offsets = [self.node_offset]
        parts: Dict[str, Dict[str, list]] = {
            k: {"indptr": [self._indptr[k]], "indices": [self._indices[k]],
                "etypes": [self._etypes[k]], "eoff": [self._edge_offset[k]]}
            for k in kinds
        }
        node_base = int(self.node_offset[-1])
        for g in graphs:
            self.content_keys.append(g.content_key())
            cols = _graph_columns(g)
            new_types.append(np.asarray(g.node_types, dtype=np.int64))
            new_offsets.append(
                np.array([node_base + g.n_nodes], dtype=np.int64)
            )
            node_base += g.n_nodes
            for kind in kinds:
                indptr, indices, etypes = cols[kind]
                p = parts[kind]
                base = int(p["eoff"][-1][-1])
                p["indptr"].append(indptr[1:] + base)
                p["indices"].append(indices)
                p["etypes"].append(etypes)
                p["eoff"].append(np.array([base + indices.size], dtype=np.int64))
        self.directed = np.concatenate(
            [self.directed, np.array([g.directed for g in graphs], dtype=bool)]
        )
        self.node_type = np.concatenate(new_types)
        self.node_offset = np.concatenate(new_offsets)
        for kind in kinds:
            p = parts[kind]
            self._indptr[kind] = np.concatenate(p["indptr"])
            self._indices[kind] = np.concatenate(p["indices"])
            self._etypes[kind] = np.concatenate(p["etypes"])
            self._edge_offset[kind] = np.concatenate(p["eoff"])
        self._invalidate_tables()

    def _append_undirected(self, graphs: Sequence[Graph]) -> None:
        """Whole-chunk vectorized build for an all-undirected group.

        Every graph's edge triples are gathered once, shifted to
        global source ids, and sorted by ``(global row, local col)``
        in one lexsort — because global rows are monotone in graph
        order, the result is exactly the per-graph CSRs concatenated.
        """
        node_base = int(self.node_offset[-1])
        edge_base = int(self._edge_offset[KIND_ALL][-1])
        us, vs, ts = [], [], []
        n_nodes = np.empty(len(graphs), dtype=np.int64)
        n_entries = np.empty(len(graphs), dtype=np.int64)
        types = [self.node_type]
        for i, g in enumerate(graphs):
            self.content_keys.append(g.content_key())
            u, v, t = edge_index_arrays(g)
            us.append(u)
            vs.append(v)
            ts.append(t)
            n_nodes[i] = g.n_nodes
            n_entries[i] = 2 * u.size
            types.append(np.asarray(g.node_types, dtype=np.int64))
        offs = node_base + np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(n_nodes)]
        )
        u_all = np.concatenate(us)
        v_all = np.concatenate(vs)
        t_all = np.concatenate(ts)
        shift = np.repeat(offs[:-1], [u.size for u in us])
        rows = np.concatenate([u_all + shift, v_all + shift])
        cols = np.concatenate([v_all, u_all])
        tt = np.concatenate([t_all, t_all])
        order = np.lexsort((cols, rows))
        total_new = int(offs[-1]) - node_base
        counts = np.bincount(rows - node_base, minlength=total_new)
        self.directed = np.concatenate(
            [self.directed, np.zeros(len(graphs), dtype=bool)]
        )
        self.node_type = np.concatenate(types)
        self.node_offset = np.concatenate([self.node_offset, offs[1:]])
        self._indptr[KIND_ALL] = np.concatenate(
            [self._indptr[KIND_ALL], edge_base + np.cumsum(counts)]
        )
        self._indices[KIND_ALL] = np.concatenate(
            [self._indices[KIND_ALL], cols[order]]
        )
        self._etypes[KIND_ALL] = np.concatenate(
            [self._etypes[KIND_ALL], tt[order]]
        )
        self._edge_offset[KIND_ALL] = np.concatenate(
            [self._edge_offset[KIND_ALL], edge_base + np.cumsum(n_entries)]
        )

    def _invalidate_tables(self) -> None:
        self._row_tables.clear()
        self._sig_tables.clear()
        self._entry_rows.clear()

    def extend(self, db_indices: Sequence[int], graphs: Sequence[Graph]) -> None:
        """Append a streamed chunk; the existing prefix is untouched."""
        self.db_indices.extend(int(i) for i in db_indices)
        self._append(graphs)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def n_graphs(self) -> int:
        return len(self.db_indices)

    @property
    def total_nodes(self) -> int:
        return int(self.node_offset[-1])

    @property
    def max_nodes(self) -> int:
        if not self.n_graphs:
            return 0
        return int(np.diff(self.node_offset).max())

    def _resolve_kind(self, kind: str) -> str:
        if kind in (KIND_OUT, KIND_IN) and kind not in self._indptr:
            return KIND_ALL  # all-undirected group: out == in == all
        return kind

    def indptr(self, kind: str = KIND_ALL) -> np.ndarray:
        return self._indptr[self._resolve_kind(kind)]

    def indices(self, kind: str = KIND_ALL) -> np.ndarray:
        return self._indices[self._resolve_kind(kind)]

    def etypes(self, kind: str = KIND_ALL) -> np.ndarray:
        return self._etypes[self._resolve_kind(kind)]

    def edge_bounds(self, pos: int, kind: str = KIND_ALL) -> Tuple[int, int]:
        eoff = self._edge_offset[self._resolve_kind(kind)]
        return int(eoff[pos]), int(eoff[pos + 1])

    def slice(self, pos: int) -> GraphSlice:
        return GraphSlice(self, pos)

    # ------------------------------------------------------------------
    # shared packed-row table (the one-shot group context build)
    # ------------------------------------------------------------------
    def row_table(self, kind: str = KIND_ALL) -> Optional[np.ndarray]:
        """``(total_nodes, words(max_n))`` packed bitset rows, memoized.

        Row ``node_offset[i] + v`` holds graph ``i``'s node ``v``'s
        neighbor bitset in the first ``words(n_i)`` words (the rest
        stay zero) — one ``bitwise_or.at`` scatter covers every graph
        in the group, and per-graph contexts slice views out of it.
        ``None`` when the widest member exceeds
        :data:`ROW_TABLE_MAX_NODES`.
        """
        kind = self._resolve_kind(kind)
        if kind in self._row_tables:
            return self._row_tables[kind]
        if self.max_nodes > ROW_TABLE_MAX_NODES:
            self._row_tables[kind] = None
            return None
        words = (self.max_nodes + 63) >> 6
        table = np.zeros((self.total_nodes, max(words, 1)), dtype=np.uint64)
        cols = self._indices[kind]
        rows = self.entry_rows(kind)
        np.bitwise_or.at(
            table,
            (rows, cols >> np.int64(6)),
            np.uint64(1) << (cols & np.int64(63)).astype(np.uint64),
        )
        self._row_tables[kind] = table
        return table

    def rows_of(self, pos: int, kind: str = KIND_ALL) -> Optional[np.ndarray]:
        """Graph ``pos``'s ``(n, words(n))`` packed rows (a view)."""
        table = self.row_table(kind)
        if table is None:
            return None
        lo, hi = int(self.node_offset[pos]), int(self.node_offset[pos + 1])
        n = hi - lo
        return table[lo:hi, : max((n + 63) >> 6, 1)]

    # ------------------------------------------------------------------
    # group-wide signature tables (the vectorized pruning-table build)
    # ------------------------------------------------------------------
    def degree_table(self, kind: str = KIND_ALL) -> np.ndarray:
        """Per-node neighbor counts for the whole group, memoized."""
        kind = self._resolve_kind(kind)
        table = self._entry_rows.get(("deg", kind))
        if table is None:
            table = np.diff(self._indptr[kind])
            self._entry_rows[("deg", kind)] = table
        return table

    def entry_rows(self, kind: str = KIND_ALL) -> np.ndarray:
        """Global source-node id per CSR entry, memoized per flavor."""
        kind = self._resolve_kind(kind)
        rows = self._entry_rows.get(kind)
        if rows is None:
            rows = np.repeat(
                np.arange(self.total_nodes, dtype=np.int64),
                self.degree_table(kind),
            )
            self._entry_rows[kind] = rows
        return rows

    def entry_neighbor_types(self, kind: str = KIND_ALL) -> np.ndarray:
        """Neighbor node type per CSR entry, memoized per flavor."""
        kind = self._resolve_kind(kind)
        types = self._entry_rows.get(("nt", kind))
        if types is None:
            shift = np.repeat(
                self.node_offset[:-1], np.diff(self._edge_offset[kind])
            )
            types = self.node_type[self._indices[kind] + shift]
            self._entry_rows[("nt", kind)] = types
        return types

    def sig_table(self, kind: str, etype: int, ntype: int) -> np.ndarray:
        """Per-node ``(etype, ntype)`` neighbor counts, whole group.

        One masked bincount over the group CSR; per-graph contexts
        slice views out of it (``GraphSlice.sig_counts``). Directed
        members' regions under the ``all`` flavor count the ``-1``
        type placeholders and are garbage by construction — their
        contexts never read the undirected key (``_typed_kind``
        routes them to ``out``/``in`` or the per-edge fallback).
        """
        kind = self._resolve_kind(kind)
        key = (kind, etype, ntype)
        table = self._sig_tables.get(key)
        if table is None:
            sel = (self._etypes[kind] == etype) & (
                self.entry_neighbor_types(kind) == ntype
            )
            table = np.bincount(
                self.entry_rows(kind)[sel], minlength=self.total_nodes
            ).astype(np.int64, copy=False)
            self._sig_tables[key] = table
        return table


class ColumnarDatabase:
    """Columnar CSR mirror of a :class:`GraphDatabase` (one group per label)."""

    def __init__(
        self,
        groups: Dict[Hashable, ColumnarGroup],
        name: str = "columnar",
    ) -> None:
        self.groups = groups
        self.name = name
        #: db index -> (group label, position within group)
        self._where: Dict[int, Tuple[Hashable, int]] = {}
        for label, group in groups.items():
            for pos, idx in enumerate(group.db_indices):
                self._where[idx] = (label, pos)

    # ------------------------------------------------------------------
    @classmethod
    def from_graphs(
        cls,
        graphs: Sequence[Graph],
        labels: Optional[Sequence[Hashable]] = None,
        name: str = "columnar",
    ) -> "ColumnarDatabase":
        if labels is not None and len(labels) != len(graphs):
            raise DatasetError(
                f"labels length {len(labels)} != graph count {len(graphs)}"
            )
        members: Dict[Hashable, List[int]] = {}
        if labels is None:
            members[None] = list(range(len(graphs)))
        else:
            for i, l in enumerate(labels):
                members.setdefault(l, []).append(i)
        groups = {
            label: ColumnarGroup(idx, [graphs[i] for i in idx])
            for label, idx in members.items()
        }
        return cls(groups, name=name)

    @classmethod
    def from_database(cls, db) -> "ColumnarDatabase":
        return cls.from_graphs(
            db.graphs, labels=db.labels, name=f"{db.name}/columnar"
        )

    # ------------------------------------------------------------------
    @property
    def n_graphs(self) -> int:
        return len(self._where)

    @property
    def total_nodes(self) -> int:
        return sum(g.total_nodes for g in self.groups.values())

    def group(self, label: Hashable) -> ColumnarGroup:
        return self.groups[label]

    def group_of(self, index: int) -> Tuple[Hashable, int]:
        """``(group label, position)`` of one database index."""
        return self._where[int(index)]

    def slice_of(self, index: int) -> GraphSlice:
        label, pos = self._where[int(index)]
        return self.groups[label].slice(pos)

    def fresh_slice(self, index: int, graph: Graph) -> Optional[GraphSlice]:
        """The graph's slice, or ``None`` when the graph mutated since
        the columnar build (content keys are memoized, so the common
        case is one string compare)."""
        where = self._where.get(int(index))
        if where is None:
            return None
        sl = self.groups[where[0]].slice(where[1])
        if sl.content_key != graph.content_key():
            return None
        return sl

    # ------------------------------------------------------------------
    def extend(
        self,
        graphs: Sequence[Graph],
        labels: Optional[Sequence[Hashable]] = None,
        start: int = 0,
    ) -> None:
        """Patch for a streamed chunk appended at database index ``start``.

        Mirrors :meth:`GraphDatabase.extend`: the chunk is columnarized
        and concatenated onto the matching groups; nothing existing is
        rebuilt or re-read.
        """
        if labels is not None and len(labels) != len(graphs):
            raise DatasetError(
                f"labels length {len(labels)} != graph count {len(graphs)}"
            )
        members: Dict[Hashable, List[int]] = {}
        for offset in range(len(graphs)):
            label = None if labels is None else labels[offset]
            members.setdefault(label, []).append(offset)
        for label, offsets in members.items():
            chunk = [graphs[o] for o in offsets]
            indices = [start + o for o in offsets]
            group = self.groups.get(label)
            if group is None:
                group = ColumnarGroup([], [])
                self.groups[label] = group
            base = group.n_graphs
            group.extend(indices, chunk)
            for pos, idx in enumerate(indices, start=base):
                self._where[idx] = (label, pos)

    def __repr__(self) -> str:
        return (
            f"<ColumnarDatabase {self.name!r} |G|={self.n_graphs} "
            f"groups={len(self.groups)} nodes={self.total_nodes}>"
        )


def columnar_slice_of(graph: Graph) -> GraphSlice:
    """A standalone single-graph slice (the ad-hoc context-build path).

    Hosts that never joined a database still go through the same
    vectorized construction: a one-graph :class:`ColumnarGroup` is
    built on the fly and its only slice returned.
    """
    return ColumnarGroup([0], [graph]).slice(0)


__all__ = [
    "ColumnarDatabase",
    "ColumnarGroup",
    "GraphSlice",
    "columnar_slice_of",
    "edge_index_arrays",
    "ROW_TABLE_MAX_NODES",
    "KIND_ALL",
    "KIND_OUT",
    "KIND_IN",
]
