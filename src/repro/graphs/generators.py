"""Low-level random graph builders.

These are the structural primitives the dataset generators
(:mod:`repro.datasets`) compose: chains, rings, trees, Barabási–Albert
graphs, stochastic block models, stars, bicliques, and motif
attachment. All functions are deterministic given a seed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.graph import Graph
from repro.utils.rng import RngLike, ensure_rng


def chain_graph(node_types: Sequence[int], edge_type: int = 0) -> Graph:
    """Path graph with the given node types."""
    g = Graph(node_types)
    for i in range(len(node_types) - 1):
        g.add_edge(i, i + 1, edge_type)
    return g


def ring_graph(node_types: Sequence[int], edge_type: int = 0) -> Graph:
    """Cycle graph with the given node types (needs >= 3 nodes)."""
    n = len(node_types)
    if n < 3:
        raise GraphError(f"ring needs >= 3 nodes, got {n}")
    g = chain_graph(node_types, edge_type)
    g.add_edge(n - 1, 0, edge_type)
    return g


def star_graph(n_leaves: int, center_type: int = 0, leaf_type: int = 0) -> Graph:
    """Star with one center and ``n_leaves`` leaves."""
    g = Graph([center_type] + [leaf_type] * n_leaves)
    for i in range(1, n_leaves + 1):
        g.add_edge(0, i)
    return g


def biclique_graph(n_left: int, n_right: int, left_type: int = 0, right_type: int = 0) -> Graph:
    """Complete bipartite graph K(n_left, n_right)."""
    g = Graph([left_type] * n_left + [right_type] * n_right)
    for i in range(n_left):
        for j in range(n_right):
            g.add_edge(i, n_left + j)
    return g


def house_motif(node_type: int = 0) -> Graph:
    """The 5-node "house": a square with a triangular roof (PyG motif)."""
    g = Graph([node_type] * 5)
    for u, v in [(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (1, 4)]:
        g.add_edge(u, v)
    return g


def cycle_motif(length: int = 6, node_type: int = 0) -> Graph:
    """A simple cycle motif of the given length."""
    return ring_graph([node_type] * length)


def random_tree(
    n: int,
    node_types: Optional[Sequence[int]] = None,
    seed: RngLike = None,
) -> Graph:
    """Uniform random recursive tree on ``n`` nodes."""
    rng = ensure_rng(seed)
    types = list(node_types) if node_types is not None else [0] * n
    if len(types) != n:
        raise GraphError("node_types length must equal n")
    g = Graph(types)
    for v in range(1, n):
        parent = int(rng.integers(0, v))
        g.add_edge(parent, v)
    return g


def barabasi_albert(
    n: int,
    m: int,
    node_type: int = 0,
    seed: RngLike = None,
) -> Graph:
    """Barabási–Albert preferential attachment graph (the SYN base)."""
    if m < 1 or m >= n:
        raise GraphError(f"need 1 <= m < n, got m={m}, n={n}")
    rng = ensure_rng(seed)
    g = Graph([node_type] * n)
    # start from a star on m+1 nodes so every new node has m targets
    targets: List[int] = list(range(m))
    repeated: List[int] = []
    for v in range(m, n):
        chosen = set()
        pool = repeated if repeated else targets
        while len(chosen) < m:
            chosen.add(int(pool[int(rng.integers(0, len(pool)))]))
        for t in chosen:
            if not g.has_edge(v, t):
                g.add_edge(v, t)
            repeated.extend([v, t])
        targets.append(v)
    return g


def erdos_renyi(
    n: int,
    p: float,
    node_type: int = 0,
    seed: RngLike = None,
    directed: bool = False,
) -> Graph:
    """G(n, p) random graph."""
    rng = ensure_rng(seed)
    g = Graph([node_type] * n, directed=directed)
    for u in range(n):
        lo = 0 if directed else u + 1
        for v in range(lo, n):
            if u == v:
                continue
            if rng.random() < p:
                g.add_edge(u, v)
    return g


def stochastic_block_model(
    block_sizes: Sequence[int],
    p_in: float,
    p_out: float,
    seed: RngLike = None,
) -> Tuple[Graph, np.ndarray]:
    """SBM graph and the block id of each node (PRODUCTS base graph)."""
    rng = ensure_rng(seed)
    blocks = np.concatenate(
        [np.full(size, b, dtype=np.int64) for b, size in enumerate(block_sizes)]
    )
    n = len(blocks)
    g = Graph([0] * n)
    for u in range(n):
        for v in range(u + 1, n):
            p = p_in if blocks[u] == blocks[v] else p_out
            if rng.random() < p:
                g.add_edge(u, v)
    return g, blocks


def disjoint_union(parts: Sequence[Graph]) -> Tuple[Graph, List[List[int]]]:
    """Disjoint union; returns the union and each part's node ids in it."""
    if not parts:
        raise GraphError("disjoint_union needs at least one graph")
    directed = parts[0].directed
    if any(p.directed != directed for p in parts):
        raise GraphError("cannot union directed and undirected graphs")
    types = np.concatenate([p.node_types for p in parts])
    feats = None
    if all(p.features is not None for p in parts):
        widths = {p.features.shape[1] for p in parts}  # type: ignore[union-attr]
        if len(widths) == 1:
            feats = np.vstack([p.features for p in parts])  # type: ignore[list-item]
    g = Graph(types, features=feats, directed=directed)
    offsets: List[List[int]] = []
    base = 0
    for p in parts:
        ids = list(range(base, base + p.n_nodes))
        offsets.append(ids)
        for u, v, t in p.edges():
            g.add_edge(base + u, base + v, t)
        base += p.n_nodes
    return g, offsets


def attach_motif(
    host: Graph,
    motif: Graph,
    anchor: int,
    seed: RngLike = None,
) -> Tuple[Graph, List[int]]:
    """Attach ``motif`` to ``host`` by one edge from ``anchor``.

    Returns the combined graph and the motif's node ids inside it. The
    bridge edge connects ``anchor`` to a random motif node, so the motif
    stays intact as an induced subgraph (the planted ground truth the
    case-study benches recover).
    """
    rng = ensure_rng(seed)
    combined, parts = disjoint_union([host, motif])
    motif_ids = parts[1]
    entry = motif_ids[int(rng.integers(0, len(motif_ids)))]
    combined.add_edge(anchor, entry)
    return combined, motif_ids


__all__ = [
    "chain_graph",
    "ring_graph",
    "star_graph",
    "biclique_graph",
    "house_motif",
    "cycle_motif",
    "random_tree",
    "barabasi_albert",
    "erdos_renyi",
    "stochastic_block_model",
    "disjoint_union",
    "attach_motif",
]
