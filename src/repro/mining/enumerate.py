"""Connected-subgraph enumeration (ESU / FANMOD algorithm).

The pattern generator needs every connected node subset of a host graph
up to a size bound. ESU (Wernicke 2006) enumerates each connected
subset exactly once via an enumeration tree: subsets are rooted at
their minimum node id and only extended by larger-id nodes outside the
current exclusive neighborhood.

Explanation subgraphs are small (|V_s| ≤ u_l), so exhaustive
enumeration with a safety cap is both exact and fast — this replaces
the external gSpan dependency the paper cites for ``PGen``.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Set, Tuple

from repro.graphs.graph import Graph


def connected_node_subsets(
    graph: Graph,
    max_size: int,
    min_size: int = 1,
    cap: Optional[int] = 200_000,
) -> Iterator[Tuple[int, ...]]:
    """Yield each connected node subset with ``min_size <= |S| <= max_size``.

    Subsets are emitted as sorted tuples, each exactly once. ``cap``
    bounds the total number of *emitted* subsets; hitting it truncates
    enumeration (callers treat mined candidates as a best-effort pool,
    never as a completeness guarantee).
    """
    if max_size < 1 or min_size < 1 or min_size > max_size:
        return
    emitted = 0
    # the current subset as a set, maintained incrementally alongside
    # the ordered list — exclusive-neighborhood checks run once per
    # extension candidate, so rebuilding set(sub) there is the hot spot
    sub_set: Set[int] = set()

    def extend(
        sub: List[int],
        ext: Set[int],
        sub_neigh: Set[int],
        root: int,
    ) -> Iterator[Tuple[int, ...]]:
        nonlocal emitted
        if len(sub) >= min_size:
            emitted += 1
            yield tuple(sorted(sub))
        if len(sub) == max_size:
            return
        ext_pool = sorted(ext)
        remaining = set(ext_pool)
        for w in ext_pool:
            if cap is not None and emitted >= cap:
                return
            remaining.discard(w)
            new_excl = {
                u
                for u in graph.all_neighbors(w)
                if u not in sub_set and u not in sub_neigh and u > root and u != w
            }
            sub.append(w)
            sub_set.add(w)
            yield from extend(
                sub,
                remaining | new_excl,
                sub_neigh | graph.all_neighbors(w),
                root,
            )
            sub.pop()
            sub_set.discard(w)

    for v in graph.nodes():
        if cap is not None and emitted >= cap:
            return
        ext0 = {u for u in graph.all_neighbors(v) if u > v}
        sub_set = {v}
        yield from extend([v], ext0, set(graph.all_neighbors(v)) | {v}, v)


def count_connected_subsets(graph: Graph, max_size: int) -> int:
    """Number of connected subsets up to ``max_size`` (testing helper)."""
    return sum(1 for _ in connected_node_subsets(graph, max_size, cap=None))


__all__ = ["connected_node_subsets", "count_connected_subsets"]
