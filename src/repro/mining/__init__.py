"""Mining substrate: pattern enumeration, MDL scoring, PGen/IncPGen."""

from repro.mining.enumerate import connected_node_subsets, count_connected_subsets
from repro.mining.mdl import MinedPattern, mdl_score
from repro.mining.pgen import mine_incremental, mine_patterns

__all__ = [
    "connected_node_subsets",
    "count_connected_subsets",
    "MinedPattern",
    "mdl_score",
    "mine_patterns",
    "mine_incremental",
]
