"""Minimum-description-length scoring for mined patterns.

Psum's pattern generator ranks candidates with an MDL criterion in the
spirit of SUBDUE: a pattern is valuable when replacing each of its
occurrences with a single super-node shrinks the total description of
the data. For a pattern ``P`` with ``size(P) = |V_p| + |E_p|`` occurring
in ``support`` distinct host graphs with ``embeddings`` total
occurrences, the (simplified, unit-cost) saving is::

    saving = embeddings * (size(P) - 1) - size(P)

i.e. every occurrence collapses ``size(P)`` description units into one,
minus the one-time cost of describing the pattern itself. Larger is
better; single-node patterns always score <= -1 so structure is
preferred whenever it exists.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.pattern import Pattern


@dataclass(frozen=True)
class MinedPattern:
    """A mined candidate with its occurrence statistics."""

    pattern: Pattern
    support: int  # number of distinct host graphs containing it
    embeddings: int  # total matches across hosts

    @property
    def mdl_score(self) -> float:
        return mdl_score(self.pattern, self.embeddings)

    def __repr__(self) -> str:
        return (
            f"<MinedPattern n={self.pattern.n_nodes} m={self.pattern.n_edges} "
            f"sup={self.support} emb={self.embeddings} mdl={self.mdl_score:.1f}>"
        )


def mdl_score(pattern: Pattern, embeddings: int) -> float:
    """Description-length saving of compressing ``embeddings`` occurrences."""
    size = pattern.size
    return embeddings * (size - 1) - size


__all__ = ["MinedPattern", "mdl_score"]
