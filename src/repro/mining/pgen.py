"""The ``PGen`` pattern-candidate generator (§4).

Mines connected patterns from a set of explanation subgraphs by
exhaustive ESU enumeration (exact for the small subgraphs GVEX
produces), deduplicates them up to isomorphism, keeps those meeting the
support threshold, and ranks by MDL saving. Single-node patterns for
every node type present are always included, which keeps Psum's
node-coverage problem feasible (Lemma 4.3's precondition; see
DESIGN.md §3).
"""

from __future__ import annotations

from typing import (
    Dict,
    Iterable,
    List,
    MutableMapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.exceptions import MiningError
from repro.graphs.graph import Graph
from repro.graphs.pattern import Pattern
from repro.matching.canonical import pattern_identity
from repro.mining.enumerate import connected_node_subsets
from repro.mining.mdl import MinedPattern


def mine_patterns(
    hosts: Sequence[Graph],
    max_size: int = 5,
    min_support: int = 1,
    max_candidates: Optional[int] = 200,
    enumeration_cap: int = 100_000,
    backend: Optional[str] = None,
    subset_keys: Optional[Sequence[Sequence[int]]] = None,
    pattern_memo: Optional[MutableMapping[Tuple[int, ...], Pattern]] = None,
) -> List[MinedPattern]:
    """Mine frequent connected patterns from host graphs.

    Parameters
    ----------
    hosts:
        The explanation subgraphs to summarize.
    max_size:
        Maximum pattern node count.
    min_support:
        Minimum number of distinct hosts a (non-singleton) pattern must
        occur in.
    max_candidates:
        Keep only the top candidates by MDL saving (singletons are
        appended afterwards and never dropped).
    enumeration_cap:
        Per-host cap on enumerated subsets (safety bound).
    backend:
        Matching backend for isomorphism-collision resolution (process
        default when ``None``).
    subset_keys / pattern_memo:
        Cross-call canonization memo. ``subset_keys[h][v]`` names host
        ``h``'s node ``v`` in a caller-stable id space (e.g. the
        source-graph node ids of a streamed ``V_S`` subgraph);
        ``pattern_memo`` then caches the induced :class:`Pattern` (and
        with it, its WL key) per stable subset, so re-mining a host
        that shares subsets with earlier calls stops re-canonizing
        them. Memoized patterns are byte-identical to fresh ones
        (``Pattern.from_induced`` is deterministic), so results never
        change — only the repeated hashing goes away.

    Returns
    -------
    Mined patterns sorted by decreasing MDL saving; singleton patterns
    for every observed node type are always present at the end.
    """
    if max_size < 1:
        raise MiningError(f"max_size must be >= 1, got {max_size}")
    if min_support < 1:
        raise MiningError(f"min_support must be >= 1, got {min_support}")

    identity: Dict[str, List[Pattern]] = {}
    support: Dict[Pattern, Set[int]] = {}
    embeddings: Dict[Pattern, int] = {}

    for h, host in enumerate(hosts):
        keys = None if subset_keys is None else subset_keys[h]
        for subset in connected_node_subsets(
            host, max_size, min_size=2, cap=enumeration_cap
        ):
            if pattern_memo is not None and keys is not None:
                memo_key = tuple(keys[v] for v in subset)
                candidate = pattern_memo.get(memo_key)
                if candidate is None:
                    candidate = Pattern.from_induced(host, subset)
                    pattern_memo[memo_key] = candidate
            else:
                candidate = Pattern.from_induced(host, subset)
            canon = pattern_identity(candidate, identity, backend=backend)
            key = canon
            support.setdefault(key, set()).add(h)
            embeddings[key] = embeddings.get(key, 0) + 1

    mined = [
        MinedPattern(k, support=len(s), embeddings=embeddings[k])
        for k, s in support.items()
        if len(s) >= min_support
    ]
    mined.sort(key=lambda m: (-m.mdl_score, m.pattern.size, m.pattern.key()))
    if max_candidates is not None:
        mined = mined[:max_candidates]

    mined.extend(_singletons(hosts))
    return mined


def _singletons(hosts: Sequence[Graph]) -> List[MinedPattern]:
    """One singleton candidate per node type, with its occurrence counts."""
    counts: Dict[int, int] = {}
    host_sets: Dict[int, Set[int]] = {}
    for h, host in enumerate(hosts):
        for v in host.nodes():
            t = host.node_type(v)
            counts[t] = counts.get(t, 0) + 1
            host_sets.setdefault(t, set()).add(h)
    return [
        MinedPattern(
            Pattern.singleton(t), support=len(host_sets[t]), embeddings=counts[t]
        )
        for t in sorted(counts)
    ]


def mine_incremental(
    host: Graph,
    new_node: int,
    radius: int,
    known: Iterable[Pattern],
    max_size: int = 5,
    enumeration_cap: int = 20_000,
    backend: Optional[str] = None,
) -> List[Pattern]:
    """The ``IncPGen`` operator (§5): new patterns around a new node.

    Enumerates connected subsets inside the ``radius``-hop neighborhood
    of ``new_node`` that *contain* the new node, and returns the
    patterns not isomorphic to any in ``known`` (the paper's ΔP).
    """
    identity: Dict[str, List[Pattern]] = {}
    for p in known:
        pattern_identity(p, identity, backend=backend)
    known_ids = {id(p) for bucket in identity.values() for p in bucket}

    hood = sorted(host.k_hop_nodes(new_node, radius))
    sub, mapping = host.induced_subgraph(hood)
    local_new = mapping.index(new_node)

    fresh: List[Pattern] = []
    for subset in connected_node_subsets(sub, max_size, cap=enumeration_cap):
        if local_new not in subset:
            continue
        candidate = Pattern.from_induced(sub, subset)
        canon = pattern_identity(candidate, identity, backend=backend)
        if id(canon) not in known_ids:
            known_ids.add(id(canon))
            fresh.append(canon)
    return fresh


__all__ = ["mine_patterns", "mine_incremental"]
