#!/usr/bin/env python
"""Check intra-repo links in README.md and docs/*.md.

Fails (exit 1) when a markdown link target that is not an external URL
or a pure in-page anchor does not resolve to an existing file or
directory, relative to the file containing the link. Run from anywhere:

    python scripts/check_docs_links.py

Used by the CI docs lane and mirrored by ``tests/test_docs.py`` so the
tier-1 suite catches broken links before CI does.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: inline markdown links: [text](target) — images share the syntax
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

EXTERNAL = ("http://", "https://", "mailto:")


def doc_files() -> "list[Path]":
    files = []
    readme = REPO / "README.md"
    if readme.exists():
        files.append(readme)
    files.extend(sorted((REPO / "docs").glob("*.md")))
    return files


def broken_links(path: Path) -> "list[tuple[int, str]]":
    bad = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        for target in LINK.findall(line):
            if target.startswith(EXTERNAL):
                continue
            if target.startswith("#"):  # in-page anchor
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                bad.append((lineno, target))
    return bad


def main() -> int:
    failures = 0
    for path in doc_files():
        for lineno, target in broken_links(path):
            rel = path.relative_to(REPO)
            print(f"{rel}:{lineno}: broken link -> {target}")
            failures += 1
    if failures:
        print(f"{failures} broken link(s)")
        return 1
    print(f"checked {len(doc_files())} file(s): all intra-repo links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
