#!/usr/bin/env python
"""Public-API snapshot check for ``repro.api``/``repro.runtime``/
``repro.runtime.cluster``/``repro.matching``/``repro.analysis``.

Compares the symbols exported by the supported surfaces (their
``__all__``) against the committed manifest
``scripts/api_surface.txt``. Any drift — a symbol added without
updating the manifest, or removed/renamed without a deliberate
deprecation (docs/api.md) — fails the CI docs lane::

    python scripts/check_api_surface.py            # check
    python scripts/check_api_surface.py --update   # rewrite the manifest

``repro.api`` symbols appear bare; ``repro.runtime`` symbols are
prefixed ``runtime.`` (the execution engine is its own supported
surface, see docs/runtime.md), ``repro.matching`` symbols
``matching.`` (the pattern-matching tier, see docs/matching.md), and
``repro.analysis`` symbols ``analysis.`` (the invariant linter, see
docs/analysis.md).
Exports are read by importing the
modules when the runtime dependencies (numpy) are available, and by
statically parsing each package ``__init__.py`` otherwise, so the
check also runs in the dependency-free docs lane.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
MANIFEST = REPO / "scripts" / "api_surface.txt"

#: (import name, package __init__ path, manifest prefix)
SURFACES = [
    ("repro.api", REPO / "src" / "repro" / "api" / "__init__.py", ""),
    ("repro.runtime", REPO / "src" / "repro" / "runtime" / "__init__.py", "runtime."),
    (
        "repro.runtime.cluster",
        REPO / "src" / "repro" / "runtime" / "cluster" / "__init__.py",
        "runtime.cluster.",
    ),
    (
        "repro.matching",
        REPO / "src" / "repro" / "matching" / "__init__.py",
        "matching.",
    ),
    (
        "repro.graphs",
        REPO / "src" / "repro" / "graphs" / "__init__.py",
        "graphs.",
    ),
    (
        "repro.gnn",
        REPO / "src" / "repro" / "gnn" / "__init__.py",
        "gnn.",
    ),
    (
        "repro.analysis",
        REPO / "src" / "repro" / "analysis" / "__init__.py",
        "analysis.",
    ),
]


def exported_symbols() -> "list[str]":
    out: "list[str]" = []
    for module_name, init_path, prefix in SURFACES:
        try:
            sys.path.insert(0, str(REPO / "src"))
            try:
                import importlib

                module = importlib.import_module(module_name)
            finally:
                sys.path.pop(0)
        except ImportError:
            out.extend(prefix + name for name in _static_all(init_path))
            continue
        missing = [
            name for name in module.__all__ if not hasattr(module, name)
        ]
        if missing:
            raise SystemExit(
                f"{module_name}.__all__ names missing attributes: {missing}"
            )
        out.extend(prefix + name for name in module.__all__)
    return sorted(out)


def _static_all(init_path: Path) -> "list[str]":
    """Parse ``__all__`` from a package __init__ without importing."""
    tree = ast.parse(init_path.read_text())
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            targets = [node.target.id]
        if "__all__" in targets and node.value is not None:
            value = ast.literal_eval(node.value)
            return sorted(str(name) for name in value)
    raise SystemExit(f"no literal __all__ found in {init_path}")


def manifest_symbols() -> "list[str]":
    if not MANIFEST.exists():
        raise SystemExit(
            f"manifest {MANIFEST} missing — create it with --update"
        )
    out = []
    for line in MANIFEST.read_text().splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            out.append(line)
    return sorted(out)


def main(argv: "list[str]" = sys.argv[1:]) -> int:
    actual = exported_symbols()
    if "--update" in argv:
        MANIFEST.write_text(
            "# Snapshot of the supported public surfaces: repro.api.__all__\n"
            "# (bare names), repro.runtime.__all__ ('runtime.' prefix),\n"
            "# repro.matching.__all__ ('matching.' prefix),\n"
            "# repro.graphs.__all__ ('graphs.' prefix),\n"
            "# repro.gnn.__all__ ('gnn.' prefix), and\n"
            "# repro.analysis.__all__ ('analysis.' prefix).\n"
            "# Regenerate with: python scripts/check_api_surface.py --update\n"
            "# Changing this file is an API change; see docs/api.md.\n"
            + "\n".join(actual)
            + "\n"
        )
        print(f"wrote {len(actual)} symbol(s) to {MANIFEST.relative_to(REPO)}")
        return 0

    expected = manifest_symbols()
    added = sorted(set(actual) - set(expected))
    removed = sorted(set(expected) - set(actual))
    if added or removed:
        if added:
            print(f"symbols exported but not in manifest: {added}")
        if removed:
            print(f"symbols in manifest but no longer exported: {removed}")
        print(
            "public surface drift — if intentional, run "
            "'python scripts/check_api_surface.py --update' and review "
            "the diff against docs/api.md's deprecation policy"
        )
        return 1
    names = " + ".join(module_name for module_name, _, _ in SURFACES)
    print(f"{names} surface matches manifest ({len(actual)} symbols)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
