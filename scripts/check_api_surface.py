#!/usr/bin/env python
"""Public-API snapshot check for ``repro.api``.

Compares the symbols exported by ``repro.api`` (its ``__all__``)
against the committed manifest ``scripts/api_surface.txt``. Any drift
— a symbol added without updating the manifest, or removed/renamed
without a deliberate deprecation (docs/api.md) — fails the CI docs
lane::

    python scripts/check_api_surface.py            # check
    python scripts/check_api_surface.py --update   # rewrite the manifest

The exported list is read by importing ``repro.api`` when the runtime
dependencies (numpy) are available, and by statically parsing
``src/repro/api/__init__.py`` otherwise, so the check also runs in the
dependency-free docs lane.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
MANIFEST = REPO / "scripts" / "api_surface.txt"
API_INIT = REPO / "src" / "repro" / "api" / "__init__.py"


def exported_symbols() -> "list[str]":
    try:
        sys.path.insert(0, str(REPO / "src"))
        try:
            import repro.api as api
        finally:
            sys.path.pop(0)
    except ImportError:
        return _static_all()
    missing = [name for name in api.__all__ if not hasattr(api, name)]
    if missing:
        raise SystemExit(f"repro.api.__all__ names missing attributes: {missing}")
    return sorted(api.__all__)


def _static_all() -> "list[str]":
    """Parse ``__all__`` from the package __init__ without importing."""
    tree = ast.parse(API_INIT.read_text())
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            targets = [node.target.id]
        if "__all__" in targets and node.value is not None:
            value = ast.literal_eval(node.value)
            return sorted(str(name) for name in value)
    raise SystemExit(f"no literal __all__ found in {API_INIT}")


def manifest_symbols() -> "list[str]":
    if not MANIFEST.exists():
        raise SystemExit(
            f"manifest {MANIFEST} missing — create it with --update"
        )
    out = []
    for line in MANIFEST.read_text().splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            out.append(line)
    return sorted(out)


def main(argv: "list[str]" = sys.argv[1:]) -> int:
    actual = exported_symbols()
    if "--update" in argv:
        MANIFEST.write_text(
            "# Snapshot of repro.api.__all__ — the supported public surface.\n"
            "# Regenerate with: python scripts/check_api_surface.py --update\n"
            "# Changing this file is an API change; see docs/api.md.\n"
            + "\n".join(actual)
            + "\n"
        )
        print(f"wrote {len(actual)} symbol(s) to {MANIFEST.relative_to(REPO)}")
        return 0

    expected = manifest_symbols()
    added = sorted(set(actual) - set(expected))
    removed = sorted(set(expected) - set(actual))
    if added or removed:
        if added:
            print(f"symbols exported but not in manifest: {added}")
        if removed:
            print(f"symbols in manifest but no longer exported: {removed}")
        print(
            "public surface drift — if intentional, run "
            "'python scripts/check_api_surface.py --update' and review "
            "the diff against docs/api.md's deprecation policy"
        )
        return 1
    print(f"repro.api surface matches manifest ({len(actual)} symbols)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
