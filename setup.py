"""Setup shim.

The execution environment is offline and lacks the ``wheel`` package, so
PEP-660 editable installs (``pip install -e .``) cannot build an editable
wheel. This shim keeps ``python setup.py develop`` working as a fallback;
all metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
