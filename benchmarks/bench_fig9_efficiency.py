"""Figure 9: efficiency, scalability, parallelization, anytime behaviour.

Paper shapes reproduced (absolute seconds are CPU-bound and scaled down
per DESIGN.md §1):
  (a, b) AG/SG are 1-2 orders of magnitude faster than per-instance
         search baselines (SubgraphX's MCTS, GStarX's coalition
         sampling) on MUT and ENZ.
  (c)    AG/SG finish every dataset within budget; the heaviest
         baseline exceeds its (scaled) budget on the largest-graph
         dataset, mirroring the ">24h" entries.
  (d)    runtime grows ~linearly with the number of graphs (PCQ).
  (e)    multi-process AG gives a speedup on multi-core hosts.
  (f)    StreamGVEX runtime grows linearly with the batch fraction.
"""

import os
import time
from dataclasses import replace

import numpy as np

from repro.bench.harness import (
    bench_config,
    label_group_indices,
    majority_label,
    timed_explain,
)
from repro.bench.reporting import render_series, render_table, save_result
from repro.config import BACKEND_BATCHED, BACKEND_SERIAL
from repro.core.approx import explain_graph
from repro.core.streaming import StreamGvex
from repro.runtime import build_plan, run_plan
from repro.datasets.zoo import get_trained

from conftest import SCALE, SEED

METHODS = ("AG", "SG", "GE", "SX", "GX", "GCF")


def test_fig9ab_runtime_mut_enz(mut, enz, benchmark):
    """Baselines run at their *published* budgets here (SubgraphX: 20
    rollouts with large Monte-Carlo Shapley sampling; GStarX: 256
    coalition samples; GNNExplainer: 100 mask epochs) — the trimmed
    budgets used by the fidelity sweeps would hide the cost gap the
    paper reports."""
    from repro.explainers import (
        ApproxGvexExplainer,
        GnnExplainer,
        GStarX,
        StreamGvexExplainer,
        SubgraphX,
    )

    def paper_budget_explainers(setup):
        return {
            "AG": ApproxGvexExplainer(setup.model, bench_config(upper=6)),
            "SG": StreamGvexExplainer(setup.model, bench_config(upper=6), seed=SEED),
            "GE": GnnExplainer(setup.model, epochs=100, seed=SEED),
            "SX": SubgraphX(
                setup.model, rollouts=20, shapley_samples=64, seed=SEED
            ),
            "GX": GStarX(setup.model, coalition_samples=256, seed=SEED),
        }

    def collect():
        rows = []
        for name, setup in [("MUT", mut), ("ENZ", enz)]:
            label = majority_label(setup)
            indices = label_group_indices(setup, label, limit=5)
            for method, explainer in paper_budget_explainers(setup).items():
                start = time.perf_counter()
                for idx in indices:
                    explainer.explain_graph(
                        setup.db[idx], label=label, max_nodes=6, graph_index=idx
                    )
                rows.append([name, method, time.perf_counter() - start])
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    text = render_table(
        "Figure 9(a,b): runtime per explainer (5 graphs, published budgets)",
        ["dataset", "method", "seconds"],
        rows,
    )
    save_result("fig9ab_runtime", text)

    for name in ("MUT", "ENZ"):
        times = {r[1]: r[2] for r in rows if r[0] == name}
        # GVEX's explain phase beats the per-instance search baselines
        assert min(times["AG"], times["SG"]) < max(times["SX"], times["GX"])


def test_fig9c_runtime_all_datasets(benchmark):
    def collect():
        rows = []
        for name in (
            "mutagenicity",
            "reddit_binary",
            "enzymes",
            "pcqm4m",
            "malnet",
        ):
            setup = get_trained(name, scale=SCALE, seed=SEED)
            # scaled stand-in for the paper's 24h budget
            budget = 30.0
            for method in ("AG", "SG", "SX"):
                run = timed_explain(
                    setup, method, upper=6, graphs=4, budget_seconds=budget
                )
                rows.append(
                    [name, method, run.seconds, str(run.timed_out), run.explanations]
                )
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    text = render_table(
        "Figure 9(c): runtime across datasets (4 graphs, 30s budget)",
        ["dataset", "method", "seconds", "timed out", "explained"],
        rows,
    )
    save_result("fig9c_runtime_all", text)

    gvex_rows = [r for r in rows if r[1] in ("AG", "SG")]
    assert all(r[3] == "False" for r in gvex_rows), "GVEX must finish everywhere"


def test_fig9d_scalability_pcq(benchmark):
    def collect():
        counts = (16, 32, 64)
        ag_times, sg_times = [], []
        for count in counts:
            setup = get_trained("pcqm4m", scale=SCALE, seed=SEED)
            label = majority_label(setup)
            indices = label_group_indices(setup, label)
            # replicate indices to reach the target count
            reps = [indices[i % len(indices)] for i in range(count)]
            for times, method in ((ag_times, "AG"), (sg_times, "SG")):
                from repro.bench.harness import make_explainers

                explainer = make_explainers(setup, [method])[method]
                start = time.perf_counter()
                for idx in reps:
                    explainer.explain_graph(
                        setup.db[idx], label=label, max_nodes=6, graph_index=idx
                    )
                times.append(time.perf_counter() - start)
        return counts, ag_times, sg_times

    counts, ag_times, sg_times = benchmark.pedantic(collect, rounds=1, iterations=1)
    text = render_series(
        "Figure 9(d): scalability vs #graphs (PCQ)",
        "method \\ #graphs",
        list(counts),
        {"AG": ag_times, "SG": sg_times},
    )
    save_result("fig9d_scalability", text)

    # near-linear growth: doubling graphs should not much more than
    # double runtime (allow 3.5x for noise at small absolute times)
    for times in (ag_times, sg_times):
        assert times[2] <= 3.5 * 2 * max(times[1], 1e-6)
        assert times[1] <= 3.5 * 2 * max(times[0], 1e-6)


def test_fig9e_parallelization(mut, benchmark):
    def collect():
        timings = {}
        for procs in (1, 2):
            start = time.perf_counter()
            plan = build_plan(
                mut.db, mut.model, bench_config(upper=6), processes=procs
            )
            run_plan(plan, processes=procs)
            timings[procs] = time.perf_counter() - start
        return timings

    timings = benchmark.pedantic(collect, rounds=1, iterations=1)
    rows = [[f"{p} process(es)", t] for p, t in sorted(timings.items())]
    save_result(
        "fig9e_parallel",
        render_table("Figure 9(e): parallel AG on MUT", ["setup", "seconds"], rows),
    )
    cores = os.cpu_count() or 1
    # the paper's ~2x speedup only emerges once per-graph work dominates
    # the pool's fork/IPC overhead; on the seconds-long test scale we
    # assert the speedup only when the serial run is long enough
    if cores >= 2 and timings[1] >= 2.0:
        assert timings[2] <= timings[1] * 1.2


def test_fig9g_verifier_backend(mal, benchmark):
    """Batched vs serial EVerify on MAL — the zoo's largest graphs.

    The two backends are decision-identical (bit-identical
    probabilities), so this measures pure scheduling: the batched
    engine fills the memo cache frontier-at-a-time with stacked
    forward passes instead of one dense forward per candidate subset.
    """
    label = majority_label(mal)
    indices = label_group_indices(mal, label, limit=4)

    def collect():
        rows = []
        selections = {}
        for backend in (BACKEND_SERIAL, BACKEND_BATCHED):
            config = replace(bench_config(upper=6), verifier_backend=backend)
            calls = 0
            nodes = []
            start = time.perf_counter()
            for idx in indices:
                result = explain_graph(
                    mal.model, mal.db[idx], label, config, graph_index=idx
                )
                calls += result.inference_calls
                nodes.append(
                    None if result.subgraph is None else result.subgraph.nodes
                )
            seconds = time.perf_counter() - start
            selections[backend] = nodes
            rows.append([backend, seconds, calls])
        return rows, selections

    (rows, selections) = benchmark.pedantic(collect, rounds=1, iterations=1)
    save_result(
        "fig9g_verifier_backend",
        render_table(
            "Figure 9(g): EVerify backend on MAL (4 graphs)",
            ["backend", "seconds", "inference calls"],
            rows,
        ),
    )
    by_backend = {r[0]: r for r in rows}
    # identical selections, fewer forward launches; the launch count is
    # the hard contract — wall-clock gets the same noise slack fig9e uses
    assert selections[BACKEND_BATCHED] == selections[BACKEND_SERIAL]
    assert by_backend[BACKEND_BATCHED][2] < by_backend[BACKEND_SERIAL][2]
    assert by_backend[BACKEND_BATCHED][1] < by_backend[BACKEND_SERIAL][1] * 1.2


def test_fig9f_anytime_streaming(pcq, benchmark):
    def collect():
        label = majority_label(pcq)
        indices = label_group_indices(pcq, label, limit=3)
        algo = StreamGvex(pcq.model, bench_config(upper=6))
        all_snapshots = []
        for idx in indices:
            result = algo.explain_graph_stream(
                pcq.db[idx], label, graph_index=idx
            )
            all_snapshots.append(result.snapshots)
        return all_snapshots

    all_snapshots = benchmark.pedantic(collect, rounds=1, iterations=1)
    # report the first stream's trajectory
    snaps = all_snapshots[0]
    text = render_series(
        "Figure 9(f): anytime StreamGVEX (PCQ, one stream)",
        "metric \\ fraction",
        [f"{s.fraction_seen:.2f}" for s in snaps],
        {
            "elapsed_s": [s.elapsed_seconds for s in snaps],
            "objective": [s.objective for s in snaps],
            "|V_S|": [s.selected_nodes for s in snaps],
        },
    )
    save_result("fig9f_anytime", text)

    for snaps in all_snapshots:
        elapsed = [s.elapsed_seconds for s in snaps]
        assert elapsed == sorted(elapsed)
        # anytime access: every snapshot carries a valid view state
        assert all(s.selected_nodes >= 0 for s in snaps)
        assert snaps[-1].fraction_seen == 1.0
