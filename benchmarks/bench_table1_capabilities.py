"""Table 1: capability matrix of GNN explainers.

Regenerates the paper's comparison table from each explainer class's
declared capabilities and asserts the paper's headline claim: only
GVEX supports label-specific, size-bounded, coverage-aware,
configurable, queryable explanation at once.
"""

from repro.bench.reporting import save_result
from repro.metrics.capability import capability_rows, capability_table


def test_table1_capability_matrix(benchmark):
    table = benchmark(capability_table)
    save_result("table1_capabilities", table)

    rows = capability_rows()
    for row in rows:
        name = row[0]
        fully_featured = row[4:] == ["yes"] * 6
        assert fully_featured == name.startswith("GVEX"), name
    assert sum(1 for r in rows if r[0].startswith("GVEX")) == 2
