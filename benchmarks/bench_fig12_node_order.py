"""Figure 12 / §A.8: StreamGVEX robustness to node arrival order.

Paper claims: (a) different node orders may change the higher-tier
patterns slightly, but the majority of important patterns persist;
(b) node order does not affect runtime materially. We run several
random shuffles of the same stream and assert pattern-set overlap and
runtime stability.

A second table contrasts the two ``IncEVerify`` schedules on the same
stream: ``stream_inc="incremental"`` must select the identical view
while issuing strictly fewer full oracle refreshes than the per-chunk
``"rebuild"`` reference (§5's incremental maintenance, realized).
"""

import time
from dataclasses import replace

import numpy as np

from repro.bench.harness import bench_config, label_group_indices, majority_label
from repro.bench.reporting import render_table, save_result
from repro.config import STREAM_INCREMENTAL, STREAM_REBUILD
from repro.core.streaming import StreamGvex

from conftest import SEED

N_ORDERS = 4


def test_fig12_node_order_robustness(mut, benchmark):
    label = majority_label(mut)
    idx = label_group_indices(mut, label, limit=1)[0]
    graph = mut.db[idx]

    def run():
        algo = StreamGvex(mut.model, bench_config(upper=6))
        rng = np.random.default_rng(SEED)
        # discarded warm-up: first-touch costs (BLAS init, cache pages)
        # would otherwise be charged to whichever order runs first
        algo.explain_graph_stream(graph, label, graph_index=idx)
        outputs = []
        for i in range(N_ORDERS):
            order = (
                list(graph.nodes())
                if i == 0
                else list(rng.permutation(graph.n_nodes))
            )
            start = time.perf_counter()
            result = algo.explain_graph_stream(
                graph, label, graph_index=idx, order=order
            )
            elapsed = time.perf_counter() - start
            outputs.append((result, elapsed))
        return outputs

    outputs = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    key_sets = []
    times = []
    scores = []
    for i, (result, elapsed) in enumerate(outputs):
        keys = {p.key() for p in result.patterns}
        key_sets.append(keys)
        times.append(elapsed)
        scores.append(result.subgraph.score if result.subgraph else 0.0)
        rows.append(
            [
                f"order {i}",
                elapsed,
                len(result.patterns),
                result.subgraph.n_nodes if result.subgraph else 0,
                scores[-1],
            ]
        )
    save_result(
        "fig12_node_order",
        render_table(
            "Figure 12: StreamGVEX under different node orders (MUT)",
            ["order", "seconds", "#patterns", "|V_S|", "objective"],
            rows,
        ),
    )

    # (a) the majority of the *important* patterns persist across orders;
    # with only a handful of patterns per run the overlap coefficient
    # |A ∩ B| / min(|A|, |B|) is the right granularity
    base = key_sets[0]
    for other in key_sets[1:]:
        if base and other:
            overlap = len(base & other) / min(len(base), len(other))
            assert overlap >= 0.3, (base, other)

    # objectives stay within a constant factor (anytime guarantee)
    assert max(scores) <= 4 * max(min(scores), 1e-9) + 1e-9

    # (b) runtime is order-insensitive (generous 5x band for tiny runs)
    assert max(times) <= 5 * min(times) + 0.05


def test_fig12_inceverify_schedules(mut, benchmark):
    """Incremental vs rebuild IncEVerify on one stream: identical view,
    strictly fewer full oracle refreshes (and forward launches) per
    stream for the incremental engine."""
    label = majority_label(mut)
    idx = label_group_indices(mut, label, limit=1)[0]
    graph = mut.db[idx]

    def run():
        out = {}
        for inc in (STREAM_REBUILD, STREAM_INCREMENTAL):
            algo = StreamGvex(mut.model, replace(bench_config(upper=6), stream_inc=inc))
            algo.explain_graph_stream(graph, label, graph_index=idx)  # warm-up
            start = time.perf_counter()
            result = algo.explain_graph_stream(graph, label, graph_index=idx)
            out[inc] = (result, time.perf_counter() - start)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for inc, (result, elapsed) in out.items():
        st = result.oracle_stats
        rows.append(
            [
                inc,
                elapsed,
                st.oracle_forwards,
                st.incremental_updates,
                result.subgraph.n_nodes if result.subgraph else 0,
            ]
        )
    save_result(
        "fig12_inceverify",
        render_table(
            "Figure 12 (cont.): IncEVerify schedules on one MUT stream",
            ["stream_inc", "seconds", "full refreshes", "inc updates", "|V_S|"],
            rows,
        ),
    )

    rebuild, _ = out[STREAM_REBUILD]
    incremental, _ = out[STREAM_INCREMENTAL]
    nodes = lambda r: None if r.subgraph is None else r.subgraph.nodes
    assert nodes(incremental) == nodes(rebuild)
    assert [p.key() for p in incremental.patterns] == [
        p.key() for p in rebuild.patterns
    ]
    # the hard contract: >1 chunk means strictly fewer full refreshes
    assert len(rebuild.snapshots) > 1
    assert (
        incremental.oracle_stats.oracle_forwards
        < rebuild.oracle_stats.oracle_forwards
    )
    assert rebuild.oracle_stats.oracle_forwards == len(rebuild.snapshots)
