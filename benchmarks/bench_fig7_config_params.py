"""Figure 7: fidelity response to configuration parameters (θ, r) and γ.

Paper setup: on MUT, sweep (θ, r) combinations and γ values; the paper
selects (θ=0.08, r=0.25, γ=0.5) by grid search as the balance point.
Shape: fidelity varies smoothly with the parameters, and the chosen
defaults are within the best region (no parameter setting catastrophically
degrades Fidelity-, which GVEX delivers by construction).
"""

import numpy as np

from repro.bench.harness import bench_config, label_group_indices, majority_label
from repro.bench.reporting import render_table, save_result
from repro.config import GvexConfig
from repro.explainers import ApproxGvexExplainer
from repro.metrics.fidelity import fidelity_scores

from conftest import SEED

THETAS_RS = [(0.05, 0.2), (0.08, 0.25), (0.15, 0.4), (0.3, 0.6)]
GAMMAS = [0.0, 0.5, 1.0]
UPPER = 6


def _run_point(trained, theta, radius, gamma, label, indices):
    config = GvexConfig(theta=theta, radius=radius, gamma=gamma).with_bounds(
        0, UPPER
    )
    explainer = ApproxGvexExplainer(trained.model, config)
    expls = explainer.explain_database(
        trained.db, label=label, max_nodes=UPPER, indices=indices
    )
    return fidelity_scores(trained.model, trained.db, expls)


def _sweep(trained):
    label = majority_label(trained)
    indices = label_group_indices(trained, label, limit=5)
    theta_rows = []
    for theta, radius in THETAS_RS:
        plus, minus = _run_point(trained, theta, radius, 0.5, label, indices)
        theta_rows.append([f"({theta}, {radius})", plus, minus])
    gamma_rows = []
    for gamma in GAMMAS:
        plus, minus = _run_point(trained, 0.08, 0.25, gamma, label, indices)
        gamma_rows.append([f"gamma={gamma}", plus, minus])
    return theta_rows, gamma_rows


def test_fig7_parameter_sensitivity(mut, benchmark):
    theta_rows, gamma_rows = benchmark.pedantic(
        _sweep, args=(mut,), rounds=1, iterations=1
    )
    text = "\n\n".join(
        [
            render_table(
                "Figure 7 (a, b): Fidelity vs (theta, r) on MUT",
                ["(theta, r)", "Fidelity+", "Fidelity-"],
                theta_rows,
            ),
            render_table(
                "Figure 7 (c, d): Fidelity vs gamma on MUT",
                ["gamma", "Fidelity+", "Fidelity-"],
                gamma_rows,
            ),
        ]
    )
    save_result("fig7_config_params", text)

    # Fidelity- stays near zero across the grid (consistency is enforced
    # by the algorithm, not by parameter luck)
    for _, _, minus in theta_rows + gamma_rows:
        assert minus <= 0.3
    # the parameters matter (the sweep produces real variation — this is
    # why the paper grid-searches them) ...
    plus_values = [r[1] for r in theta_rows]
    assert max(plus_values) >= 0.1
    # ... and no setting catastrophically breaks Fidelity+ *and*
    # Fidelity- at once: the best-Fid+ configuration keeps Fid- low
    best = max(theta_rows, key=lambda r: r[1])
    assert best[2] <= 0.3
