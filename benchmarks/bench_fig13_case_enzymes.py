"""Figure 13 / §A.9 case study: explanation views on ENZYMES.

The paper extends its case studies with three enzyme classes, showing
the generated views identify *different* subgraph structures per
class. We build views for three classes and assert the per-class
pattern sets are non-empty and mutually distinct, and that each view's
subgraphs come only from its own label group.
"""

from repro.bench.harness import bench_config
from repro.bench.reporting import render_table, save_result
from repro.core.approx import ApproxGvex

from conftest import SEED

CLASSES = (0, 1, 2)


def test_fig13_enzyme_views(enz, benchmark):
    def run():
        config = bench_config(upper=7)
        algo = ApproxGvex(enz.model, config, labels=list(CLASSES))
        return algo.explain(enz.db)

    views = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for label in CLASSES:
        view = views[label]
        rows.append(
            [
                f"class {label}",
                len(view.subgraphs),
                len(view.patterns),
                view.score,
                "; ".join(
                    f"{p.n_nodes}n/{p.n_edges}e" for p in view.patterns[:4]
                ),
            ]
        )
    save_result(
        "fig13_case_enzymes",
        render_table(
            "Figure 13: explanation views for three ENZ classes",
            ["view", "#subgraphs", "#patterns", "score", "patterns"],
            rows,
        ),
    )

    predictions = [enz.model.predict(g) for g in enz.db]
    key_sets = {}
    for label in CLASSES:
        view = views[label]
        assert view.subgraphs, f"class {label} produced no subgraphs"
        assert view.patterns, f"class {label} produced no patterns"
        for sub in view.subgraphs:
            assert predictions[sub.graph_index] == label
        key_sets[label] = {p.key() for p in view.patterns}

    # the three classes are summarized by distinct pattern sets
    assert (
        key_sets[0] != key_sets[1]
        or key_sets[1] != key_sets[2]
        or key_sets[0] != key_sets[2]
    )
    distinct_pairs = sum(
        key_sets[a] != key_sets[b] for a, b in [(0, 1), (1, 2), (0, 2)]
    )
    assert distinct_pairs >= 2
