"""Wire-level cluster benchmark: throughput, warm boot, re-dispatch.

Boots real coordinator/worker clusters (localhost HTTP, the actual
``repro.runtime.cluster`` wire path — see docs/distribution.md) and
measures the three distribution claims:

* **views/sec vs workers** — the same plan through
  ``DistributedExecutor`` with 1 and N workers, against the
  ``SerialExecutor`` baseline. Every arm's merged ``ViewSet`` must be
  bit-identical to serial (asserted, not sampled). Shard execution is
  CPU-bound, so wall-clock speedup needs real cores — ``cpu_count`` is
  recorded and the numbers are reported honestly either way; the
  in-process workers here also share one GIL, so this measures wire
  overhead more than it measures scale-out.
* **cold vs warm boot** — a worker booted with ``warm_start=False``
  against one that fetches the coordinator's ``GET /cache`` snapshot:
  boot time, run time, and the ``plan_builds`` counter delta during
  the run (the warm contract: a snapshot-warmed run records **zero**
  match-plan builds).
* **re-dispatch overhead** — the same job with and without a
  registered black-hole straggler (accepts TCP, never answers, never
  heartbeats): extra wall-clock paid for the heartbeat reaper to
  declare it dead and re-dispatch its shard, with the output still
  bit-identical.

Writes JSON (checked into ``results/BENCH_dist_cluster.json``)::

    PYTHONPATH=src python benchmarks/bench_dist_cluster.py \
        --out results/BENCH_dist_cluster.json

The slow CI lane runs these scenario functions at smoke scale
(``tests/test_bench_smoke.py``) and uploads a fresh JSON artifact.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import socket
import threading
import time
from pathlib import Path
from typing import Any, Dict, Optional, Sequence

from repro.config import GvexConfig
from repro.graphs.io import viewset_to_dict
from repro.matching.plan_cache import PLAN_CACHE
from repro.runtime import SerialExecutor, build_plan
from repro.runtime.cluster import (
    ClusterCoordinator,
    ClusterWorker,
    DistributedExecutor,
    wire,
)
from repro.runtime.cluster.transport import post_json

AUTH = "bench-secret"


def fingerprint(views) -> str:
    payload = json.dumps(viewset_to_dict(views), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def count_subgraphs(views) -> int:
    return sum(len(view.subgraphs) for view in views)


class _BlackHole:
    """Accepts TCP connections and never answers (a hung worker)."""

    def __init__(self) -> None:
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(8)
        self._held = []
        threading.Thread(target=self._accept_loop, daemon=True).start()

    @property
    def url(self) -> str:
        host, port = self.sock.getsockname()
        return f"http://{host}:{port}"

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _ = self.sock.accept()
            except OSError:
                return
            self._held.append(conn)

    def close(self) -> None:
        try:
            self.sock.close()
        finally:
            for conn in self._held:
                try:
                    conn.close()
                except OSError:
                    pass


# ----------------------------------------------------------------------
# scenario: views/sec vs worker count
# ----------------------------------------------------------------------
def bench_workers(
    db,
    model,
    config: GvexConfig,
    *,
    workers: Sequence[int] = (1, 2),
    shard_size: Optional[int] = None,
) -> Dict[str, Any]:
    """One plan through serial and through live clusters of each size."""
    plan = build_plan(db, model, config, shard_size=shard_size)

    # untimed warm-up: first-touch lazy state (adjacency scratch, match
    # contexts, the plan cache) otherwise lands on whichever arm runs
    # first and skews the comparison
    SerialExecutor().run(plan)

    start = time.perf_counter()
    serial, serial_stats = SerialExecutor().run(plan)
    serial_seconds = time.perf_counter() - start
    reference = fingerprint(serial)
    n_views = count_subgraphs(serial)

    rows = []
    for n in workers:
        with ClusterCoordinator(auth_token=AUTH) as coord:
            booted = [
                ClusterWorker(
                    db, model, coord.url, auth_token=AUTH,
                    worker_id=f"bench-w{i}", warm_start=False,
                ).start()
                for i in range(n)
            ]
            try:
                coord.wait_for_workers(n, timeout=30)
                start = time.perf_counter()
                views, stats = DistributedExecutor(coord).run(plan)
                seconds = time.perf_counter() - start
            finally:
                for w in booted:
                    w.close()
        assert fingerprint(views) == reference, (
            f"{n}-worker cluster output drifted from serial"
        )
        rows.append({
            "workers": n,
            "seconds": seconds,
            "views_per_sec": n_views / seconds if seconds else 0.0,
            "speedup_vs_serial": serial_seconds / seconds if seconds else 0.0,
            "shards": stats["shards"],
            "redispatched": stats["redispatched"],
            "inference_calls": stats["inference_calls"],
            "bit_identical_to_serial": True,
        })

    return {
        "serial_seconds": serial_seconds,
        "serial_views_per_sec": (
            n_views / serial_seconds if serial_seconds else 0.0
        ),
        "serial_inference_calls": serial_stats["inference_calls"],
        "total_views": n_views,
        "shards": len(plan.shards),
        "arms": rows,
    }


# ----------------------------------------------------------------------
# scenario: cold boot vs snapshot-warmed boot
# ----------------------------------------------------------------------
def bench_warm_boot(db, model, config: GvexConfig) -> Dict[str, Any]:
    """Boot + run a one-worker cluster cold, then snapshot-warmed.

    The cold run populates the process-wide plan cache; the warm arm's
    worker then fetches it back via ``GET /cache`` at boot. The warm
    contract is the ``plan_builds`` delta during the run: zero.
    """
    plan = build_plan(db, model, config)
    result: Dict[str, Any] = {}
    with ClusterCoordinator(auth_token=AUTH) as coord:
        for arm, warm in (("cold", False), ("warm", True)):
            if not warm:
                PLAN_CACHE.clear()
            start = time.perf_counter()
            worker = ClusterWorker(
                db, model, coord.url, auth_token=AUTH,
                worker_id=f"boot-{arm}", warm_start=warm,
            ).start()
            boot_seconds = time.perf_counter() - start
            try:
                coord.wait_for_workers(1, timeout=30)
                builds_before = PLAN_CACHE.plan_builds
                start = time.perf_counter()
                views, _ = coord.run(plan)
                run_seconds = time.perf_counter() - start
            finally:
                worker.close()
            result[arm] = {
                "boot_seconds": boot_seconds,
                "run_seconds": run_seconds,
                "plan_builds_during_run": (
                    PLAN_CACHE.plan_builds - builds_before
                ),
                "patterns_preloaded": worker.warm_stats.get("patterns", 0),
                "fingerprint": fingerprint(views),
            }
    assert result["warm"]["plan_builds_during_run"] == 0, (
        "snapshot-warmed run rebuilt match plans"
    )
    assert result["cold"]["fingerprint"] == result["warm"]["fingerprint"]
    result["note"] = (
        "warm contract: plan_builds_during_run == 0 after the worker "
        "loads the coordinator's GET /cache snapshot at boot"
    )
    return result


# ----------------------------------------------------------------------
# scenario: re-dispatch overhead
# ----------------------------------------------------------------------
def bench_redispatch(
    db, model, config: GvexConfig, *, heartbeat_timeout: float = 1.0
) -> Dict[str, Any]:
    """The same job, healthy vs with a registered silent straggler."""
    plan = build_plan(db, model, config, shard_size=2)
    serial, _ = SerialExecutor().run(plan)
    reference = fingerprint(serial)

    timings: Dict[str, Any] = {}
    for arm in ("healthy", "straggler"):
        hole = _BlackHole() if arm == "straggler" else None
        with ClusterCoordinator(
            auth_token=AUTH,
            heartbeat_timeout=heartbeat_timeout,
            request_timeout=300.0,
        ) as coord:
            if hole is not None:
                post_json(
                    f"{coord.url}/register",
                    wire.encode_register("straggler", hole.url),
                    token=AUTH,
                )
            with ClusterWorker(
                db, model, coord.url, auth_token=AUTH,
                worker_id="honest", warm_start=False,
                heartbeat_interval=min(0.25, heartbeat_timeout / 4),
            ):
                coord.wait_for_workers(2 if hole else 1, timeout=30)
                start = time.perf_counter()
                views, stats = coord.run(plan)
                seconds = time.perf_counter() - start
        if hole is not None:
            hole.close()
        assert fingerprint(views) == reference, f"{arm} arm drifted"
        timings[arm] = {
            "seconds": seconds,
            "redispatched": stats["redispatched"],
            "shards": stats["shards"],
        }

    assert timings["straggler"]["redispatched"] >= 1, (
        "straggler never won (and lost) a shard"
    )
    return {
        **timings,
        "heartbeat_timeout": heartbeat_timeout,
        "overhead_seconds": (
            timings["straggler"]["seconds"] - timings["healthy"]["seconds"]
        ),
        "bit_identical_to_serial": True,
    }


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="mutagenicity")
    parser.add_argument("--scale", default="test")
    parser.add_argument("--workers", type=int, default=2,
                        help="largest cluster size for the scaling arm")
    parser.add_argument("--out", default="results/BENCH_dist_cluster.json")
    args = parser.parse_args(argv)

    import os

    from repro.datasets.zoo import get_trained

    trained = get_trained(args.dataset, scale=args.scale)
    config = GvexConfig(theta=0.08, radius=0.3, gamma=0.5).with_bounds(0, 6)

    result = {
        "dataset": args.dataset,
        "scale": args.scale,
        "cpu_count": os.cpu_count(),
        "note": (
            "localhost cluster: workers share the bench process's GIL, "
            "so the scaling arm measures wire/merge overhead rather than "
            "scale-out; every arm asserts bit-identity to SerialExecutor"
        ),
        "scenarios": {
            "workers": bench_workers(
                trained.db, trained.model, config,
                workers=tuple(range(1, args.workers + 1)),
            ),
            "warm_boot": bench_warm_boot(trained.db, trained.model, config),
            "redispatch": bench_redispatch(
                trained.db, trained.model, config
            ),
        },
    }

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
