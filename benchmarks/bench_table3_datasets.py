"""Table 3: dataset statistics.

Regenerates the statistics table for the seven dataset analogues and
asserts the *relative* shape of the real Table 3: MALNET has the
largest graphs of the fidelity datasets, PCQ has the most graphs while
being the smallest molecules, REDDIT threads are larger than molecules.
Absolute sizes are scaled down per DESIGN.md §1.
"""

from repro.bench.reporting import save_result
from repro.datasets.registry import DATASETS
from repro.datasets.statistics import compute_statistics, statistics_table

from conftest import SCALE, SEED


def _stats():
    rows = {}
    for name, info in DATASETS.items():
        db = info.load(scale=SCALE, seed=SEED)
        rows[name] = compute_statistics(db, n_features=info.n_features)
    return rows


def test_table3_dataset_statistics(benchmark):
    rows = benchmark.pedantic(_stats, rounds=1, iterations=1)
    table = statistics_table(scale=SCALE, seed=SEED)
    save_result("table3_datasets", table)

    # shape assertions mirroring the real Table 3's ordering
    assert rows["malnet"].avg_nodes > rows["mutagenicity"].avg_nodes
    assert rows["reddit_binary"].avg_nodes > rows["mutagenicity"].avg_nodes
    assert rows["pcqm4m"].n_graphs >= rows["malnet"].n_graphs
    assert rows["pcqm4m"].avg_nodes < rows["mutagenicity"].avg_nodes
    assert rows["enzymes"].n_classes == 6
    assert rows["malnet"].n_classes == 5
    assert rows["ba_synthetic"].avg_nodes >= rows["enzymes"].avg_nodes
