"""Query engine: inverted occurrence index vs per-call isomorphism scans.

The acceptance bar for the query redesign: repeated pattern queries
through the precomputed inverted index must be >= 5x faster than the
legacy approach of scanning every explanation subgraph with a fresh
isomorphism test per call. The naive reference below reproduces the
seed implementation's work (no posting lists, no cross-call memo).
"""

from __future__ import annotations

import time

from benchmarks.conftest import SEED, trained
from repro.bench.harness import bench_config
from repro.bench.reporting import render_table, save_result
from repro.core.approx import explain_database
from repro.matching.isomorphism import is_subgraph_isomorphic
from repro.query import Q, ViewIndex

#: how many times each analyst pattern is re-queried
REPEATS = 25
MIN_SPEEDUP = 5.0


def naive_explanations_containing(views, pattern):
    """The seed behavior: one isomorphism scan over all subgraphs."""
    out = []
    for view in views:
        for sub in view.subgraphs:
            if is_subgraph_isomorphic(pattern, sub.subgraph):
                out.append((view.label, sub.graph_index, True))
    return out


def test_repeated_pattern_queries_speedup():
    setup = trained("mutagenicity")
    views = explain_database(setup.db, setup.model, bench_config(upper=6))
    patterns = [p for view in views for p in view.patterns]
    assert patterns, "need view patterns to query"

    # naive: every repeated query pays the full scan again
    start = time.perf_counter()
    for _ in range(REPEATS):
        for p in patterns:
            naive_explanations_containing(views, p)
    naive_s = time.perf_counter() - start

    # inverted index: posting lists are built once at index build time
    build_start = time.perf_counter()
    index = ViewIndex(views, db=setup.db)
    build_s = time.perf_counter() - build_start
    start = time.perf_counter()
    for _ in range(REPEATS):
        for p in patterns:
            index.explanations_containing(p)
    legacy_s = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(REPEATS):
        for p in patterns:
            index.select(Q.pattern(p))
    dsl_s = time.perf_counter() - start

    # identical answers, then the speed bar (index build amortized in)
    for p in patterns:
        naive = naive_explanations_containing(views, p)
        assert [
            (h.label, h.graph_index, h.in_explanation)
            for h in index.explanations_containing(p)
        ] == naive
        assert [
            (h.label, h.graph_index, h.in_explanation)
            for h in index.select(Q.pattern(p))
        ] == naive

    queries = REPEATS * len(patterns)
    speedup = naive_s / max(legacy_s + build_s, 1e-9)
    table = render_table(
        "Repeated pattern queries: naive scan vs inverted index",
        ["engine", "queries", "total_s", "per_query_ms"],
        [
            ["naive scan", queries, naive_s, 1000 * naive_s / queries],
            ["index build", 1, build_s, 1000 * build_s],
            ["inverted (legacy API)", queries, legacy_s, 1000 * legacy_s / queries],
            ["inverted (DSL select)", queries, dsl_s, 1000 * dsl_s / queries],
            ["speedup (incl. build)", "", speedup, ""],
        ],
    )
    save_result("query_index_speedup", table)
    print(table)
    assert speedup >= MIN_SPEEDUP, (
        f"inverted index only {speedup:.1f}x faster (incl. build) over "
        f"{queries} repeated queries; expected >= {MIN_SPEEDUP}x"
    )
